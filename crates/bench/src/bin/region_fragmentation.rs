//! Supplementary experiment: guard cost as the kernel fragments the
//! address space with protection changes (paper §2.3: "the more regions in
//! the application's address space, the higher the cost of this protection
//! at run-time" — motivating run-time adaptation to minimize regions).
//!
//! Runs one guard-heavy workload repeatedly while splitting the capsule
//! into progressively more read-write regions before execution.

use carat_bench::print_table;
use carat_core::{CaratCompiler, CompileOptions, OptPreset};
use carat_runtime::{GuardImpl, Perms};
use carat_vm::{Vm, VmConfig};
use carat_workloads::{by_name, Scale};

fn main() {
    println!("Guard cost vs region fragmentation (mcf, Test scale)\n");
    let w = by_name("mcf").expect("workload");
    let module = w.module(Scale::Test).expect("compiles");
    let compiled = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
        .compile(module)
        .expect("carat");

    let mut rows = Vec::new();
    let mut base_cycles = 0u64;
    for &splits in &[0u64, 4, 16, 64, 256] {
        let mut vm = Vm::new(
            compiled.module.clone(),
            VmConfig {
                guard_impl: GuardImpl::IfTree,
                ..VmConfig::default()
            },
        )
        .expect("loads");
        // Fragment the capsule: protection "changes" that keep RW perms
        // but split the region table, page by page.
        let heap = vm.image().heap;
        let page = 4096;
        for k in 0..splits {
            let start = heap.0 + k * 2 * page;
            vm.kernel.change_protection(start, page, Perms::RW);
        }
        let regions = vm.kernel.regions.len();
        let r = vm.run().expect("runs");
        if splits == 0 {
            base_cycles = r.counters.cycles;
        }
        rows.push(vec![
            splits.to_string(),
            regions.to_string(),
            r.counters.guards_executed.to_string(),
            format!(
                "{:.2}",
                r.counters.guard_cycles as f64 / r.counters.guards_executed.max(1) as f64
            ),
            format!("{:.3}", r.counters.cycles as f64 / base_cycles as f64),
        ]);
    }
    print_table(
        &[
            "splits",
            "regions",
            "guards exec",
            "cycles/guard",
            "relative runtime",
        ],
        &rows,
    );
    println!("\nGuard cost grows with the region count (log probes), which is");
    println!("why the kernel should keep the region set minimal (paper §2.3).");
}
