//! # fleet_scaling — the 10k-tenant scaling curve
//!
//! Spawns fleets of 10 / 100 / 1k / 10k microservice-sized tenants (one
//! shared module, one shared decoded program) on one kernel and measures
//! what the slab-indexed process subsystem costs as the fleet grows:
//!
//! * **Context-switch cost per slice** — modeled kernel cycles per
//!   switch must be FLAT across scales (the switch installs a region
//!   set, it never walks the fleet), and the CARAT figure (region
//!   install, no TLB flush) must undercut traditional paging (TLB flush
//!   + amortized ASID refill) at EVERY scale.
//! * **Host ns per slice** — the scheduler's own work per slice
//!   (run-queue pop, table checkout, O(1) tenant materialization) must
//!   not grow with fleet size: the curve gates on the largest scale
//!   staying within a small factor of the smallest. Each slice is timed
//!   individually, so the JSON also carries the **p99 slice latency** —
//!   the tail a latency SLO would see under fan-out.
//! * **Descheduled-tenant memory** — host bytes pinned per parked
//!   tenant (frame stack, thread slots, counters; capsule bytes live in
//!   kernel memory and decoded code is shared) must be flat in fleet
//!   size.
//! * **Pressure-compaction throughput** — journaled CARAT moves + page
//!   outs driven on descheduled victims while the fleet runs.
//! * **Churn soak** — spawn/kill/respawn against tight admission quotas
//!   at the largest scale: refusals are typed `AdmissionError`s, killed
//!   and recycled pids fail lookups with typed `TenancyError`s, and
//!   nothing ever panics.
//!
//! Emits `BENCH_fleet.json` (override with `--out PATH`). Scale presets:
//! `--scale test` runs 10/100, `small` adds 1k, `full` adds 10k. The
//! tenants' interpreter tier is selectable with
//! `--engine reference|decoded|fused|threaded` (default fused) — the
//! scaling gates must hold on every tier. `--sched quantum|timer`
//! (default quantum) selects the preemption source: the instruction
//! quantum or the CLINT-style cycle-deadline timer.

use std::rc::Rc;
use std::time::Instant;

use carat_bench::{engine_from_args, print_table, scale_from_args, Variant};
use carat_core::CaratCompiler;
use carat_ir::Module;
use carat_kernel::{LoadConfig, Pid, TenantQuotas};
use carat_runtime::CostModel;
use carat_vm::{MultiVm, MultiVmConfig, ProcOutcome, TenancyError, VmConfig, VmError};
use carat_workloads::{fleet_tenant, Scale};

/// Per-tenant capsule sizing: a microservice, not a batch job. The
/// tenant program touches a few hundred heap bytes and a few stack
/// frames, so 8 KiB of stack and 16 KiB of heap leave headroom while
/// keeping a 10k-tenant fleet under 2 GiB of managed memory.
const FLEET_LOAD: LoadConfig = LoadConfig {
    stack_size: 8 * 1024,
    heap_size: 16 * 1024,
    page_size: 4096,
};

/// Slices each live tenant gets in the timed steady-state batch.
const TIMED_SLICES_PER_TENANT: u64 = 2;

fn fleet_sizes(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Test => &[10, 100],
        Scale::Small => &[10, 100, 1000],
        Scale::Full => &[10, 100, 1000, 10000],
    }
}

fn kernel_mem(tenants: usize) -> u64 {
    64 * 1024 * 1024 + tenants as u64 * 128 * 1024
}

fn tenant_cfg(variant: Variant) -> VmConfig {
    VmConfig {
        mode: variant.mode(),
        engine: engine_from_args(),
        load: FLEET_LOAD,
        ..VmConfig::default()
    }
}

fn tenant_module(scale: Scale, variant: Variant, seed: i64) -> Rc<Module> {
    let module = fleet_tenant(scale, seed).expect("fleet tenant compiles");
    Rc::new(
        CaratCompiler::new(variant.options())
            .compile(module)
            .expect("fleet tenant instruments")
            .module,
    )
}

fn build_fleet(
    tenants: usize,
    scale: Scale,
    variant: Variant,
    pressure_every: u64,
) -> (MultiVm, Vec<Pid>) {
    let module = tenant_module(scale, variant, 0);
    let quantum = match scale {
        Scale::Test => 128,
        Scale::Small | Scale::Full => 256,
    };
    let mut mv = MultiVm::new(
        Vec::new(),
        MultiVmConfig {
            quantum,
            // `--sched timer` swaps the instruction quantum for the
            // CLINT-style cycle-deadline comparator; the scaling gates
            // must hold under either preemption source.
            sched: carat_bench::sched_from_args(),
            timer_interval: quantum * 16,
            kernel_mem: kernel_mem(tenants),
            pressure_every,
            pressure_batch: 4,
            ..MultiVmConfig::default()
        },
    )
    .expect("empty fleet builds");
    let cfg = tenant_cfg(variant);
    let mut pids = Vec::with_capacity(tenants);
    for i in 0..tenants {
        let pid = mv
            .spawn_shared(&format!("t{i}"), module.clone(), cfg.clone())
            .unwrap_or_else(|e| {
                eprintln!("fleet_scaling: admitting tenant {i}/{tenants} failed: {e}");
                std::process::exit(2);
            });
        pids.push(pid);
    }
    (mv, pids)
}

/// One measured arm: warm every tenant once, time a steady-state batch,
/// sample descheduled footprints, then drain to completion and fold the
/// kernel accounting.
struct ArmResult {
    ns_per_slice: f64,
    p99_ns_per_slice: u64,
    cycles_per_switch: f64,
    switches: u64,
    tlb_flushes: u64,
    descheduled_bytes_per_tenant: f64,
    outcomes_ok: bool,
}

fn run_arm(tenants: usize, scale: Scale, variant: Variant) -> ArmResult {
    let (mut mv, pids) = build_fleet(tenants, scale, variant, 0);
    // Warmup: one slice per tenant (first switch installs every region
    // set; the timed batch then sees steady-state switching only).
    mv.run_batch(tenants as u64);
    let want = tenants as u64 * TIMED_SLICES_PER_TENANT;
    // Slices are driven one at a time so each gets its own wall-clock
    // sample: the p99 is the tail the mean hides (a pressure pass, an
    // externalization, a cold cache), exactly what a latency SLO sees.
    let mut samples: Vec<u64> = Vec::with_capacity(want as usize);
    let t0 = Instant::now();
    let mut ran = 0u64;
    while ran < want {
        let t = Instant::now();
        let step = mv.run_batch(1);
        if step == 0 {
            break;
        }
        samples.push(t.elapsed().as_nanos() as u64);
        ran += step;
    }
    let elapsed = t0.elapsed();
    let ns_per_slice = elapsed.as_nanos() as f64 / ran.max(1) as f64;
    let p99_ns_per_slice = carat_bench::percentile(&samples, 99.0);
    // Descheduled footprint, sampled while everything is parked.
    let sample: Vec<usize> = pids
        .iter()
        .take(64)
        .map(|&p| mv.descheduled_bytes(p).expect("live tenant"))
        .collect();
    let bytes_per_tenant = sample.iter().sum::<usize>() as f64 / sample.len().max(1) as f64;
    let expected_ret = {
        let solo = fleet_tenant(scale, 0).expect("compiles");
        carat_vm::Vm::new(solo, VmConfig::default())
            .expect("loads")
            .run()
            .expect("runs")
            .ret
    };
    let reports = mv.run();
    let outcomes_ok = reports.len() == tenants
        && reports
            .iter()
            .all(|r| matches!(&r.outcome, ProcOutcome::Finished(rr) if rr.ret == expected_ret));
    let switches: u64 = reports.iter().map(|r| r.accounting.ctx_switches).sum();
    let cycles: u64 = reports.iter().map(|r| r.accounting.ctx_switch_cycles).sum();
    let tlb_flushes: u64 = reports.iter().map(|r| r.accounting.tlb_flushes).sum();
    ArmResult {
        ns_per_slice,
        p99_ns_per_slice,
        cycles_per_switch: cycles as f64 / switches.max(1) as f64,
        switches,
        tlb_flushes,
        descheduled_bytes_per_tenant: bytes_per_tenant,
        outcomes_ok,
    }
}

struct PressureResult {
    moves: u64,
    page_outs: u64,
    cycles_per_relocation: f64,
}

/// The compaction arm: same fleet, pressure pass every 8 slices —
/// journaled moves + page-outs on descheduled victims, charged to
/// kernel accounting.
fn run_pressure(tenants: usize, scale: Scale) -> PressureResult {
    let (mv, _pids) = {
        let (mut mv, pids) = build_fleet(tenants, scale, Variant::Full, 8);
        mv.run_batch(tenants as u64);
        (mv, pids)
    };
    let reports = mv.run();
    let moves: u64 = reports.iter().map(|r| r.accounting.pressure_moves).sum();
    let outs: u64 = reports
        .iter()
        .map(|r| r.accounting.pressure_page_outs)
        .sum();
    let cycles: u64 = reports.iter().map(|r| r.accounting.compaction_cycles).sum();
    PressureResult {
        moves,
        page_outs: outs,
        cycles_per_relocation: cycles as f64 / (moves + outs).max(1) as f64,
    }
}

struct ChurnResult {
    tenants: usize,
    spawned: u64,
    killed: u64,
    admission_refusals: u64,
    stale_lookups_typed: u64,
    slices: u64,
    ok: bool,
}

/// Spawn/kill/respawn churn against tight quotas at the largest scale.
/// Every refusal must be a typed [`VmError::Admission`]; every lookup or
/// kill of a retired pid must fail typed (never alias a recycled slot,
/// never panic).
fn run_churn(tenants: usize, scale: Scale) -> ChurnResult {
    let module = tenant_module(scale, Variant::Full, 1);
    let cfg = tenant_cfg(Variant::Full);
    let mut mv = MultiVm::new(
        Vec::new(),
        MultiVmConfig {
            quantum: 128,
            kernel_mem: kernel_mem(tenants),
            ..MultiVmConfig::default()
        },
    )
    .expect("empty fleet builds");
    // Probe one tenant to learn the capsule size, then set quotas that
    // admit only half the requested fleet — the soak must hit the
    // ceiling and get typed refusals.
    let probe = mv
        .spawn_shared("probe", module.clone(), cfg.clone())
        .expect("probe admits");
    let capsule = mv.kernel.procs.resident_bytes();
    mv.kernel.set_quotas(TenantQuotas {
        max_tenants: tenants,
        max_resident_bytes: capsule * (tenants as u64 / 2).max(2),
    });
    let mut live: Vec<Pid> = vec![probe];
    let mut stale: Vec<Pid> = Vec::new();
    let (mut spawned, mut killed, mut refusals, mut stale_typed, mut slices) =
        (1u64, 0u64, 0u64, 0u64, 0u64);
    let mut ok = true;
    for round in 0..3 {
        // Spawn until the quota refuses (cap attempts at the fleet size).
        for i in 0..tenants {
            match mv.spawn_shared(&format!("c{round}.{i}"), module.clone(), cfg.clone()) {
                Ok(pid) => {
                    live.push(pid);
                    spawned += 1;
                }
                Err(VmError::Admission(_)) => {
                    refusals += 1;
                    break;
                }
                Err(e) => {
                    eprintln!("fleet_scaling: churn spawn died untyped: {e}");
                    ok = false;
                    break;
                }
            }
        }
        slices += mv.run_batch(live.len() as u64 * 2);
        // Kill every other tenant; their pids go stale for good.
        let mut keep = Vec::with_capacity(live.len() / 2 + 1);
        for (i, pid) in live.drain(..).enumerate() {
            if i % 2 == 0 {
                ok &= mv.kill(pid);
                killed += 1;
                stale.push(pid);
            } else {
                keep.push(pid);
            }
        }
        live = keep;
        // Every retired pid (including ones whose slab slot was recycled
        // by this round's spawns) must fail typed, never alias.
        for &pid in &stale {
            match mv.counters(pid) {
                Err(TenancyError::NoSuchTenant(p)) if p == pid => stale_typed += 1,
                other => {
                    eprintln!("fleet_scaling: stale pid {pid} lookup returned {other:?}");
                    ok = false;
                }
            }
            if mv.kill(pid) {
                eprintln!("fleet_scaling: stale pid {pid} killed twice");
                ok = false;
            }
        }
    }
    // `ok` already went false on any untyped refusal, aliased lookup, or
    // double kill; the soak additionally must have hit the quota and run.
    ok &= refusals > 0 && slices > 0 && stale_typed > 0;
    ChurnResult {
        tenants,
        spawned,
        killed,
        admission_refusals: refusals,
        stale_lookups_typed: stale_typed,
        slices,
        ok,
    }
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let sizes = fleet_sizes(scale);
    let cost = CostModel::default();
    println!(
        "fleet_scaling: fleets of {sizes:?} tenants, scale {scale:?}, engine {} \
         (modeled switch: carat {} vs traditional {})",
        engine_from_args().name(),
        cost.ctx_switch_carat(),
        cost.ctx_switch_traditional()
    );
    println!();

    let mut rows = Vec::new();
    let mut curve_json = String::new();
    let mut carat_cps = Vec::new();
    let mut trad_cps = Vec::new();
    let mut carat_ns = Vec::new();
    let mut mem_per_tenant = Vec::new();
    let mut gap_every_scale = true;
    let mut outcomes_ok = true;
    for &n in sizes {
        let carat = run_arm(n, scale, Variant::Full);
        let trad = run_arm(n, scale, Variant::Traditional);
        let pressure = run_pressure(n, scale);
        gap_every_scale &=
            carat.cycles_per_switch < trad.cycles_per_switch && carat.tlb_flushes == 0;
        outcomes_ok &= carat.outcomes_ok && trad.outcomes_ok;
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", carat.ns_per_slice),
            carat.p99_ns_per_slice.to_string(),
            format!("{:.1}", carat.cycles_per_switch),
            format!("{:.1}", trad.cycles_per_switch),
            format!("{:.0}", carat.descheduled_bytes_per_tenant),
            pressure.moves.to_string(),
            pressure.page_outs.to_string(),
            format!("{:.0}", pressure.cycles_per_relocation),
        ]);
        if !curve_json.is_empty() {
            curve_json.push_str(",\n");
        }
        curve_json.push_str(&format!(
            "    {{\"tenants\": {n}, \
             \"carat\": {{\"ns_per_slice\": {:.1}, \"p99_ns_per_slice\": {}, \"cycles_per_switch\": {:.3}, \"switches\": {}, \"tlb_flushes\": {}}}, \
             \"traditional\": {{\"ns_per_slice\": {:.1}, \"p99_ns_per_slice\": {}, \"cycles_per_switch\": {:.3}, \"switches\": {}, \"tlb_flushes\": {}}}, \
             \"descheduled_bytes_per_tenant\": {:.1}, \
             \"pressure\": {{\"moves\": {}, \"page_outs\": {}, \"cycles_per_relocation\": {:.1}}}}}",
            carat.ns_per_slice,
            carat.p99_ns_per_slice,
            carat.cycles_per_switch,
            carat.switches,
            carat.tlb_flushes,
            trad.ns_per_slice,
            trad.p99_ns_per_slice,
            trad.cycles_per_switch,
            trad.switches,
            trad.tlb_flushes,
            carat.descheduled_bytes_per_tenant,
            pressure.moves,
            pressure.page_outs,
            pressure.cycles_per_relocation,
        ));
        carat_cps.push(carat.cycles_per_switch);
        trad_cps.push(trad.cycles_per_switch);
        carat_ns.push(carat.ns_per_slice);
        mem_per_tenant.push(carat.descheduled_bytes_per_tenant);
    }
    print_table(
        &[
            "tenants",
            "ns/slice",
            "p99 ns/slice",
            "carat cyc/sw",
            "trad cyc/sw",
            "bytes/parked",
            "pr.moves",
            "pr.outs",
            "cyc/reloc",
        ],
        &rows,
    );

    let spread = |xs: &[f64]| {
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        max / min.max(1e-9)
    };
    // Modeled switch cost is a constant charge: flat means *exactly* flat
    // (1% slack for integer division on unequal switch counts).
    let flat_ctx_ok = spread(&carat_cps) < 1.01 && spread(&trad_cps) < 1.01;
    // Parked tenants are identical programs: their footprint must not
    // grow with fleet size.
    let flat_mem_ok = spread(&mem_per_tenant) < 1.25;
    // Host scheduling work per slice is O(1) in fleet size; allow a
    // generous factor for cache effects at 10k (an O(fleet) scheduler
    // would blow through this by orders of magnitude).
    let o1_sched_ok = spread(&carat_ns) < 10.0;
    println!();
    println!(
        "{}: modeled cycles/switch flat across scales (carat spread {:.4}, trad {:.4})",
        if flat_ctx_ok { "PASS" } else { "FAIL" },
        spread(&carat_cps),
        spread(&trad_cps)
    );
    println!(
        "{}: carat switch undercuts traditional at every scale, 0 TLB flushes",
        if gap_every_scale { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: descheduled bytes/tenant flat across scales (spread {:.3})",
        if flat_mem_ok { "PASS" } else { "FAIL" },
        spread(&mem_per_tenant)
    );
    println!(
        "{}: host ns/slice O(1) in fleet size (spread {:.2}x)",
        if o1_sched_ok { "PASS" } else { "FAIL" },
        spread(&carat_ns)
    );
    println!(
        "{}: every tenant finished with the expected checksum",
        if outcomes_ok { "PASS" } else { "FAIL" }
    );

    let churn_n = *sizes.last().expect("at least one size");
    let churn = run_churn(churn_n, scale);
    println!(
        "{}: churn soak at {churn_n} tenants — {} spawned, {} killed, {} typed refusals, {} typed stale lookups, {} slices, 0 panics",
        if churn.ok { "PASS" } else { "FAIL" },
        churn.spawned,
        churn.killed,
        churn.admission_refusals,
        churn.stale_lookups_typed,
        churn.slices
    );

    let pass =
        flat_ctx_ok && gap_every_scale && flat_mem_ok && o1_sched_ok && outcomes_ok && churn.ok;
    let json = format!(
        "{{\n  \"benchmark\": \"fleet_scaling\",\n  \"scale\": \"{scale:?}\",\n  \
         \"engine\": \"{eng}\",\n  \"modeled_ctx\": {{\"carat\": {mc}, \"traditional\": {mt}}},\n  \"curve\": [\n{curve_json}\n  ],\n  \
         \"flat_ctx_ok\": {flat_ctx_ok},\n  \"gap_every_scale\": {gap_every_scale},\n  \
         \"flat_mem_ok\": {flat_mem_ok},\n  \"o1_sched_ok\": {o1_sched_ok},\n  \
         \"outcomes_ok\": {outcomes_ok},\n  \"churn\": {{\"tenants\": {cn}, \"spawned\": {csp}, \
         \"killed\": {ck}, \"admission_refusals\": {cr}, \"stale_lookups_typed\": {cs}, \
         \"slices\": {csl}, \"ok\": {cok}}},\n  \"pass\": {pass}\n}}\n",
        eng = engine_from_args().name(),
        mc = cost.ctx_switch_carat(),
        mt = cost.ctx_switch_traditional(),
        cn = churn.tenants,
        csp = churn.spawned,
        ck = churn.killed,
        cr = churn.admission_refusals,
        cs = churn.stale_lookups_typed,
        csl = churn.slices,
        cok = churn.ok,
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("\nwrote {out_path}");
    if !pass {
        std::process::exit(1);
    }
}
