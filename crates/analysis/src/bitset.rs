//! A dense fixed-capacity bit set used by the dataflow solvers.

/// A fixed-capacity set of small indices backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Create an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Create a set with all of `0..capacity` present.
    pub fn full(capacity: usize) -> BitSet {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        if !capacity.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << (capacity % 64)) - 1;
            }
        }
        s
    }

    /// Capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Remove `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Whether `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Intersect in place; returns whether `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Union in place; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Remove all of `other`'s members; returns whether `self` changed.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & !*b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_ops() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let mut d = a.clone();
        assert!(d.subtract(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
        assert!(
            !a.intersect_with(&a.clone()),
            "self-intersection is a no-op"
        );
    }

    #[test]
    fn iteration_order_is_ascending() {
        let mut s = BitSet::new(200);
        for i in [150, 3, 64, 199, 0] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 150, 199]);
    }
}
