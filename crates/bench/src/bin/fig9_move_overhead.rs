//! Figure 9 — worst-case page movement overhead at increasing move rates
//! (1, 100, 10 000, 20 000 moves per simulated second), normalized to the
//! CARAT baseline (full instrumentation, no moves).

use carat_bench::{
    compile, geomean, print_table, scale_from_args, selected_workloads, workers_from_args, Variant,
    FREQ_HZ,
};
use carat_runtime::GuardImpl;
use carat_vm::{Mode, MoveDriverConfig, Vm, VmConfig, VmError};

fn main() {
    let scale = scale_from_args();
    let workers = workers_from_args();
    let rates: [f64; 4] = [1.0, 100.0, 10_000.0, 20_000.0];
    println!(
        "Figure 9: worst-case page movement overhead ({scale:?} scale, {workers} patch worker(s))"
    );
    println!("(* = measurement infeasible at this rate, as in the paper)\n");
    let mut rows = Vec::new();
    let mut per_rate: Vec<Vec<f64>> = vec![Vec::new(); rates.len()];
    for w in selected_workloads() {
        let m = compile(&w, scale, Variant::Full);
        let base = Vm::new(m.clone(), VmConfig::default())
            .expect("loads")
            .run()
            .expect("baseline");
        let mut cells = vec![w.name.to_string(), "1.000".into()];
        for (ri, &rate) in rates.iter().enumerate() {
            let driver = MoveDriverConfig {
                period_cycles: (FREQ_HZ / rate) as u64,
                max_moves: 0,
            };
            // Overheads beyond ~50x leave the measurable regime (the
            // paper's asterisks: Bodytrack at 10k/s ran 14.5 hours).
            let cfg = VmConfig {
                mode: Mode::Carat,
                guard_impl: GuardImpl::IfTree,
                move_driver: Some(driver),
                move_workers: workers,
                max_steps: (base.counters.instructions * 50).max(10_000_000),
                max_cycles: base.counters.cycles.saturating_mul(50),
                ..VmConfig::default()
            };
            match Vm::new(m.clone(), cfg).expect("loads").run() {
                Ok(r) => {
                    let norm = r.counters.normalized_to(&base.counters);
                    per_rate[ri].push(norm);
                    cells.push(format!("{norm:.3} ({}mv)", r.counters.moves));
                }
                Err(VmError::StepLimit) => {
                    per_rate[ri].push(50.0); // paper-style cutoff contribution
                    cells.push("*".to_string());
                }
                Err(other) => panic!("{}: moves must be transparent: {other}", w.name),
            }
        }
        rows.push(cells);
    }
    let mut mean_row = vec!["Geo. Mean".to_string(), "1.000".into()];
    for col in &per_rate {
        mean_row.push(format!("{:.3}", geomean(col)));
    }
    rows.push(mean_row);
    print_table(
        &[
            "benchmark",
            "CARAT base",
            "1 mv/s",
            "100 mv/s",
            "10k mv/s",
            "20k mv/s",
        ],
        &rows,
    );
}
