//! Set-associative TLB simulation for the traditional baseline (Figure 2).
//!
//! Two levels, modeled after the paper's feasibility measurements: a small
//! L1 DTLB (64-entry 4-way on modern Intel) backed by an STLB (1536-entry),
//! with a radix pagewalk on a full miss.

/// One set-associative TLB level with LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<Vec<(u64, u64)>>, // (vpn, last-use stamp)
    assoc: usize,
    stamp: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl Tlb {
    /// A TLB with `entries` total entries and `assoc`-way sets.
    pub fn new(entries: usize, assoc: usize) -> Tlb {
        let nsets = (entries / assoc).max(1);
        Tlb {
            sets: vec![Vec::with_capacity(assoc); nsets],
            assoc,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, vpn: u64) -> usize {
        (vpn as usize) % self.sets.len()
    }

    /// Look up `vpn`; updates hit/miss counters and LRU state.
    pub fn lookup(&mut self, vpn: u64) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(vpn);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.0 == vpn) {
            e.1 = stamp;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Install `vpn`, evicting the LRU entry of its set if full.
    pub fn insert(&mut self, vpn: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(vpn);
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.0 == vpn) {
            e.1 = stamp;
            return;
        }
        if entries.len() >= self.assoc {
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("non-empty set");
            entries.swap_remove(lru);
        }
        entries.push((vpn, stamp));
    }

    /// Drop every entry (TLB shootdown).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Capsule view: sets, associativity, LRU stamp.
    pub(crate) fn snapshot(&self) -> (&[Vec<(u64, u64)>], usize, u64) {
        (&self.sets, self.assoc, self.stamp)
    }

    /// Rebuild a TLB from its capsule view.
    pub(crate) fn restore(
        sets: Vec<Vec<(u64, u64)>>,
        assoc: usize,
        stamp: u64,
        hits: u64,
        misses: u64,
    ) -> Tlb {
        Tlb {
            sets,
            assoc,
            stamp,
            hits,
            misses,
        }
    }
}

/// The two-level translation structure plus pagewalk counters.
#[derive(Debug, Clone)]
pub struct TranslationUnit {
    /// L1 DTLB.
    pub dtlb: Tlb,
    /// Second-level TLB.
    pub stlb: Tlb,
    /// Pagewalks performed (both TLBs missed).
    pub pagewalks: u64,
}

impl TranslationUnit {
    /// Build from the cost model's sizes.
    pub fn new(cost: &carat_runtime::CostModel) -> TranslationUnit {
        TranslationUnit {
            dtlb: Tlb::new(cost.dtlb_entries, cost.dtlb_assoc),
            stlb: Tlb::new(cost.stlb_entries, cost.stlb_assoc),
            pagewalks: 0,
        }
    }

    /// Translate access to `vpn`; returns extra cycles beyond the L1 hit
    /// path (0 for a DTLB hit).
    pub fn access(&mut self, vpn: u64, cost: &carat_runtime::CostModel) -> u64 {
        if self.dtlb.lookup(vpn) {
            return 0;
        }
        if self.stlb.lookup(vpn) {
            self.dtlb.insert(vpn);
            return cost.stlb_hit;
        }
        self.pagewalks += 1;
        self.stlb.insert(vpn);
        self.dtlb.insert(vpn);
        cost.stlb_hit + cost.pagewalk
    }

    /// DTLB misses per 1000 instructions (Figure 2's metric).
    pub fn dtlb_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.dtlb.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_runtime::CostModel;

    #[test]
    fn repeated_access_hits() {
        let mut t = Tlb::new(64, 4);
        assert!(!t.lookup(5));
        t.insert(5);
        assert!(t.lookup(5));
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        // 4 entries, 4-way => a single set.
        let mut t = Tlb::new(4, 4);
        for vpn in 0..4 {
            t.insert(vpn);
        }
        assert!(t.lookup(0)); // 0 refreshed; 1 is now LRU
        t.insert(10);
        assert!(t.lookup(0), "recently used survives");
        assert!(!t.lookup(1), "LRU evicted");
    }

    #[test]
    fn flush_clears() {
        let mut t = Tlb::new(16, 4);
        t.insert(1);
        t.flush();
        assert!(!t.lookup(1));
    }

    #[test]
    fn translation_unit_cost_path() {
        let cost = CostModel::default();
        let mut tu = TranslationUnit::new(&cost);
        // Cold: full walk.
        let c1 = tu.access(42, &cost);
        assert_eq!(c1, cost.stlb_hit + cost.pagewalk);
        assert_eq!(tu.pagewalks, 1);
        // Warm: free.
        let c2 = tu.access(42, &cost);
        assert_eq!(c2, 0);
        // Thrash the DTLB only: reuse within STLB reach.
        for v in 0..2000 {
            tu.access(v, &cost);
        }
        let c3 = tu.access(0, &cost);
        assert!(c3 == cost.stlb_hit || c3 == cost.stlb_hit + cost.pagewalk);
    }

    #[test]
    fn mpki_metric() {
        let cost = CostModel::default();
        let mut tu = TranslationUnit::new(&cost);
        for v in 0..100 {
            tu.access(v, &cost); // all DTLB misses
        }
        assert!((tu.dtlb_mpki(100_000) - 1.0).abs() < 1e-9);
        assert_eq!(tu.dtlb_mpki(0), 0.0);
    }

    #[test]
    fn streaming_vs_resident_miss_rates() {
        let cost = CostModel::default();
        // Resident: 32 pages fit in the DTLB.
        let mut resident = TranslationUnit::new(&cost);
        for i in 0..10_000u64 {
            resident.access(i % 32, &cost);
        }
        // Streaming: new page every access.
        let mut streaming = TranslationUnit::new(&cost);
        for i in 0..10_000u64 {
            streaming.access(i, &cost);
        }
        assert!(resident.dtlb.misses * 10 < streaming.dtlb.misses);
    }
}
