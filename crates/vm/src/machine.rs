//! The execution substrate: an IR interpreter over simulated physical
//! memory with a cycle cost model.
//!
//! Two execution modes reproduce the paper's two worlds:
//!
//! * [`Mode::Traditional`] — every data access is translated through the
//!   simulated DTLB/STLB/pagewalker against the kernel's radix page table
//!   (identity-mapped, demand-faulted), charging translation cycles;
//! * [`Mode::Carat`] — addresses are physical; no TLB exists; the guard
//!   and tracking intrinsics injected by the CARAT compiler execute
//!   against the kernel's region set and the runtime's allocation table.
//!
//! A [`MoveDriverConfig`] injects worst-case page movements at a fixed
//! simulated rate (Figure 9 / Table 3 methodology).

use crate::counters::PerfCounters;
use crate::decode::{DecodedInst, DecodedProgram, FusedKind, FusionStats, ScalarClass, NO_REG};
use crate::heap::HeapAllocator;
use crate::tlb::TranslationUnit;
use carat_ir::{
    BinOp, BlockId, CastKind, Const, FuncId, Inst, IntTy, Intrinsic, Module, Opcode, Pred, Type,
    ValueId,
};
use carat_kernel::{
    AdmissionError, FaultPlan, FaultPoint, KernelError, LoadConfig, LoadError, PinError,
    ProcessImage, SimKernel,
};
use carat_runtime::{Access, AllocKind, AllocationTable, CostModel, GuardImpl, TrackStats};
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Address-translation world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Paging baseline: TLBs + pagewalks, no instrumentation semantics.
    Traditional,
    /// CARAT: physical addressing, guards and tracking live.
    #[default]
    Carat,
}

/// Page-move injection (Figure 9 / Table 3 methodology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveDriverConfig {
    /// Simulated cycles between moves (rate = freq / period).
    pub period_cycles: u64,
    /// Stop injecting after this many moves (0 = unlimited).
    pub max_moves: u64,
}

/// Swap injection: periodically page the hottest tracked range out to the
/// kernel's swap store; guards bring it back on demand (paper §2.2's
/// non-canonical-address mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapDriverConfig {
    /// Simulated cycles between page-outs.
    pub period_cycles: u64,
    /// Stop injecting after this many page-outs (0 = unlimited).
    pub max_swaps: u64,
}

/// Which interpreter core executes instructions.
///
/// Both engines implement identical semantics and identical accounting —
/// every [`PerfCounters`] field, guard/tracking behavior, and world-stop
/// interleaving match exactly (enforced by the differential test suite).
/// They differ only in host-side speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Execute over the superinstruction (fused) view of the pre-decoded
    /// stream: dominant adjacent pairs — address computation + memory
    /// access, guard + access, compare + branch, constant + ALU op —
    /// retire in a single dispatch (see [`crate::decode`]'s fusion pass).
    #[default]
    Fused,
    /// Execute over the flat pre-decoded instruction stream
    /// (see [`crate::decode`]): no per-step cloning, no hash lookups, one
    /// dispatch per instruction.
    Decoded,
    /// Walk the IR arena directly, cloning each instruction — the original
    /// interpreter, retained as the semantic reference for differential
    /// testing and as the `--reference` baseline in `interp_throughput`.
    Reference,
    /// Execute over the threaded-code streams: superblock chains of the
    /// fused stream with guard checks elided or hoisted under the static
    /// whole-trip proofs of `carat_analysis::prove_function` (see
    /// [`crate::decode::ThreadedOpts`]). The only engine whose simulated
    /// counters legitimately diverge from the others: it retires fewer
    /// instructions and cycles because proven-redundant guards never
    /// execute, with the removal accounted in
    /// [`PerfCounters::guards_elided`]/[`PerfCounters::guards_hoisted`]
    /// so `guards_executed + guards_elided - guards_hoisted` reconciles
    /// with the fused engine's `guards_executed`. Outputs, return values,
    /// loads, stores, and calls remain byte-identical.
    Threaded,
}

/// Which decoded instruction stream an engine pins into active frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// The plain one-slot-per-instruction stream (`code`).
    Plain,
    /// The superinstruction view (`fused_code`).
    Fused,
    /// The threaded-tier superblock view (`threaded_code`).
    Threaded,
}

impl Engine {
    /// Every engine, in the order benchmarks report them.
    pub const ALL: [Engine; 4] = [
        Engine::Reference,
        Engine::Decoded,
        Engine::Fused,
        Engine::Threaded,
    ];

    /// The decoded stream this engine executes.
    #[inline]
    pub fn stream(self) -> StreamKind {
        match self {
            Engine::Fused => StreamKind::Fused,
            Engine::Threaded => StreamKind::Threaded,
            Engine::Decoded | Engine::Reference => StreamKind::Plain,
        }
    }

    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Fused => "fused",
            Engine::Decoded => "decoded",
            Engine::Reference => "reference",
            Engine::Threaded => "threaded",
        }
    }

    /// Parse a CLI name (as produced by [`Engine::name`]).
    pub fn parse(s: &str) -> Option<Engine> {
        Engine::ALL.into_iter().find(|e| e.name() == s)
    }
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Execution mode.
    pub mode: Mode,
    /// Interpreter core (decoded fast path by default).
    pub engine: Engine,
    /// Guard mechanism for guard intrinsics.
    pub guard_impl: GuardImpl,
    /// Abort after this many IR instructions (runaway protection).
    pub max_steps: u64,
    /// Abort after this many simulated cycles (captures move/swap storms
    /// whose cost is cycles, not instructions). `u64::MAX` disables.
    pub max_cycles: u64,
    /// Seed for the `rand` intrinsic.
    pub seed: u64,
    /// Escape batch size before an automatic flush.
    pub escape_batch: usize,
    /// Optional page-move injection.
    pub move_driver: Option<MoveDriverConfig>,
    /// Optional swap injection.
    pub swap_driver: Option<SwapDriverConfig>,
    /// Additional (idle) threads participating in world stops.
    pub extra_threads: usize,
    /// Scheduler quantum in retired instructions: with parked threads, the
    /// round-robin scheduler switches at the first instruction boundary at
    /// or past this many instructions since the last switch (a blocked
    /// join yields the rest of its quantum immediately). Uniform across
    /// engines — quanta are counted in retired instructions, which every
    /// engine retires identically — so thread interleaving never depends
    /// on the engine.
    pub sched_quantum: u64,
    /// Simulated clock for converting cycles to seconds.
    pub freq_hz: f64,
    /// Loader sizing.
    pub load: LoadConfig,
    /// Let a failed call guard invoke the kernel for seamless stack
    /// expansion (paper §2.2) instead of faulting.
    pub auto_grow_stack: bool,
    /// Stack growth ceiling in bytes.
    pub max_stack: u64,
    /// Optional fault-injection schedule installed into the kernel.
    /// `Some(FaultPlan::new())` arms nothing but enables the journaled
    /// (crash-consistent) move path, for measuring its overhead.
    pub fault_plan: Option<FaultPlan>,
    /// Host threads the kernel's move engine shards patch plans across
    /// (1 = serial). Guest-visible state and counters are bit-identical
    /// at every setting; modeled move cycles follow the cost model's
    /// matching `patch_workers` (see [`SimKernel::set_move_workers`]).
    pub move_workers: usize,
    /// Threaded-tier transform toggles (only read by [`Engine::Threaded`];
    /// both on by default, the ablation rows of the guard-opts table turn
    /// them off selectively).
    pub threaded: crate::decode::ThreadedOpts,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            mode: Mode::Carat,
            engine: Engine::default(),
            guard_impl: GuardImpl::IfTree,
            max_steps: 2_000_000_000,
            max_cycles: u64::MAX,
            seed: 0x5eed_cafe_f00d_0001,
            escape_batch: 64,
            move_driver: None,
            swap_driver: None,
            extra_threads: 0,
            sched_quantum: 64,
            freq_hz: 2.3e9,
            load: LoadConfig::default(),
            auto_grow_stack: true,
            max_stack: 8 * 1024 * 1024,
            fault_plan: None,
            move_workers: 1,
            threaded: crate::decode::ThreadedOpts::default(),
        }
    }
}

/// Why a run stopped abnormally.
#[derive(Debug)]
pub enum VmError {
    /// A guard rejected an access — the CARAT protection fault.
    GuardFault {
        /// Offending address (or range start).
        addr: u64,
        /// Access length.
        len: u64,
        /// Whether it was a write.
        write: bool,
    },
    /// Heap exhausted.
    OutOfMemory,
    /// `max_steps` exceeded.
    StepLimit,
    /// `abort()` or `unreachable` executed, or an internal trap.
    Trap(String),
    /// Loading failed.
    Load(LoadError),
    /// A kernel operation (move, page-out, page-in, stack expansion)
    /// failed with a typed error. The kernel rolled back or aborted
    /// first, so its state — and the guest's memory image — is
    /// consistent; [`Vm::run_checked`] verifies this.
    Kernel(KernelError),
    /// The kernel's admission control refused the tenant (quota
    /// over-commit) before it became schedulable.
    Admission(AdmissionError),
    /// A fleet-level tenancy operation was refused (stale pid,
    /// externalized state, or an engaged kernel); see
    /// [`crate::TenancyError`].
    Tenancy(crate::multi::TenancyError),
    /// A DMA pin operation was refused, or an operation collided with
    /// a pinned region (e.g. externalizing a tenant whose memory is a
    /// live device target); see [`carat_kernel::PinError`].
    Pin(PinError),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::GuardFault { addr, len, write } => write!(
                f,
                "guard fault: {} of [{addr:#x}, +{len})",
                if *write { "write" } else { "read" }
            ),
            VmError::OutOfMemory => write!(f, "heap exhausted"),
            VmError::StepLimit => write!(f, "instruction step limit exceeded"),
            VmError::Trap(m) => write!(f, "trap: {m}"),
            VmError::Load(e) => write!(f, "load: {e}"),
            VmError::Kernel(e) => write!(f, "kernel: {e}"),
            VmError::Admission(e) => write!(f, "admission: {e}"),
            VmError::Tenancy(e) => write!(f, "tenancy: {e}"),
            VmError::Pin(e) => write!(f, "pin: {e}"),
        }
    }
}

impl From<PinError> for VmError {
    fn from(e: PinError) -> VmError {
        VmError::Pin(e)
    }
}

impl From<crate::multi::TenancyError> for VmError {
    fn from(e: crate::multi::TenancyError) -> VmError {
        VmError::Tenancy(e)
    }
}

impl Error for VmError {}

impl From<AdmissionError> for VmError {
    fn from(e: AdmissionError) -> VmError {
        VmError::Admission(e)
    }
}

impl From<LoadError> for VmError {
    fn from(e: LoadError) -> VmError {
        VmError::Load(e)
    }
}

impl From<KernelError> for VmError {
    fn from(e: KernelError) -> VmError {
        VmError::Kernel(e)
    }
}

/// Result of a completed run.
#[derive(Debug)]
pub struct RunResult {
    /// `main`'s return value.
    pub ret: i64,
    /// Performance counters.
    pub counters: PerfCounters,
    /// `print_*` output lines.
    pub output: Vec<String>,
    /// Runtime tracking statistics (escape histogram etc.).
    pub track_stats: TrackStats,
    /// Bytes of runtime tracking state at peak (Figure 6 numerator).
    pub tracking_bytes: usize,
    /// Peak live heap bytes (Figure 6 denominator component).
    pub peak_heap_bytes: u64,
    /// Kernel paging counters (Table 2).
    pub page_allocs: u64,
    /// Kernel page moves (Table 2).
    pub page_moves: u64,
    /// Pages at load (Table 2 "Initial Pages").
    pub initial_pages: u64,
    /// Static footprint bytes (Table 2).
    pub static_footprint: u64,
    /// DTLB misses (traditional mode).
    pub dtlb_misses: u64,
    /// DTLB misses per 1000 instructions.
    pub dtlb_mpki: f64,
    /// Pagewalks performed (traditional mode).
    pub pagewalks: u64,
    /// Superinstruction execution statistics (fused engine only; zero for
    /// the other engines). Host-side observability — deliberately outside
    /// [`PerfCounters`], which must stay byte-identical across engines.
    pub fusion: FusionStats,
}

/// Why a bounded [`Vm::run_slice`] returned without error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceExit {
    /// `main` returned with this value; call [`Vm::finish_run`] to fold
    /// the final tracking state into a [`RunResult`].
    Finished(i64),
    /// The instruction budget expired at a safe boundary (never between a
    /// pointer store and its escape notification). The process is
    /// preempted, not finished: call [`Vm::run_slice`] again to continue.
    Quantum,
}

/// Result of [`Vm::check_integrity`]: a structural audit of the
/// allocation table, frame allocator, swap store, and region set.
/// Produced by [`Vm::run_checked`] after every run — successful or not —
/// so fault-injection tests can prove a typed error never left the
/// machine corrupted.
#[derive(Debug, Clone, Default)]
pub struct IntegrityReport {
    /// Human-readable descriptions of every violated invariant (empty
    /// means the machine is consistent).
    pub violations: Vec<String>,
    /// Tracked allocations at audit time.
    pub allocations: usize,
    /// Page frames the buddy allocator accounts as in use.
    pub frames_in_use: u64,
    /// Live swap-store entries.
    pub swap_entries: usize,
}

impl IntegrityReport {
    /// Whether every structural invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An SSA register value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Value {
    I(i64),
    F(f64),
    P(u64),
    Undef,
}

impl Value {
    fn as_i(self) -> i64 {
        match self {
            Value::I(x) => x,
            Value::P(p) => p as i64,
            Value::F(_) | Value::Undef => 0,
        }
    }
    fn as_f(self) -> f64 {
        match self {
            Value::F(x) => x,
            _ => 0.0,
        }
    }
    fn as_p(self) -> u64 {
        match self {
            Value::P(p) => p,
            Value::I(x) => x as u64,
            _ => 0,
        }
    }
}

pub(crate) struct Frame {
    pub(crate) func: FuncId,
    pub(crate) regs: Vec<Value>,
    pub(crate) block: BlockId,
    pub(crate) idx: usize,
    pub(crate) prev_block: Option<BlockId>,
    pub(crate) sp_base: u64,
    pub(crate) ret_to: Option<ValueId>,
    /// The current block's decoded code, pinned here so the hot fetch is
    /// one indexed load (kept in sync by `push_frame` and `jump`).
    pub(crate) code: std::rc::Rc<[DecodedInst]>,
}

/// Bookkeeping for writing a patched register snapshot back into every
/// thread (see [`Vm::snapshot_regs`]).
#[derive(Debug, Default)]
pub(crate) struct SnapshotMap {
    reg_slots: Vec<(usize, usize, usize)>,
    sp_slots: Vec<(usize, usize)>,
    base_slots: Vec<(usize, usize, usize)>,
}

/// A thread that is not currently executing.
pub(crate) struct ParkedThread {
    pub(crate) frames: Vec<Frame>,
    pub(crate) sp: u64,
    pub(crate) stack_base: u64,
}

/// Last-hit region cache for the guard fast path: the bounds, permissions
/// and probe count of the region the previous guard resolved to. Valid
/// only while `generation` matches the kernel's
/// [`RegionTable`](carat_runtime::RegionTable) generation (bumped on
/// every region change). Probe counts are cacheable because the regions
/// are disjoint and sorted: every address inside one region takes the
/// same search path — and therefore the same probe count — through each
/// guard implementation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GuardFastPath {
    pub(crate) generation: u64,
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) perms: carat_runtime::Perms,
    pub(crate) probes: u64,
}

impl Default for GuardFastPath {
    fn default() -> GuardFastPath {
        // `generation` 0 never matches a live table (the loader's initial
        // `set_regions` bumps it to 1), so the empty cache never hits.
        GuardFastPath {
            generation: 0,
            start: 0,
            end: 0,
            perms: carat_runtime::Perms::R,
            probes: 0,
        }
    }
}

/// Lifecycle state of one thread slot.
pub(crate) enum ThreadState {
    /// This slot is the currently executing thread (its state lives in the
    /// `Vm` fields).
    Current,
    /// Parked, waiting for its next time slice.
    Parked(ParkedThread),
    /// Finished with this result.
    Done(i64),
}

/// The virtual machine.
pub struct Vm {
    cfg: VmConfig,
    /// The simulated kernel (public for post-run inspection).
    pub kernel: SimKernel,
    /// The runtime allocation table (public for post-run inspection).
    pub table: AllocationTable,
    image: ProcessImage,
    heap: HeapAllocator,
    tlb: TranslationUnit,
    counters: PerfCounters,
    output: Vec<String>,
    /// The module compiled to its flat executable form (also carries the
    /// per-function frame sizes and alloca offsets the reference engine
    /// reads). Shared: a fleet of tenants spawned from one module holds
    /// one decoded copy.
    program: Rc<DecodedProgram>,
    /// Reusable buffer for parallel phi-batch copies (decoded engine).
    phi_scratch: Vec<Value>,
    rng: u64,
    sp: u64,
    frames: Vec<Frame>,
    /// All thread slots (index = thread id); slot `cur_tid` is `Current`.
    threads: Vec<ThreadState>,
    cur_tid: usize,
    /// Threads currently in [`ThreadState::Parked`] — maintained so the
    /// per-instruction scheduler gate and the fused engine's mid-pair
    /// bail check are one integer compare instead of a slot scan.
    /// (`Done` slots stay in `threads` forever; counting the parked ones
    /// lets a program whose workers have retired keep its fast path.)
    parked_threads: usize,
    /// Set by a blocking intrinsic (join on a live thread): the current
    /// instruction must not advance; the scheduler rotates instead.
    block_current: bool,
    /// Low bound of the current thread's stack (rebased on relocations).
    cur_stack_base: u64,
    access_counter: u64,
    next_move_at: u64,
    moves_done: u64,
    next_swap_at: u64,
    swaps_done: u64,
    peak_tracking_bytes: usize,
    /// Guard fast path: last-hit region (see [`GuardFastPath`]).
    guard_cache: GuardFastPath,
    /// Translation fast path (traditional mode): the last VPN that went
    /// through [`TranslationUnit::access`]. A repeat of the same VPN is a
    /// guaranteed DTLB hit (the entry was touched last and cannot have
    /// been evicted without an intervening different-VPN access), so the
    /// front cache charges the hit without the set walk.
    last_vpn: u64,
    /// Superinstruction execution statistics (fused engine).
    fusion: FusionStats,
    /// Recycled frame register files: `push_frame` reuses a retired
    /// frame's `regs` allocation instead of hitting the allocator on
    /// every call. Bounded by the deepest call stack seen.
    regs_pool: Vec<Vec<Value>>,
    /// Next scheduler-rotation point in retired instructions (see
    /// [`VmConfig::sched_quantum`]); meaningful only while a thread is
    /// parked. Forced to 0 by a blocked join so the scheduler rotates at
    /// the next boundary.
    next_rotate_at: u64,
    /// Cached bail threshold in retired instructions: the next rotation
    /// point while any thread is parked, `max_steps` otherwise. Folded so
    /// [`Vm::fusion_bail`] is two compares on the hot path.
    bail_insts_at: u64,
    /// Cached bail threshold in cycles: the earliest of the next due
    /// move driver, the next due swap driver, and the cycle limit.
    bail_cycles_at: u64,
    /// Instruction count at which the current [`Vm::run_slice`] quantum
    /// expires (`u64::MAX` outside a bounded slice). Folded into
    /// `bail_insts_at` so the fused engine bails out of superinstruction
    /// pairs at slice boundaries exactly as it does at rotation points.
    slice_limit: u64,
    /// Cycle count at which the current [`Vm::run_slice_cycles`] deadline
    /// expires (`u64::MAX` outside a timer slice) — the CLINT-style
    /// `mtimecmp` comparator seen from inside the VM. Folded into
    /// `bail_cycles_at` the same way `slice_limit` folds into
    /// `bail_insts_at`.
    slice_cycle_limit: u64,
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("mode", &self.cfg.mode)
            .field("cycles", &self.counters.cycles)
            .finish()
    }
}

/// A descheduled tenant: everything a [`Vm`] owns *except* the kernel and
/// the allocation table (which park in the kernel's process table between
/// slices). This is what the fleet scheduler keeps per tenant — frame
/// stack, thread slots, decoded-code handle, counters, driver cursors —
/// instead of a full `Vm` wrapped around a placeholder kernel.
///
/// [`Vm::from_tenant`] / [`Vm::into_tenant`] convert in O(1) field moves:
/// a context switch materializes the running tenant around the one real
/// kernel and dismantles it again at slice end, never cloning or
/// allocating. The guard fast path and translation caches ride along and
/// self-invalidate (the region-table generation bumps on every switch).
pub struct TenantState {
    pub(crate) cfg: VmConfig,
    pub(crate) image: ProcessImage,
    pub(crate) heap: HeapAllocator,
    pub(crate) tlb: TranslationUnit,
    pub(crate) counters: PerfCounters,
    pub(crate) output: Vec<String>,
    pub(crate) program: Rc<DecodedProgram>,
    pub(crate) phi_scratch: Vec<Value>,
    pub(crate) rng: u64,
    pub(crate) sp: u64,
    pub(crate) frames: Vec<Frame>,
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) cur_tid: usize,
    pub(crate) parked_threads: usize,
    pub(crate) block_current: bool,
    pub(crate) cur_stack_base: u64,
    pub(crate) access_counter: u64,
    pub(crate) next_move_at: u64,
    pub(crate) moves_done: u64,
    pub(crate) next_swap_at: u64,
    pub(crate) swaps_done: u64,
    pub(crate) peak_tracking_bytes: usize,
    pub(crate) guard_cache: GuardFastPath,
    pub(crate) last_vpn: u64,
    pub(crate) fusion: FusionStats,
    pub(crate) regs_pool: Vec<Vec<Value>>,
    pub(crate) next_rotate_at: u64,
    pub(crate) bail_insts_at: u64,
    pub(crate) bail_cycles_at: u64,
    pub(crate) slice_limit: u64,
    pub(crate) slice_cycle_limit: u64,
}

impl fmt::Debug for TenantState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantState")
            .field("mode", &self.cfg.mode)
            .field("cycles", &self.counters.cycles)
            .finish()
    }
}

impl TenantState {
    /// The tenant's live performance counters (the differential
    /// comparison target — kernel-side scheduling charges never appear
    /// here).
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// The tenant's live image (globals patched by moves, stack rebased).
    pub fn image(&self) -> &ProcessImage {
        &self.image
    }

    /// The tenant's VM configuration — the host-side half of an
    /// externalized capsule (the serialized image deliberately excludes
    /// it; see [`TenantState::externalize`]).
    pub fn config(&self) -> &VmConfig {
        &self.cfg
    }

    /// The tenant's decoded program handle (shared across the fleet;
    /// never serialized).
    pub fn program(&self) -> &Rc<DecodedProgram> {
        &self.program
    }

    /// Approximate heap bytes this descheduled tenant pins on the host:
    /// frame stack, thread slots, register pools, buffered output. The
    /// decoded program is shared across the fleet and the capsule lives
    /// in kernel physical memory, so neither is charged here. The fleet
    /// bench uses this to show per-descheduled-tenant overhead is
    /// O(tenant size), not O(fleet size).
    pub fn footprint_bytes(&self) -> usize {
        let frame_bytes = |frames: &[Frame]| -> usize {
            frames
                .iter()
                .map(|f| f.regs.capacity() * std::mem::size_of::<Value>())
                .sum::<usize>()
                + std::mem::size_of_val(frames)
        };
        let mut bytes = std::mem::size_of::<TenantState>();
        bytes += frame_bytes(&self.frames);
        bytes += self.threads.len() * std::mem::size_of::<ThreadState>();
        for t in &self.threads {
            if let ThreadState::Parked(p) = t {
                bytes += frame_bytes(&p.frames);
            }
        }
        bytes += self
            .regs_pool
            .iter()
            .map(|r| r.capacity() * std::mem::size_of::<Value>())
            .sum::<usize>();
        bytes += self.output.iter().map(|s| s.capacity()).sum::<usize>();
        bytes += self.phi_scratch.capacity() * std::mem::size_of::<Value>();
        bytes += self.image.globals.capacity() * std::mem::size_of::<u64>();
        bytes
    }
}

impl Vm {
    /// Create a VM over a fresh kernel and load `module` into it
    /// (unsigned path; use [`Vm::load_signed`] for the full trust chain).
    ///
    /// # Errors
    ///
    /// Propagates loader failures.
    pub fn new(module: Module, cfg: VmConfig) -> Result<Vm, VmError> {
        let mut kernel = SimKernel::new(512 * 1024 * 1024);
        if let Some(plan) = cfg.fault_plan.clone() {
            kernel.install_fault_plan(plan);
        }
        let mut table = AllocationTable::new();
        let image = kernel.load_unsigned(module, &mut table, cfg.load)?;
        Ok(Vm::from_parts(kernel, table, image, cfg))
    }

    /// Create a VM from a signed module, verifying the trust chain.
    ///
    /// # Errors
    ///
    /// Signature, parse, verify, or memory failures.
    pub fn load_signed(
        signed: &carat_core::SignedModule,
        trusted: Vec<carat_core::SigningKey>,
        cfg: VmConfig,
    ) -> Result<Vm, VmError> {
        let mut kernel = SimKernel::new(512 * 1024 * 1024);
        // The plan must be live before `load` so faults can target the
        // trust chain (signature corruption in flight).
        if let Some(plan) = cfg.fault_plan.clone() {
            kernel.install_fault_plan(plan);
        }
        for k in trusted {
            kernel.trust(k);
        }
        let mut table = AllocationTable::new();
        let image = kernel.load(signed, &mut table, cfg.load)?;
        Ok(Vm::from_parts(kernel, table, image, cfg))
    }

    /// Assemble a VM from an already-loaded process: a kernel (real or
    /// [`SimKernel::placeholder`]), the allocation table the loader
    /// populated, and the image it produced. This is the multi-tenant
    /// entry point — a scheduler loads N images through one shared
    /// kernel, registers each with the kernel's process table, and parks
    /// each VM on a placeholder kernel, swapping the real kernel in for
    /// the duration of each time slice (see [`crate::MultiVm`]).
    pub fn from_parts(
        mut kernel: SimKernel,
        table: AllocationTable,
        image: ProcessImage,
        cfg: VmConfig,
    ) -> Vm {
        kernel.set_move_workers(cfg.move_workers);
        let threaded = (cfg.engine == Engine::Threaded).then_some(cfg.threaded);
        let program = Rc::new(DecodedProgram::decode_with(&image.module, threaded));
        Vm::assemble(kernel, table, image, cfg, program)
    }

    /// Assemble a VM from parts plus an already-decoded (possibly shared)
    /// program, without touching the kernel's move-engine configuration.
    /// This is the fleet spawn path: the scheduler owns the kernel's
    /// worker setting, and thousands of tenants share one decoded copy of
    /// their module.
    pub(crate) fn assemble(
        kernel: SimKernel,
        table: AllocationTable,
        image: ProcessImage,
        cfg: VmConfig,
        program: Rc<DecodedProgram>,
    ) -> Vm {
        let heap = HeapAllocator::new(image.heap.0, image.heap.1);
        let tlb = TranslationUnit::new(&kernel.cost);
        let sp = image.stack_top();
        let next_move_at = cfg.move_driver.map(|d| d.period_cycles).unwrap_or(u64::MAX);
        let next_swap_at = cfg.swap_driver.map(|d| d.period_cycles).unwrap_or(u64::MAX);
        let seed = cfg.seed;
        let stack_base = image.stack.0;
        let mut vm = Vm {
            cfg,
            kernel,
            table,
            image,
            heap,
            tlb,
            counters: PerfCounters::default(),
            output: Vec::new(),
            program,
            phi_scratch: Vec::new(),
            rng: seed | 1,
            sp,
            frames: Vec::new(),
            threads: vec![ThreadState::Current],
            cur_tid: 0,
            parked_threads: 0,
            block_current: false,
            cur_stack_base: 0, // set just below from the image
            access_counter: 0,
            next_move_at,
            moves_done: 0,
            next_swap_at,
            swaps_done: 0,
            peak_tracking_bytes: 0,
            guard_cache: GuardFastPath::default(),
            last_vpn: u64::MAX,
            fusion: FusionStats::default(),
            regs_pool: Vec::new(),
            next_rotate_at: 0,
            bail_insts_at: 0,
            bail_cycles_at: 0,
            slice_limit: u64::MAX,
            slice_cycle_limit: u64::MAX,
        };
        vm.cur_stack_base = stack_base;
        vm.recompute_bail();
        vm
    }

    /// Dismantle this VM into the kernel, the allocation table, and a
    /// compact [`TenantState`]. The fleet scheduler calls this at the end
    /// of every slice: the kernel goes back to the scheduler, the table
    /// checks back into the process table, and the `TenantState` parks in
    /// the tenant slot. Pure field moves — no allocation, no clone.
    pub fn into_tenant(self) -> (SimKernel, AllocationTable, TenantState) {
        let Vm {
            cfg,
            kernel,
            table,
            image,
            heap,
            tlb,
            counters,
            output,
            program,
            phi_scratch,
            rng,
            sp,
            frames,
            threads,
            cur_tid,
            parked_threads,
            block_current,
            cur_stack_base,
            access_counter,
            next_move_at,
            moves_done,
            next_swap_at,
            swaps_done,
            peak_tracking_bytes,
            guard_cache,
            last_vpn,
            fusion,
            regs_pool,
            next_rotate_at,
            bail_insts_at,
            bail_cycles_at,
            slice_limit,
            slice_cycle_limit,
        } = self;
        let state = TenantState {
            cfg,
            image,
            heap,
            tlb,
            counters,
            output,
            program,
            phi_scratch,
            rng,
            sp,
            frames,
            threads,
            cur_tid,
            parked_threads,
            block_current,
            cur_stack_base,
            access_counter,
            next_move_at,
            moves_done,
            next_swap_at,
            swaps_done,
            peak_tracking_bytes,
            guard_cache,
            last_vpn,
            fusion,
            regs_pool,
            next_rotate_at,
            bail_insts_at,
            bail_cycles_at,
            slice_limit,
            slice_cycle_limit,
        };
        (kernel, table, state)
    }

    /// Rebuild a runnable VM around the real kernel and the tenant's
    /// checked-out allocation table — the other half of
    /// [`Vm::into_tenant`]. Pure field moves; the caches inside the state
    /// (guard fast path, TLB) self-invalidate against the freshly
    /// installed region table on first use.
    pub fn from_tenant(kernel: SimKernel, table: AllocationTable, state: TenantState) -> Vm {
        let TenantState {
            cfg,
            image,
            heap,
            tlb,
            counters,
            output,
            program,
            phi_scratch,
            rng,
            sp,
            frames,
            threads,
            cur_tid,
            parked_threads,
            block_current,
            cur_stack_base,
            access_counter,
            next_move_at,
            moves_done,
            next_swap_at,
            swaps_done,
            peak_tracking_bytes,
            guard_cache,
            last_vpn,
            fusion,
            regs_pool,
            next_rotate_at,
            bail_insts_at,
            bail_cycles_at,
            slice_limit,
            slice_cycle_limit,
        } = state;
        Vm {
            cfg,
            kernel,
            table,
            image,
            heap,
            tlb,
            counters,
            output,
            program,
            phi_scratch,
            rng,
            sp,
            frames,
            threads,
            cur_tid,
            parked_threads,
            block_current,
            cur_stack_base,
            access_counter,
            next_move_at,
            moves_done,
            next_swap_at,
            swaps_done,
            peak_tracking_bytes,
            guard_cache,
            last_vpn,
            fusion,
            regs_pool,
            next_rotate_at,
            bail_insts_at,
            bail_cycles_at,
            slice_limit,
            slice_cycle_limit,
        }
    }

    /// The loaded image.
    pub fn image(&self) -> &ProcessImage {
        &self.image
    }

    /// The performance counters accumulated so far (live view — useful
    /// between scheduler slices, before [`Vm::finish_run`]).
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Run `main` to completion.
    ///
    /// # Errors
    ///
    /// See [`VmError`].
    pub fn run(mut self) -> Result<RunResult, VmError> {
        self.run_mut()
    }

    /// Run `main` to completion, then audit the machine's structural
    /// integrity — whatever the outcome. This is the fault-soak
    /// entry point: a run that dies with a typed error must still leave
    /// the allocation table, frame allocator, and swap store consistent,
    /// and the report proves (or disproves) that.
    pub fn run_checked(mut self) -> (Result<RunResult, VmError>, IntegrityReport) {
        let result = self.run_mut();
        let report = self.check_integrity();
        (result, report)
    }

    fn run_mut(&mut self) -> Result<RunResult, VmError> {
        self.start()?;
        match self.run_slice(u64::MAX)? {
            SliceExit::Finished(v) => Ok(self.finish_run(v)),
            // An unbounded slice cannot expire: the budget saturates to
            // `u64::MAX` retired instructions, unreachable under any
            // `max_steps`.
            SliceExit::Quantum => Err(VmError::Trap("unbounded slice expired".into())),
        }
    }

    /// Push `main`'s frame, making the VM runnable. Call once before the
    /// first [`Vm::run_slice`]; [`Vm::run`] does this internally.
    ///
    /// # Errors
    ///
    /// [`VmError::Trap`] when the module has no `main` or its frame does
    /// not fit the stack.
    pub fn start(&mut self) -> Result<(), VmError> {
        let main = self
            .image
            .module
            .main()
            .ok_or_else(|| VmError::Trap("no main function".into()))?;
        self.push_frame(main, &[], None)
    }

    /// Run for at most `budget` more retired instructions, stopping at
    /// the first safe boundary at or past the budget — the scheduler
    /// quantum primitive. Semantics and accounting are identical to an
    /// uninterrupted run: a preempted VM resumed by further slices
    /// retires the same instruction stream and charges the same cycles
    /// as [`Vm::run`] would in one pass (the multi-process differential
    /// suite enforces this).
    ///
    /// # Errors
    ///
    /// See [`VmError`]; the slice bound is always unwound first, so a
    /// failed slice leaves the VM consistent for inspection.
    pub fn run_slice(&mut self, budget: u64) -> Result<SliceExit, VmError> {
        self.slice_limit = self.counters.instructions.saturating_add(budget);
        self.recompute_bail();
        let out = self.run_slice_inner();
        self.slice_limit = u64::MAX;
        self.recompute_bail();
        out
    }

    /// Run until the modeled cycle counter reaches `deadline` — the
    /// timer-interrupt primitive. The CLINT-style timer arms `deadline`
    /// as its `mtimecmp`; the slice loop observes `cycles >= deadline`
    /// at the first safe boundary past it and returns
    /// [`SliceExit::Quantum`], exactly as an instruction quantum would.
    /// The same signals-masked deferrals apply (pending escape
    /// notifications, mid-flight fused pairs), and the gap between the
    /// deadline and the cycle count at the exit *is* the
    /// interrupt-to-dispatch latency the timer device records.
    ///
    /// A `deadline` at or before the current cycle count preempts at the
    /// first safe boundary (one interrupt, not a livelock: every step
    /// retires at least one cycle).
    ///
    /// # Errors
    ///
    /// See [`VmError`]; identical surface to [`Vm::run_slice`].
    pub fn run_slice_cycles(&mut self, deadline: u64) -> Result<SliceExit, VmError> {
        self.slice_cycle_limit = deadline;
        self.recompute_bail();
        let out = self.run_slice_inner();
        self.slice_cycle_limit = u64::MAX;
        self.recompute_bail();
        out
    }

    fn run_slice_inner(&mut self) -> Result<SliceExit, VmError> {
        loop {
            // Slice expiry first: like a world-stop, preemption may not
            // land between a pointer store and its escape callback —
            // defer to the next boundary once the notification is in.
            // Instruction quanta and cycle deadlines share one exit; a
            // scheduler arms whichever preemption source it uses.
            if (self.counters.instructions >= self.slice_limit
                || self.counters.cycles >= self.slice_cycle_limit)
                && !self.tracking_owed()
            {
                return Ok(SliceExit::Quantum);
            }
            // Step limit in retired instructions: every `step()` call
            // retires at least one (a blocked join still counts, exactly
            // as before), and a fused pair retires two — so this check is
            // equivalent to the old per-iteration counter for the unfused
            // engines and exact for the fused one, which bails out of a
            // pair the moment the limit is reached.
            if self.counters.instructions >= self.cfg.max_steps
                || self.counters.cycles > self.cfg.max_cycles
            {
                return Err(VmError::StepLimit);
            }
            if let Some(v) = self.step()? {
                if self.cur_tid == 0 {
                    // Main returned: the process ends (any still-running
                    // threads are abandoned, as on a real exit()).
                    return Ok(SliceExit::Finished(v));
                }
                self.threads[self.cur_tid] = ThreadState::Done(v);
                self.counters.cycles += self.kernel.cost.call;
                if !self.rotate(true)? {
                    return Err(VmError::Trap("all threads finished but main".into()));
                }
                self.grant_quantum();
                continue;
            }
            if self.counters.cycles >= self.next_move_at && !self.tracking_owed() {
                // A world-stop may not land between a pointer store and its
                // escape callback (the instrumentation stub runs with
                // signals masked in a real CARAT); defer until the
                // notification has been delivered.
                self.drive_move()?;
            }
            if self.counters.cycles >= self.next_swap_at && !self.tracking_owed() {
                self.drive_swap()?;
            }
            // Rotation can only change state when a parked thread exists;
            // gating on the parked count (not `threads.len()`, which keeps
            // `Done` slots forever) skips the no-op scan once every worker
            // has retired. With a parked thread, switch only at quantum
            // boundaries — per-instruction context switching is neither
            // realistic nor cheap (it dominated the threaded workloads).
            if self.parked_threads > 0
                && self.counters.instructions >= self.next_rotate_at
                && !self.tracking_owed()
            {
                self.rotate(false)?;
                self.grant_quantum();
            }
        }
    }

    /// Fold the final tracking state into a [`RunResult`] after
    /// [`Vm::run_slice`] returned [`SliceExit::Finished`].
    pub fn finish_run(&mut self, ret: i64) -> RunResult {
        // End of program: final escape flush and histogram fold.
        self.flush_escapes();
        self.table.finish();
        self.note_tracking_bytes();
        let mpki = self.tlb.dtlb_mpki(self.counters.instructions);
        RunResult {
            ret,
            output: std::mem::take(&mut self.output),
            track_stats: self.table.stats.clone(),
            tracking_bytes: self.peak_tracking_bytes,
            peak_heap_bytes: self.heap.peak_bytes,
            page_allocs: self.kernel.trace.allocs,
            page_moves: self.kernel.trace.moves,
            initial_pages: self.image.initial_pages,
            static_footprint: self.image.static_footprint,
            dtlb_misses: self.tlb.dtlb.misses,
            dtlb_mpki: mpki,
            pagewalks: self.tlb.pagewalks,
            fusion: self.fusion.clone(),
            counters: self.counters.clone(),
        }
    }

    /// Structural audit of the machine's memory-management state. Checks
    /// hold at any quiescent point — including right after a failed run —
    /// because every kernel error path rolls back or aborts first:
    ///
    /// * tracked allocations are disjoint (no move landed on live data);
    /// * the frame allocator's usage accounting is within the arena;
    /// * every swap entry's payload matches its recorded length;
    /// * kernel regions are well-formed.
    pub fn check_integrity(&self) -> IntegrityReport {
        let mut violations = Vec::new();
        // Allocation disjointness over the sorted snapshot. Poisoned
        // (swapped-out) allocations live in disjoint per-slot windows and
        // participate like any others.
        let mut allocs: Vec<(u64, u64)> = self
            .table
            .snapshot()
            .into_iter()
            .map(|(start, len, _, _)| (start, len))
            .collect();
        allocs.sort_unstable();
        for w in allocs.windows(2) {
            let (a_start, a_len) = w[0];
            let (b_start, _) = w[1];
            if a_start + a_len > b_start {
                violations.push(format!(
                    "allocations overlap: [{a_start:#x},+{a_len:#x}) and {b_start:#x}"
                ));
            }
        }
        let in_use = self.kernel.buddy.pages_in_use;
        let total = self.kernel.buddy.total_pages();
        if in_use > total {
            violations.push(format!(
                "frame allocator accounts {in_use} pages in use of {total}"
            ));
        }
        for slot in self.kernel.corrupt_swap_slots() {
            violations.push(format!("swap slot {slot} length/payload mismatch"));
        }
        for r in self.kernel.regions.regions() {
            if r.len == 0 || r.start.checked_add(r.len).is_none() {
                violations.push(format!("malformed region [{:#x},+{:#x})", r.start, r.len));
            }
        }
        IntegrityReport {
            allocations: allocs.len(),
            frames_in_use: in_use,
            swap_entries: self.kernel.swapped_ranges(),
            violations,
        }
    }

    fn push_frame(
        &mut self,
        func: FuncId,
        args: &[Value],
        ret_to: Option<ValueId>,
    ) -> Result<(), VmError> {
        let f = self.image.module.func(func);
        let fsize = self.program.funcs[func.index()].frame_size;
        if self.sp < fsize {
            return Err(VmError::Trap("stack exhausted".into()));
        }
        let sp_base = self.sp - fsize;
        // Without guards (baseline builds) nothing checks the stack bound;
        // physical addressing means an overflow would silently clobber
        // neighboring memory — exactly the protection CARAT's call guards
        // reintroduce. Trap loudly in the simulator instead.
        if sp_base < self.cur_stack_base {
            return Err(VmError::Trap(
                "stack overflow (no call guards to trigger expansion)".into(),
            ));
        }
        // Traditional model: the kernel grows the stack transparently; in
        // CARAT the call guard checked this range already.
        self.sp = sp_base;
        let mut regs = self.regs_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(f.num_values(), Value::Undef);
        regs[..args.len()].copy_from_slice(args);
        let entry = f.entry();
        self.frames.push(Frame {
            func,
            regs,
            block: entry,
            idx: 0,
            prev_block: None,
            sp_base,
            ret_to,
            code: self.pinned_code(func.index(), entry.index()),
        });
        self.counters.calls += 1;
        self.counters.cycles += self.kernel.cost.call;
        Ok(())
    }

    /// Execute one instruction; returns `Some(ret)` when `main` returns.
    ///
    /// The fused and decoded engines share one core: fused variants are
    /// just additional [`DecodedInst`] arms that only ever appear in the
    /// streams the fused engine pins into frames.
    fn step(&mut self) -> Result<Option<i64>, VmError> {
        match self.cfg.engine {
            Engine::Fused | Engine::Threaded => self.step_decoded::<true>(),
            Engine::Decoded => self.step_decoded::<false>(),
            Engine::Reference => self.step_reference(),
        }
    }

    /// The code stream to pin for `(func, block)` under the configured
    /// engine: the superinstruction view for [`Engine::Fused`], the
    /// threaded superblock stream for [`Engine::Threaded`], the plain
    /// decoded stream otherwise. Plain and fused are index-compatible by
    /// construction; threaded cursors are only ever created and resumed
    /// against threaded streams (chain members share one stream, so a
    /// frame suspended mid-chain re-pins the identical code).
    #[inline]
    fn pinned_code(&self, func: usize, block: usize) -> std::rc::Rc<[DecodedInst]> {
        let blk = &self.program.funcs[func].blocks[block];
        match self.cfg.engine.stream() {
            StreamKind::Fused => blk.fused_code.clone(),
            StreamKind::Threaded => blk.threaded_code.clone(),
            StreamKind::Plain => blk.code.clone(),
        }
    }

    /// Whether a fused pair must split between its components: the run
    /// loop would (or might) need control between the two instructions —
    /// another runnable thread exists, the step or cycle limit has been
    /// reached, or a move/swap driver is due. Conservative and always
    /// safe: a bail leaves the frame index on the tail slot, which holds
    /// the original unfused instruction, so execution resumes unfused at
    /// the exact component boundary.
    #[inline]
    fn fusion_bail(&self) -> bool {
        self.counters.instructions >= self.bail_insts_at
            || self.counters.cycles >= self.bail_cycles_at
    }

    /// Refold the bail thresholds after anything they depend on changes:
    /// the parked-thread count (spawn, scheduler switch) or a driver's
    /// next due point. `parked_threads > 0` folds to an instruction
    /// threshold of the next rotation boundary (the scheduler may need
    /// control there); the cycle threshold is the earliest due driver or the
    /// cycle limit (`> max_cycles` becomes `>= max_cycles + 1`,
    /// saturating: a limit of `u64::MAX` stays unreachable in any run
    /// that could ever retire it).
    fn recompute_bail(&mut self) {
        let base = if self.parked_threads > 0 {
            self.next_rotate_at.min(self.cfg.max_steps)
        } else {
            self.cfg.max_steps
        };
        // A bounded scheduler slice is one more instruction boundary the
        // run loop needs control at; outside a slice this folds to
        // `u64::MAX` and changes nothing.
        self.bail_insts_at = base.min(self.slice_limit);
        // A timer slice is a cycle boundary the loop needs control at,
        // exactly as the move/swap drivers are; outside one it folds to
        // `u64::MAX` and changes nothing.
        self.bail_cycles_at = self
            .next_move_at
            .min(self.next_swap_at)
            .min(self.slice_cycle_limit)
            .min(self.cfg.max_cycles.saturating_add(1));
    }

    /// Reference engine: clone each instruction out of the IR arena. Kept
    /// byte-for-byte semantically identical to the decoded fast path; any
    /// observable divergence between the two is a bug.
    fn step_reference(&mut self) -> Result<Option<i64>, VmError> {
        let frame = self.frames.last().expect("non-empty");
        let fid = frame.func;
        let f = self.image.module.func(fid);
        let block = frame.block;
        let insts = &f.block(block).insts;
        let v = insts[frame.idx];
        let inst = f.inst(v).expect("placed instruction").clone();
        self.counters.instructions += 1;
        self.counters.opcode_mix.record(inst.opcode());
        let cost = &self.kernel.cost;

        macro_rules! frame_mut {
            () => {
                self.frames.last_mut().expect("non-empty")
            };
        }
        macro_rules! reg {
            ($v:expr) => {
                self.frames.last().expect("frame").regs[$v.index()]
            };
        }

        match inst {
            Inst::Const(c) => {
                let val = match c {
                    Const::Int(x, w) => Value::I(w.wrap(x)),
                    Const::F64(x) => Value::F(x),
                    Const::Null => Value::P(0),
                    Const::GlobalAddr(g) => Value::P(self.image.globals[g.index()]),
                };
                frame_mut!().regs[v.index()] = val;
                frame_mut!().idx += 1;
            }
            Inst::Alloca(_) => {
                let off = self.program.funcs[fid.index()].alloca_offset(v.index());
                let addr = self.frames.last().unwrap().sp_base + off;
                self.counters.cycles += self.kernel.cost.alu;
                frame_mut!().regs[v.index()] = Value::P(addr);
                frame_mut!().idx += 1;
            }
            Inst::Load { ty, addr } => {
                let a = reg!(addr).as_p();
                let size = ty.size();
                let paddr = self.data_access(a, size, false)?;
                let val = match ty {
                    Type::F64 => Value::F(self.kernel.mem.read_f64(paddr)),
                    Type::Ptr => Value::P(self.kernel.mem.read_uint(paddr, 8)),
                    Type::Int(w) => Value::I(w.wrap(self.kernel.mem.read_uint(paddr, size) as i64)),
                    _ => return Err(VmError::Trap("load of aggregate".into())),
                };
                self.counters.loads += 1;
                frame_mut!().regs[v.index()] = val;
                frame_mut!().idx += 1;
            }
            Inst::Store { ty, addr, value } => {
                let a = reg!(addr).as_p();
                let size = ty.size();
                let paddr = self.data_access(a, size, true)?;
                // Read the value register only AFTER the access resolved:
                // a poison address triggers a page-in world-stop inside
                // `data_access`, which patches registers — a value read
                // earlier would be stale.
                let x = reg!(value);
                match ty {
                    Type::F64 => self.kernel.mem.write_f64(paddr, x.as_f()),
                    Type::Ptr => self.kernel.mem.write_uint(paddr, x.as_p(), 8),
                    Type::Int(_) => self.kernel.mem.write_uint(paddr, x.as_i() as u64, size),
                    _ => return Err(VmError::Trap("store of aggregate".into())),
                }
                self.counters.stores += 1;
                frame_mut!().idx += 1;
            }
            Inst::PtrAdd { base, index, elem } => {
                let b = reg!(base).as_p();
                let i = reg!(index).as_i();
                let addr = b.wrapping_add((i.wrapping_mul(elem.stride() as i64)) as u64);
                self.counters.cycles += cost.alu;
                frame_mut!().regs[v.index()] = Value::P(addr);
                frame_mut!().idx += 1;
            }
            Inst::FieldAddr {
                base,
                struct_ty,
                field,
            } => {
                let b = reg!(base).as_p();
                let addr = b + struct_ty.field_offset(field as usize);
                self.counters.cycles += cost.alu;
                frame_mut!().regs[v.index()] = Value::P(addr);
                frame_mut!().idx += 1;
            }
            Inst::Bin { op, lhs, rhs } => {
                let width = self
                    .image
                    .module
                    .func(fid)
                    .value_type(lhs)
                    .and_then(|t| t.int_width())
                    .unwrap_or(IntTy::I64);
                let out = self.eval_bin(op, reg!(lhs), reg!(rhs), width)?;
                frame_mut!().regs[v.index()] = out;
                frame_mut!().idx += 1;
            }
            Inst::Icmp { pred, lhs, rhs } => {
                let (a, b) = (reg!(lhs), reg!(rhs));
                let r = match (a, b) {
                    (Value::P(x), _) | (_, Value::P(x)) => {
                        let _ = x;
                        icmp_u(pred, a.as_p(), b.as_p())
                    }
                    _ => icmp_i(pred, a.as_i(), b.as_i()),
                };
                self.counters.cycles += self.kernel.cost.alu;
                frame_mut!().regs[v.index()] = Value::I(r as i64);
                frame_mut!().idx += 1;
            }
            Inst::Fcmp { pred, lhs, rhs } => {
                let (a, b) = (reg!(lhs).as_f(), reg!(rhs).as_f());
                let r = match pred {
                    Pred::Eq => a == b,
                    Pred::Ne => a != b,
                    Pred::Slt | Pred::Ult => a < b,
                    Pred::Sle => a <= b,
                    Pred::Sgt => a > b,
                    Pred::Sge | Pred::Uge => a >= b,
                };
                self.counters.cycles += self.kernel.cost.fpu;
                frame_mut!().regs[v.index()] = Value::I(r as i64);
                frame_mut!().idx += 1;
            }
            Inst::Cast { kind, value, to } => {
                let x = reg!(value);
                let out = match kind {
                    CastKind::Sext | CastKind::Zext | CastKind::Trunc => {
                        let w = to.int_width().unwrap_or(IntTy::I64);
                        Value::I(w.wrap(x.as_i()))
                    }
                    CastKind::SiToFp => Value::F(x.as_i() as f64),
                    CastKind::FpToSi => Value::I(x.as_f() as i64),
                    CastKind::PtrToInt => Value::I(x.as_p() as i64),
                    CastKind::IntToPtr => Value::P(x.as_i() as u64),
                };
                self.counters.cycles += self.kernel.cost.alu;
                frame_mut!().regs[v.index()] = out;
                frame_mut!().idx += 1;
            }
            Inst::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = reg!(cond).as_i() != 0;
                let out = if c { reg!(if_true) } else { reg!(if_false) };
                self.counters.cycles += self.kernel.cost.alu;
                frame_mut!().regs[v.index()] = out;
                frame_mut!().idx += 1;
            }
            Inst::Phi { .. } => {
                // Phis are handled en bloc at block entry; reaching one here
                // means we are at the block head: evaluate all phis in
                // parallel against prev_block.
                self.exec_phis()?;
            }
            Inst::Call { callee, args, .. } => {
                // Args buffered on the stack: no per-call heap allocation
                // for the common arity (the `Vec` path is the overflow).
                let mut buf = [Value::Undef; 16];
                let mut heap = Vec::new();
                let argv: &[Value] = if args.len() <= buf.len() {
                    for (slot, &a) in buf.iter_mut().zip(args.iter()) {
                        *slot = reg!(a);
                    }
                    &buf[..args.len()]
                } else {
                    heap.extend(args.iter().map(|&a| reg!(a)));
                    &heap
                };
                frame_mut!().idx += 1; // return lands after the call
                self.push_frame(callee, argv, Some(v))?;
            }
            Inst::CallIntrinsic { intr, args } => {
                let argv: Vec<Value> = args.iter().map(|&a| reg!(a)).collect();
                let out = self.exec_intrinsic(intr, &argv)?;
                if self.block_current {
                    // A blocking intrinsic (join): leave the instruction
                    // pointer in place; the run loop's scheduler rotates
                    // away and this instruction re-executes later.
                    self.block_current = false;
                    self.counters.cycles += self.kernel.cost.branch;
                    return Ok(None);
                }
                if let Some(x) = out {
                    frame_mut!().regs[v.index()] = x;
                }
                frame_mut!().idx += 1;
            }
            Inst::Jmp { target } => {
                self.counters.cycles += self.kernel.cost.branch;
                self.jump(block, target);
            }
            Inst::Br {
                cond,
                if_true,
                if_false,
            } => {
                let c = reg!(cond).as_i() != 0;
                self.counters.cycles += self.kernel.cost.branch;
                self.jump(block, if c { if_true } else { if_false });
            }
            Inst::Ret { value } => {
                let out = value.map(|x| reg!(x));
                let frame = self.frames.pop().expect("frame");
                // Release the stack frame; recycle its register file.
                self.sp = frame.sp_base + self.program.funcs[frame.func.index()].frame_size;
                self.counters.cycles += self.kernel.cost.branch;
                self.regs_pool.push(frame.regs);
                match self.frames.last_mut() {
                    Some(parent) => {
                        if let (Some(dst), Some(val)) = (frame.ret_to, out) {
                            parent.regs[dst.index()] = val;
                        }
                    }
                    None => {
                        return Ok(Some(out.map(Value::as_i).unwrap_or(0)));
                    }
                }
            }
            Inst::Unreachable => {
                return Err(VmError::Trap("unreachable executed".into()));
            }
        }
        Ok(None)
    }

    /// Decoded engine: execute instructions from the flat pre-resolved
    /// stream. No cloning, no arena walk, no hash lookups — the decoded
    /// instruction is `Copy` and carries its operand register slots,
    /// immediates, and resolved offsets inline.
    ///
    /// Dispatch is two-tiered. The **fast tier** executes register-only
    /// instructions (constants, arithmetic, compares, casts, selects, phi
    /// batches, branches, the fused pairs built from them) and — through
    /// the shared [`data_access_resolved`] free function — loads and
    /// stores to resolved (non-poison) addresses, all under one sustained
    /// destructured borrow of the disjoint fields they touch: the frame,
    /// the counters, the kernel, the TLB, the decoded program. The
    /// per-instruction frame re-borrow disappears and the compiler can
    /// keep the hot counters in registers across instructions. Anything
    /// that needs the whole `&mut self` — calls, intrinsics, guards,
    /// returns, and accesses to poison (swapped-out) addresses, whose
    /// page-in world-stop patches arbitrary state — breaks to the **slow
    /// tier**: a full-`self` dispatch of that one instruction, identical
    /// to the pre-split loop. Each arm records its own instruction count
    /// and opcode mix (with a constant opcode index in the fast tier)
    /// exactly as the shared loop header used to.
    ///
    /// Batched dispatch (`BATCH = true`, fused engine only): instead of
    /// returning to the run loop after every instruction, keep executing
    /// until [`Vm::fusion_bail`] reports that the run loop could need
    /// control — a parked thread to rotate to, a step/cycle limit, or a
    /// due move/swap driver. Between two instructions where none of those
    /// hold, a run-loop iteration is a provable no-op, so skipping it
    /// changes host time only. Every per-instruction effect (counters,
    /// opcode mix, cycles) is still charged identically inside the loop.
    fn step_decoded<const BATCH: bool>(&mut self) -> Result<Option<i64>, VmError> {
        loop {
            // --- fast tier: register-only ops, one sustained borrow ---
            {
                let Vm {
                    frames,
                    counters,
                    kernel,
                    tlb,
                    program,
                    image,
                    fusion,
                    phi_scratch,
                    cfg,
                    access_counter,
                    last_vpn,
                    bail_insts_at,
                    bail_cycles_at,
                    guard_cache,
                    ..
                } = self;
                let stream = cfg.engine.stream();
                let mode = cfg.mode;
                let fr = frames.last_mut().expect("non-empty");
                loop {
                    match fr.code[fr.idx] {
                        DecodedInst::ConstI { dst, val } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Const);
                            fr.regs[dst as usize] = Value::I(val);
                            fr.idx += 1;
                        }
                        DecodedInst::ConstF { dst, val } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Const);
                            fr.regs[dst as usize] = Value::F(val);
                            fr.idx += 1;
                        }
                        DecodedInst::ConstNull { dst } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Const);
                            fr.regs[dst as usize] = Value::P(0);
                            fr.idx += 1;
                        }
                        DecodedInst::ConstGlobal { dst, global } => {
                            // Globals relocate (moves, swaps): always read the
                            // current address out of the image.
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Const);
                            fr.regs[dst as usize] = Value::P(image.globals[global as usize]);
                            fr.idx += 1;
                        }
                        DecodedInst::Alloca { dst, off } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Alloca);
                            counters.cycles += kernel.cost.alu;
                            fr.regs[dst as usize] = Value::P(fr.sp_base + off);
                            fr.idx += 1;
                        }
                        DecodedInst::PtrAdd {
                            dst,
                            base,
                            index,
                            stride,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::PtrAdd);
                            counters.cycles += kernel.cost.alu;
                            let b = fr.regs[base as usize].as_p();
                            let i = fr.regs[index as usize].as_i();
                            fr.regs[dst as usize] =
                                Value::P(b.wrapping_add((i.wrapping_mul(stride as i64)) as u64));
                            fr.idx += 1;
                        }
                        DecodedInst::FieldAddr { dst, base, off } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::FieldAddr);
                            counters.cycles += kernel.cost.alu;
                            fr.regs[dst as usize] = Value::P(fr.regs[base as usize].as_p() + off);
                            fr.idx += 1;
                        }
                        DecodedInst::Bin {
                            dst,
                            op,
                            lhs,
                            rhs,
                            width,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Bin);
                            let (a, b) = (fr.regs[lhs as usize], fr.regs[rhs as usize]);
                            fr.regs[dst as usize] =
                                eval_bin(&kernel.cost, counters, op, a, b, width)?;
                            fr.idx += 1;
                        }
                        DecodedInst::Icmp {
                            dst,
                            pred,
                            lhs,
                            rhs,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Icmp);
                            counters.cycles += kernel.cost.alu;
                            let (a, b) = (fr.regs[lhs as usize], fr.regs[rhs as usize]);
                            let r = match (a, b) {
                                (Value::P(_), _) | (_, Value::P(_)) => {
                                    icmp_u(pred, a.as_p(), b.as_p())
                                }
                                _ => icmp_i(pred, a.as_i(), b.as_i()),
                            };
                            fr.regs[dst as usize] = Value::I(r as i64);
                            fr.idx += 1;
                        }
                        DecodedInst::Fcmp {
                            dst,
                            pred,
                            lhs,
                            rhs,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Fcmp);
                            counters.cycles += kernel.cost.fpu;
                            let (a, b) =
                                (fr.regs[lhs as usize].as_f(), fr.regs[rhs as usize].as_f());
                            let r = match pred {
                                Pred::Eq => a == b,
                                Pred::Ne => a != b,
                                Pred::Slt | Pred::Ult => a < b,
                                Pred::Sle => a <= b,
                                Pred::Sgt => a > b,
                                Pred::Sge | Pred::Uge => a >= b,
                            };
                            fr.regs[dst as usize] = Value::I(r as i64);
                            fr.idx += 1;
                        }
                        DecodedInst::Cast {
                            dst,
                            kind,
                            src,
                            width,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Cast);
                            counters.cycles += kernel.cost.alu;
                            let x = fr.regs[src as usize];
                            fr.regs[dst as usize] = match kind {
                                CastKind::Sext | CastKind::Zext | CastKind::Trunc => {
                                    Value::I(width.wrap(x.as_i()))
                                }
                                CastKind::SiToFp => Value::F(x.as_i() as f64),
                                CastKind::FpToSi => Value::I(x.as_f() as i64),
                                CastKind::PtrToInt => Value::I(x.as_p() as i64),
                                CastKind::IntToPtr => Value::P(x.as_i() as u64),
                            };
                            fr.idx += 1;
                        }
                        DecodedInst::Select {
                            dst,
                            cond,
                            if_true,
                            if_false,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Select);
                            counters.cycles += kernel.cost.alu;
                            let c = fr.regs[cond as usize].as_i() != 0;
                            let src = if c { if_true } else { if_false };
                            fr.regs[dst as usize] = fr.regs[src as usize];
                            fr.idx += 1;
                        }
                        DecodedInst::PhiBatch => {
                            // Apply the pre-resolved phi copy list for the
                            // edge `prev_block -> block`, in parallel (all
                            // sources read before any destination is
                            // written). Counts as one instruction, matching
                            // [`Vm::exec_phis`].
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Phi);
                            let prev = fr
                                .prev_block
                                .ok_or_else(|| VmError::Trap("phi at function entry".into()))?;
                            let df = &program.funcs[fr.func.index()];
                            let blk = &df.blocks[fr.block.index()];
                            let Some(edge) = blk.phi_edges.iter().find(|e| e.pred == prev) else {
                                return Err(VmError::Trap(format!(
                                    "phi missing incoming from {prev}"
                                )));
                            };
                            let copies = &df.phi_copies[edge.start as usize..][..edge.len as usize];
                            phi_scratch.clear();
                            phi_scratch
                                .extend(copies.iter().map(|&(_, src)| fr.regs[src as usize]));
                            for (k, &(dst, _)) in copies.iter().enumerate() {
                                fr.regs[dst as usize] = phi_scratch[k];
                            }
                            fr.idx += 1;
                        }
                        DecodedInst::Jmp { target } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Jmp);
                            counters.cycles += kernel.cost.branch;
                            take_jump(fr, program, stream, BlockId(target));
                        }
                        DecodedInst::Br {
                            cond,
                            if_true,
                            if_false,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Br);
                            counters.cycles += kernel.cost.branch;
                            let c = fr.regs[cond as usize].as_i() != 0;
                            take_jump(
                                fr,
                                program,
                                stream,
                                BlockId(if c { if_true } else { if_false }),
                            );
                        }

                        // Loads and stores to *resolved* addresses run in
                        // the fast tier through the shared
                        // [`data_access_resolved`] free function. A poison
                        // (swapped-out) address breaks to the slow tier —
                        // before any accounting, so the re-dispatch there
                        // records the instruction exactly once — because
                        // servicing it triggers a page-in world-stop that
                        // needs the whole `&mut self`.
                        DecodedInst::Load { dst, addr, cls } => {
                            let a = fr.regs[addr as usize].as_p();
                            if SimKernel::is_poison(a) {
                                break;
                            }
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Load);
                            let size = cls.size();
                            let paddr = data_access_resolved(
                                kernel,
                                tlb,
                                counters,
                                access_counter,
                                last_vpn,
                                mode,
                                a,
                                size,
                            );
                            fr.regs[dst as usize] = match cls {
                                ScalarClass::F64 => Value::F(kernel.mem.read_f64(paddr)),
                                ScalarClass::Ptr => Value::P(kernel.mem.read_uint(paddr, 8)),
                                ScalarClass::Int(w) => {
                                    Value::I(w.wrap(kernel.mem.read_uint(paddr, size) as i64))
                                }
                            };
                            counters.loads += 1;
                            fr.idx += 1;
                        }
                        DecodedInst::Store { addr, value, cls } => {
                            let a = fr.regs[addr as usize].as_p();
                            if SimKernel::is_poison(a) {
                                break;
                            }
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Store);
                            let size = cls.size();
                            let paddr = data_access_resolved(
                                kernel,
                                tlb,
                                counters,
                                access_counter,
                                last_vpn,
                                mode,
                                a,
                                size,
                            );
                            let x = fr.regs[value as usize];
                            fr.idx += 1;
                            match cls {
                                ScalarClass::F64 => kernel.mem.write_f64(paddr, x.as_f()),
                                ScalarClass::Ptr => kernel.mem.write_uint(paddr, x.as_p(), 8),
                                ScalarClass::Int(_) => {
                                    kernel.mem.write_uint(paddr, x.as_i() as u64, size)
                                }
                            }
                            counters.stores += 1;
                        }

                        // --- superinstructions over register-only pairs ---
                        //
                        // Each arm executes its first component exactly as
                        // the plain arm above does (same counters, same
                        // register writes), then consults the bail
                        // thresholds: if the run loop could need control
                        // between the components, the arm returns with the
                        // frame index already on the tail slot — which holds
                        // the original unfused instruction — and execution
                        // resumes unfused at the exact component boundary.
                        // Otherwise the second component runs inline,
                        // charging its own instruction / opcode-mix / cycle
                        // accounting, and the pair counts as fused.
                        DecodedInst::FusedIcmpBr {
                            cdst,
                            pred,
                            lhs,
                            rhs,
                            if_true,
                            if_false,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Icmp);
                            counters.cycles += kernel.cost.alu;
                            let (a, b) = (fr.regs[lhs as usize], fr.regs[rhs as usize]);
                            let r = match (a, b) {
                                (Value::P(_), _) | (_, Value::P(_)) => {
                                    icmp_u(pred, a.as_p(), b.as_p())
                                }
                                _ => icmp_i(pred, a.as_i(), b.as_i()),
                            };
                            fr.regs[cdst as usize] = Value::I(r as i64);
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            fusion.executed[FusedKind::IcmpBr as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Br);
                            counters.cycles += kernel.cost.branch;
                            take_jump(
                                fr,
                                program,
                                stream,
                                BlockId(if r { if_true } else { if_false }),
                            );
                        }
                        DecodedInst::FusedConstBin {
                            cdst,
                            imm,
                            dst,
                            op,
                            lhs,
                            rhs,
                            width,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Const);
                            fr.regs[cdst as usize] = Value::I(imm as i64);
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            fusion.executed[FusedKind::ConstBin as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Bin);
                            let (a, b) = (fr.regs[lhs as usize], fr.regs[rhs as usize]);
                            fr.regs[dst as usize] =
                                eval_bin(&kernel.cost, counters, op, a, b, width)?;
                            fr.idx += 1;
                        }
                        DecodedInst::FusedBinBin {
                            dst1,
                            lhs1,
                            rhs1,
                            dst2,
                            lhs2,
                            rhs2,
                            op1,
                            op2,
                            w1,
                            w2,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Bin);
                            let (a, b) = (fr.regs[lhs1 as usize], fr.regs[rhs1 as usize]);
                            fr.regs[dst1 as usize] =
                                eval_bin(&kernel.cost, counters, op1, a, b, w1)?;
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            fusion.executed[FusedKind::BinBin as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Bin);
                            let (a, b) = (fr.regs[lhs2 as usize], fr.regs[rhs2 as usize]);
                            fr.regs[dst2 as usize] =
                                eval_bin(&kernel.cost, counters, op2, a, b, w2)?;
                            fr.idx += 1;
                        }
                        DecodedInst::FusedBinJmp {
                            dst,
                            lhs,
                            rhs,
                            target,
                            op,
                            width,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Bin);
                            let (a, b) = (fr.regs[lhs as usize], fr.regs[rhs as usize]);
                            fr.regs[dst as usize] =
                                eval_bin(&kernel.cost, counters, op, a, b, width)?;
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            fusion.executed[FusedKind::BinJmp as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Jmp);
                            counters.cycles += kernel.cost.branch;
                            take_jump(fr, program, stream, BlockId(target));
                        }
                        DecodedInst::FusedFcmpBr {
                            cdst,
                            pred,
                            lhs,
                            rhs,
                            if_true,
                            if_false,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Fcmp);
                            counters.cycles += kernel.cost.fpu;
                            let (a, b) =
                                (fr.regs[lhs as usize].as_f(), fr.regs[rhs as usize].as_f());
                            let r = match pred {
                                Pred::Eq => a == b,
                                Pred::Ne => a != b,
                                Pred::Slt | Pred::Ult => a < b,
                                Pred::Sle => a <= b,
                                Pred::Sgt => a > b,
                                Pred::Sge | Pred::Uge => a >= b,
                            };
                            fr.regs[cdst as usize] = Value::I(r as i64);
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            fusion.executed[FusedKind::FcmpBr as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Br);
                            counters.cycles += kernel.cost.branch;
                            take_jump(
                                fr,
                                program,
                                stream,
                                BlockId(if r { if_true } else { if_false }),
                            );
                        }
                        DecodedInst::FusedConstFBin {
                            val,
                            cdst,
                            dst,
                            lhs,
                            rhs,
                            op,
                            width,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Const);
                            fr.regs[cdst as usize] = Value::F(val);
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            fusion.executed[FusedKind::ConstFBin as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Bin);
                            let (a, b) = (fr.regs[lhs as usize], fr.regs[rhs as usize]);
                            fr.regs[dst as usize] =
                                eval_bin(&kernel.cost, counters, op, a, b, width)?;
                            fr.idx += 1;
                        }
                        DecodedInst::FusedConstConst { dst1, v1, dst2, v2 } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Const);
                            fr.regs[dst1 as usize] = Value::I(v1 as i64);
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            fusion.executed[FusedKind::ConstConst as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Const);
                            fr.regs[dst2 as usize] = Value::I(v2 as i64);
                            fr.idx += 1;
                        }
                        DecodedInst::FusedPtrAddConst {
                            pdst,
                            base,
                            index,
                            cdst,
                            stride,
                            imm,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::PtrAdd);
                            counters.cycles += kernel.cost.alu;
                            let b = fr.regs[base as usize].as_p();
                            let i = fr.regs[index as usize].as_i();
                            fr.regs[pdst as usize] =
                                Value::P(b.wrapping_add((i.wrapping_mul(stride as i64)) as u64));
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            fusion.executed[FusedKind::PtrAddConst as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Const);
                            fr.regs[cdst as usize] = Value::I(imm as i64);
                            fr.idx += 1;
                        }
                        DecodedInst::FusedCastBin {
                            cdst,
                            src,
                            dst,
                            lhs,
                            rhs,
                            kind,
                            cw,
                            op,
                            bw,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Cast);
                            counters.cycles += kernel.cost.alu;
                            let x = fr.regs[src as usize];
                            fr.regs[cdst as usize] = match kind {
                                CastKind::Sext | CastKind::Zext | CastKind::Trunc => {
                                    Value::I(cw.wrap(x.as_i()))
                                }
                                CastKind::SiToFp => Value::F(x.as_i() as f64),
                                CastKind::FpToSi => Value::I(x.as_f() as i64),
                                CastKind::PtrToInt => Value::I(x.as_p() as i64),
                                CastKind::IntToPtr => Value::P(x.as_i() as u64),
                            };
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            fusion.executed[FusedKind::CastBin as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Bin);
                            let (a, b) = (fr.regs[lhs as usize], fr.regs[rhs as usize]);
                            fr.regs[dst as usize] = eval_bin(&kernel.cost, counters, op, a, b, bw)?;
                            fr.idx += 1;
                        }

                        // Address-compute + memory superinstructions: the
                        // first component is register-only; the access runs
                        // through the same fast-tier path as the plain
                        // load/store arms. A poison address breaks to the
                        // slow tier at the component boundary (the frame
                        // index is already on the tail slot, which holds
                        // the original unfused access) — the pair then
                        // retires unfused, exactly like a mid-pair bail.
                        DecodedInst::FusedPtrAddLoad {
                            pdst,
                            base,
                            index,
                            stride,
                            dst,
                            cls,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::PtrAdd);
                            counters.cycles += kernel.cost.alu;
                            let b = fr.regs[base as usize].as_p();
                            let i = fr.regs[index as usize].as_i();
                            let a = b.wrapping_add((i.wrapping_mul(stride as i64)) as u64);
                            fr.regs[pdst as usize] = Value::P(a);
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            if SimKernel::is_poison(a) {
                                break;
                            }
                            fusion.executed[FusedKind::PtrAddLoad as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Load);
                            let size = cls.size();
                            let paddr = data_access_resolved(
                                kernel,
                                tlb,
                                counters,
                                access_counter,
                                last_vpn,
                                mode,
                                a,
                                size,
                            );
                            fr.regs[dst as usize] = match cls {
                                ScalarClass::F64 => Value::F(kernel.mem.read_f64(paddr)),
                                ScalarClass::Ptr => Value::P(kernel.mem.read_uint(paddr, 8)),
                                ScalarClass::Int(w) => {
                                    Value::I(w.wrap(kernel.mem.read_uint(paddr, size) as i64))
                                }
                            };
                            counters.loads += 1;
                            fr.idx += 1;
                        }
                        DecodedInst::FusedPtrAddStore {
                            pdst,
                            base,
                            index,
                            stride,
                            value,
                            cls,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::PtrAdd);
                            counters.cycles += kernel.cost.alu;
                            let b = fr.regs[base as usize].as_p();
                            let i = fr.regs[index as usize].as_i();
                            let a = b.wrapping_add((i.wrapping_mul(stride as i64)) as u64);
                            fr.regs[pdst as usize] = Value::P(a);
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            if SimKernel::is_poison(a) {
                                break;
                            }
                            fusion.executed[FusedKind::PtrAddStore as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Store);
                            let size = cls.size();
                            let paddr = data_access_resolved(
                                kernel,
                                tlb,
                                counters,
                                access_counter,
                                last_vpn,
                                mode,
                                a,
                                size,
                            );
                            let x = fr.regs[value as usize];
                            fr.idx += 1;
                            match cls {
                                ScalarClass::F64 => kernel.mem.write_f64(paddr, x.as_f()),
                                ScalarClass::Ptr => kernel.mem.write_uint(paddr, x.as_p(), 8),
                                ScalarClass::Int(_) => {
                                    kernel.mem.write_uint(paddr, x.as_i() as u64, size)
                                }
                            }
                            counters.stores += 1;
                        }
                        DecodedInst::FusedFieldLoad {
                            pdst,
                            base,
                            off,
                            dst,
                            cls,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::FieldAddr);
                            counters.cycles += kernel.cost.alu;
                            let a = fr.regs[base as usize].as_p() + off as u64;
                            fr.regs[pdst as usize] = Value::P(a);
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            if SimKernel::is_poison(a) {
                                break;
                            }
                            fusion.executed[FusedKind::FieldLoad as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Load);
                            let size = cls.size();
                            let paddr = data_access_resolved(
                                kernel,
                                tlb,
                                counters,
                                access_counter,
                                last_vpn,
                                mode,
                                a,
                                size,
                            );
                            fr.regs[dst as usize] = match cls {
                                ScalarClass::F64 => Value::F(kernel.mem.read_f64(paddr)),
                                ScalarClass::Ptr => Value::P(kernel.mem.read_uint(paddr, 8)),
                                ScalarClass::Int(w) => {
                                    Value::I(w.wrap(kernel.mem.read_uint(paddr, size) as i64))
                                }
                            };
                            counters.loads += 1;
                            fr.idx += 1;
                        }
                        DecodedInst::FusedFieldStore {
                            pdst,
                            base,
                            off,
                            value,
                            cls,
                        } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::FieldAddr);
                            counters.cycles += kernel.cost.alu;
                            let a = fr.regs[base as usize].as_p() + off as u64;
                            fr.regs[pdst as usize] = Value::P(a);
                            fr.idx += 1;
                            if counters.instructions >= *bail_insts_at
                                || counters.cycles >= *bail_cycles_at
                            {
                                return Ok(None);
                            }
                            if SimKernel::is_poison(a) {
                                break;
                            }
                            fusion.executed[FusedKind::FieldStore as usize] += 1;
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Store);
                            let size = cls.size();
                            let paddr = data_access_resolved(
                                kernel,
                                tlb,
                                counters,
                                access_counter,
                                last_vpn,
                                mode,
                                a,
                                size,
                            );
                            let x = fr.regs[value as usize];
                            fr.idx += 1;
                            match cls {
                                ScalarClass::F64 => kernel.mem.write_f64(paddr, x.as_f()),
                                ScalarClass::Ptr => kernel.mem.write_uint(paddr, x.as_p(), 8),
                                ScalarClass::Int(_) => {
                                    kernel.mem.write_uint(paddr, x.as_i() as u64, size)
                                }
                            }
                            counters.stores += 1;
                        }

                        // --- threaded-tier ops ---
                        //
                        // A seam is the Jmp between two chained blocks:
                        // identical accounting, but the cursor continues
                        // into the next member's segment of the same
                        // concatenated stream — no re-pin, no idx reset.
                        // The batch gate below still runs, so rotation and
                        // due drivers get control at the same boundaries a
                        // real Jmp would give them.
                        DecodedInst::Seam { to } => {
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::Jmp);
                            counters.cycles += kernel.cost.branch;
                            fr.prev_block = Some(fr.block);
                            fr.block = BlockId(to);
                            fr.idx += 1;
                        }
                        // A block-local duplicate guard: the covering guard
                        // earlier in the block already ran, so this one
                        // only accounts its own removal — no instruction,
                        // no cycles, no probe.
                        DecodedInst::ElidedGuard => {
                            counters.guards_elided += 1;
                            fr.idx += 1;
                        }
                        // A surviving guard intrinsic strength-reduced to a
                        // fast-tier range probe. The passing path — cache hit
                        // or fresh region check — accounts exactly like
                        // `exec_guard_access`; a failing check breaks to the
                        // slow tier unaccounted, where the full guard path
                        // (page-in retry, fault reporting) runs instead.
                        DecodedInst::GuardFast {
                            gaddr,
                            glen,
                            imm,
                            write,
                        } => {
                            let addr = fr.regs[gaddr as usize].as_p();
                            let len = if glen == NO_REG {
                                imm as u64
                            } else {
                                fr.regs[glen as usize].as_i().max(0) as u64
                            };
                            let access = if write { Access::Write } else { Access::Read };
                            let gc = *guard_cache;
                            let (probes, fresh) = if gc.generation == kernel.regions.generation
                                && addr >= gc.start
                                && addr < gc.end
                                && len > 0
                                && addr.saturating_add(len) <= gc.end
                                && gc.perms.allows(access)
                            {
                                (gc.probes, false)
                            } else {
                                let check = kernel.regions.check(cfg.guard_impl, addr, len, access);
                                if !check.ok {
                                    break;
                                }
                                (check.probes, true)
                            };
                            counters.instructions += 1;
                            counters.opcode_mix.record(Opcode::CallIntrinsic);
                            counters.guards_executed += 1;
                            counters.guard_probes += probes;
                            counters.instrumentation_insts += 1;
                            let gcyc =
                                if cfg.guard_impl == GuardImpl::Mpx && kernel.regions.len() == 1 {
                                    kernel.cost.guard_mpx
                                } else {
                                    kernel.cost.software_guard_cost(probes)
                                };
                            counters.guard_cycles += gcyc;
                            counters.cycles += gcyc;
                            if fresh {
                                if let Some(r) = kernel.regions.containing(addr) {
                                    *guard_cache = GuardFastPath {
                                        generation: kernel.regions.generation,
                                        start: r.start,
                                        end: r.end(),
                                        perms: r.perms,
                                        probes,
                                    };
                                }
                            }
                            fr.idx += 1;
                        }

                        // Kernel and frame-stack instructions (calls,
                        // intrinsics, guards, returns) need the whole
                        // `&mut self`: fall through to the slow tier
                        // (which records their counters itself).
                        _ => break,
                    }
                    if !BATCH
                        || counters.instructions >= *bail_insts_at
                        || counters.cycles >= *bail_cycles_at
                    {
                        return Ok(None);
                    }
                }
            }

            // --- slow tier: one full-`self` dispatch ---
            let fr = self.frames.last_mut().expect("non-empty");
            let fid = fr.func;
            let inst = fr.code[fr.idx];
            // A hoisted whole-trip guard retires no instruction of its
            // own (the per-iteration guards it replaces were already
            // counted out via `guards_elided`), so it is dispatched
            // before the slow tier's instruction accounting.
            if let DecodedInst::HoistedGuard { meta } = inst {
                self.exec_hoisted_guard(fid, meta)?;
                self.frames.last_mut().expect("frame").idx += 1;
                if !BATCH || self.fusion_bail() {
                    return Ok(None);
                }
                continue;
            }
            self.counters.instructions += 1;
            self.counters.opcode_mix.record(inst.opcode());

            match inst {
                DecodedInst::Load { dst, addr, cls } => {
                    let a = fr.regs[addr as usize].as_p();
                    let size = cls.size();
                    let paddr = self.data_access(a, size, false)?;
                    let val = match cls {
                        ScalarClass::F64 => Value::F(self.kernel.mem.read_f64(paddr)),
                        ScalarClass::Ptr => Value::P(self.kernel.mem.read_uint(paddr, 8)),
                        ScalarClass::Int(w) => {
                            Value::I(w.wrap(self.kernel.mem.read_uint(paddr, size) as i64))
                        }
                    };
                    self.counters.loads += 1;
                    let fr = self.frames.last_mut().expect("frame");
                    fr.regs[dst as usize] = val;
                    fr.idx += 1;
                }
                DecodedInst::Store { addr, value, cls } => {
                    let a = fr.regs[addr as usize].as_p();
                    let size = cls.size();
                    let paddr = self.data_access(a, size, true)?;
                    // Read the value register only AFTER the access resolved:
                    // a poison address triggers a page-in world-stop inside
                    // `data_access`, which patches registers — a value read
                    // earlier would be stale.
                    let fr = self.frames.last_mut().expect("frame");
                    let x = fr.regs[value as usize];
                    fr.idx += 1;
                    match cls {
                        ScalarClass::F64 => self.kernel.mem.write_f64(paddr, x.as_f()),
                        ScalarClass::Ptr => self.kernel.mem.write_uint(paddr, x.as_p(), 8),
                        ScalarClass::Int(_) => {
                            self.kernel.mem.write_uint(paddr, x.as_i() as u64, size)
                        }
                    }
                    self.counters.stores += 1;
                }
                DecodedInst::Call { dst, callee, args } => {
                    fr.idx += 1; // return lands after the call
                                 // Args buffered on the stack: no per-call heap
                                 // allocation for the common arity.
                    let n = args.len as usize;
                    let pool = &self.program.funcs[fid.index()].operands;
                    let mut buf = [Value::Undef; 16];
                    let mut heap = Vec::new();
                    let argv: &[Value] = if n <= buf.len() {
                        for (slot, &r) in buf.iter_mut().zip(&pool[args.start as usize..][..n]) {
                            *slot = fr.regs[r as usize];
                        }
                        &buf[..n]
                    } else {
                        heap.extend(
                            pool[args.start as usize..][..n]
                                .iter()
                                .map(|&r| fr.regs[r as usize]),
                        );
                        &heap
                    };
                    self.push_frame(FuncId(callee), argv, Some(ValueId(dst)))?;
                }
                DecodedInst::Intrinsic { dst, intr, args } => {
                    let mut argv = [Value::Undef; 4];
                    let pool = &self.program.funcs[fid.index()].operands;
                    let n = args.len as usize;
                    for (slot, &r) in argv.iter_mut().zip(&pool[args.start as usize..][..n]) {
                        *slot = fr.regs[r as usize];
                    }
                    let out = self.exec_intrinsic(intr, &argv[..n])?;
                    if self.block_current {
                        // A blocking intrinsic (join): leave the instruction
                        // pointer in place; the join path already yielded the
                        // quantum, so the run loop's scheduler rotates away
                        // and this instruction re-executes later.
                        self.block_current = false;
                        self.counters.cycles += self.kernel.cost.branch;
                        return Ok(None);
                    }
                    let fr = self.frames.last_mut().expect("frame");
                    if let Some(x) = out {
                        fr.regs[dst as usize] = x;
                    }
                    fr.idx += 1;
                }
                DecodedInst::Ret { value } => {
                    let out = (value != NO_REG).then(|| fr.regs[value as usize]);
                    let frame = self.frames.pop().expect("frame");
                    // Release the stack frame; recycle its register file.
                    self.sp = frame.sp_base + self.program.funcs[frame.func.index()].frame_size;
                    self.counters.cycles += self.kernel.cost.branch;
                    self.regs_pool.push(frame.regs);
                    match self.frames.last_mut() {
                        Some(parent) => {
                            if let (Some(dst), Some(val)) = (frame.ret_to, out) {
                                parent.regs[dst.index()] = val;
                            }
                        }
                        None => {
                            return Ok(Some(out.map(Value::as_i).unwrap_or(0)));
                        }
                    }
                }
                DecodedInst::Unreachable => {
                    return Err(VmError::Trap("unreachable executed".into()));
                }
                DecodedInst::TrapAggregate { store } => {
                    return Err(VmError::Trap(
                        if store {
                            "store of aggregate"
                        } else {
                            "load of aggregate"
                        }
                        .into(),
                    ));
                }
                DecodedInst::FusedGuardLoad {
                    gaddr,
                    glen,
                    dst,
                    addr,
                    cls,
                } => {
                    let a = fr.regs[gaddr as usize].as_p();
                    let l = fr.regs[glen as usize].as_i().max(0) as u64;
                    self.exec_guard_access(a, l, Access::Read)?;
                    let fr = self.frames.last_mut().expect("frame");
                    fr.idx += 1;
                    if self.fusion_bail() {
                        return Ok(None);
                    }
                    self.fusion.executed[FusedKind::GuardLoad as usize] += 1;
                    self.counters.instructions += 1;
                    self.counters.opcode_mix.record(Opcode::Load);
                    // Re-read the address register: servicing a poison fault
                    // inside the guard patched registers.
                    let fr = self.frames.last().expect("frame");
                    let a2 = fr.regs[addr as usize].as_p();
                    let size = cls.size();
                    let paddr = self.data_access(a2, size, false)?;
                    let val = match cls {
                        ScalarClass::F64 => Value::F(self.kernel.mem.read_f64(paddr)),
                        ScalarClass::Ptr => Value::P(self.kernel.mem.read_uint(paddr, 8)),
                        ScalarClass::Int(w) => {
                            Value::I(w.wrap(self.kernel.mem.read_uint(paddr, size) as i64))
                        }
                    };
                    self.counters.loads += 1;
                    let fr = self.frames.last_mut().expect("frame");
                    fr.regs[dst as usize] = val;
                    fr.idx += 1;
                }
                DecodedInst::FusedGuardStore {
                    gaddr,
                    glen,
                    addr,
                    value,
                    cls,
                } => {
                    let a = fr.regs[gaddr as usize].as_p();
                    let l = fr.regs[glen as usize].as_i().max(0) as u64;
                    self.exec_guard_access(a, l, Access::Write)?;
                    let fr = self.frames.last_mut().expect("frame");
                    fr.idx += 1;
                    if self.fusion_bail() {
                        return Ok(None);
                    }
                    self.fusion.executed[FusedKind::GuardStore as usize] += 1;
                    self.counters.instructions += 1;
                    self.counters.opcode_mix.record(Opcode::Store);
                    // Re-read the address register (see `FusedGuardLoad`).
                    let fr = self.frames.last().expect("frame");
                    let a2 = fr.regs[addr as usize].as_p();
                    let size = cls.size();
                    let paddr = self.data_access(a2, size, true)?;
                    let fr = self.frames.last_mut().expect("frame");
                    let x = fr.regs[value as usize];
                    fr.idx += 1;
                    match cls {
                        ScalarClass::F64 => self.kernel.mem.write_f64(paddr, x.as_f()),
                        ScalarClass::Ptr => self.kernel.mem.write_uint(paddr, x.as_p(), 8),
                        ScalarClass::Int(_) => {
                            self.kernel.mem.write_uint(paddr, x.as_i() as u64, size)
                        }
                    }
                    self.counters.stores += 1;
                }
                // A fast-tier range probe whose check missed (cold cache
                // plus a failing or poison address): run the full guard
                // path — accounting, page-in retry, fault reporting.
                DecodedInst::GuardFast {
                    gaddr,
                    glen,
                    imm,
                    write,
                } => {
                    let addr = fr.regs[gaddr as usize].as_p();
                    let len = if glen == NO_REG {
                        imm as u64
                    } else {
                        fr.regs[glen as usize].as_i().max(0) as u64
                    };
                    let access = if write { Access::Write } else { Access::Read };
                    self.exec_guard_access(addr, len, access)?;
                    self.frames.last_mut().expect("frame").idx += 1;
                }
                _ => unreachable!("fast-tier instruction reached the slow tier"),
            }
            if !BATCH || self.fusion_bail() {
                return Ok(None);
            }
        }
    }
    /// Copy call arguments out of the operand pool into an argument vector.
    /// Evaluate all phis at the head of the current block in parallel,
    /// then advance past them.
    fn exec_phis(&mut self) -> Result<(), VmError> {
        let frame = self.frames.last().expect("frame");
        let f = self.image.module.func(frame.func);
        let block = frame.block;
        let prev = frame
            .prev_block
            .ok_or_else(|| VmError::Trap("phi at function entry".into()))?;
        let mut updates: Vec<(ValueId, Value)> = Vec::new();
        let mut consumed = 0usize;
        for &pv in &f.block(block).insts {
            let Some(Inst::Phi { incomings, .. }) = f.inst(pv) else {
                break;
            };
            let (_, iv) = incomings
                .iter()
                .find(|(b, _)| *b == prev)
                .ok_or_else(|| VmError::Trap(format!("phi missing incoming from {prev}")))?;
            updates.push((pv, frame.regs[iv.index()]));
            consumed += 1;
        }
        let frame = self.frames.last_mut().expect("frame");
        for (pv, val) in updates {
            frame.regs[pv.index()] = val;
        }
        frame.idx += consumed;
        Ok(())
    }

    fn jump(&mut self, from: BlockId, to: BlockId) {
        let stream = self.cfg.engine.stream();
        let frame = self.frames.last_mut().expect("frame");
        debug_assert_eq!(frame.block, from, "jump from a non-current block");
        take_jump(frame, &self.program, stream, to);
    }

    /// Evaluate a two-operand op. `width` is the integer result width,
    /// pre-resolved by the caller from the left operand's type (the
    /// decoded engine resolves it once at decode time).
    fn eval_bin(&mut self, op: BinOp, a: Value, b: Value, width: IntTy) -> Result<Value, VmError> {
        eval_bin(&self.kernel.cost, &mut self.counters, op, a, b, width)
    }
}

/// Evaluate a two-operand op. A free function over the exact fields it
/// touches (the cost model and the counters) so the fast dispatch tier
/// can call it while holding its destructured borrow of `Vm`; the
/// `Vm::eval_bin` method above wraps it for the reference engine.
/// `width` is the integer result width, pre-resolved by the caller from
/// the left operand's type (the decoded engine resolves it once at
/// decode time).
#[inline]
fn eval_bin(
    cost: &CostModel,
    counters: &mut PerfCounters,
    op: BinOp,
    a: Value,
    b: Value,
    width: IntTy,
) -> Result<Value, VmError> {
    {
        if op.is_float() {
            counters.cycles += cost.fpu;
            let (x, y) = (a.as_f(), b.as_f());
            return Ok(Value::F(match op {
                BinOp::Fadd => x + y,
                BinOp::Fsub => x - y,
                BinOp::Fmul => x * y,
                BinOp::Fdiv => x / y,
                _ => unreachable!(),
            }));
        }
        counters.cycles += match op {
            BinOp::Sdiv | BinOp::Srem | BinOp::Udiv | BinOp::Urem => 20,
            BinOp::Mul => 3,
            _ => cost.alu,
        };
        // Pointer arithmetic via add/sub keeps pointerness.
        let keep_ptr = matches!((a, op), (Value::P(_), BinOp::Add | BinOp::Sub));
        let (x, y) = (a.as_i(), b.as_i());
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Sdiv => {
                if y == 0 {
                    return Err(VmError::Trap("division by zero".into()));
                }
                x.wrapping_div(y)
            }
            BinOp::Srem => {
                if y == 0 {
                    return Err(VmError::Trap("remainder by zero".into()));
                }
                x.wrapping_rem(y)
            }
            BinOp::Udiv => {
                if y == 0 {
                    return Err(VmError::Trap("division by zero".into()));
                }
                ((x as u64) / (y as u64)) as i64
            }
            BinOp::Urem => {
                if y == 0 {
                    return Err(VmError::Trap("remainder by zero".into()));
                }
                ((x as u64) % (y as u64)) as i64
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Ashr => x.wrapping_shr(y as u32 & 63),
            BinOp::Lshr => ((x as u64).wrapping_shr(y as u32 & 63)) as i64,
            _ => unreachable!(),
        };
        Ok(if keep_ptr {
            Value::P(r as u64)
        } else {
            Value::I(width.wrap(r))
        })
    }
}

/// Redirect `fr` to block `to`, pinning that block's code stream (the
/// fused, threaded, or plain array, by engine). A free function over the
/// frame and the decoded program so the fast dispatch tier can take
/// branches without giving up its destructured borrow; [`Vm::jump`]
/// wraps it for the reference engine.
#[inline]
fn take_jump(fr: &mut Frame, program: &DecodedProgram, stream: StreamKind, to: BlockId) {
    fr.prev_block = Some(fr.block);
    fr.block = to;
    fr.idx = 0;
    let blk = &program.funcs[fr.func.index()].blocks[to.index()];
    fr.code = match stream {
        StreamKind::Fused => blk.fused_code.clone(),
        StreamKind::Threaded => blk.threaded_code.clone(),
        StreamKind::Plain => blk.code.clone(),
    };
}

/// The resolved (non-poison) body of [`Vm::data_access`]: charge the L1
/// model and run the mode-specific translation bookkeeping. A free
/// function over the disjoint fields it touches, so the fast dispatch
/// tier can service loads and stores without leaving its sustained
/// borrow; the [`Vm::data_access`] wrapper (poison handling, page-in
/// world-stops) delegates here for everything after fault resolution.
#[inline]
#[allow(clippy::too_many_arguments)]
fn data_access_resolved(
    kernel: &mut SimKernel,
    tlb: &mut TranslationUnit,
    counters: &mut PerfCounters,
    access_counter: &mut u64,
    last_vpn: &mut u64,
    mode: Mode,
    addr: u64,
    size: u64,
) -> u64 {
    // Bind only the fields this path reads; a full `CostModel` copy
    // (~25 words) per access is measurable on the hot path.
    let CostModel {
        mem_l1,
        mem_l1_miss_extra,
        l1_hit_per_1024,
        page_size,
        ..
    } = kernel.cost;
    *access_counter += 1;
    // Flat L1 model: deterministic pseudo-random hit/miss.
    let h = access_counter
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(addr >> 6);
    let l1_hit = (h % 1024) < l1_hit_per_1024;
    counters.cycles += mem_l1;
    if !l1_hit {
        counters.cycles += mem_l1_miss_extra;
    }
    match mode {
        Mode::Carat => {
            let page_of = |a: u64| {
                if page_size.is_power_of_two() {
                    a >> page_size.trailing_zeros()
                } else {
                    a / page_size
                }
            };
            kernel.demand_touch(addr);
            if size > 0 && page_of(addr + size - 1) != page_of(addr) {
                kernel.demand_touch(addr + size - 1);
            }
            addr
        }
        Mode::Traditional => {
            let vpn = kernel.cost.page_of(addr);
            // Front cache: a repeat of the VPN that just went through
            // `TranslationUnit::access` is a guaranteed DTLB hit (its
            // entry was the last touched in its set, so it cannot have
            // been evicted without an intervening different-VPN
            // access) to an already-mapped page. Charge exactly what
            // the full path would — one DTLB hit, zero extra cycles —
            // without the set walk or the page-table probe. Skipping
            // the LRU stamp refresh is invisible: consecutive repeats
            // preserve the relative stamp order within the set.
            if vpn == *last_vpn {
                tlb.dtlb.hits += 1;
                return addr;
            }
            *last_vpn = vpn;
            let extra = tlb.access(vpn, &kernel.cost);
            counters.translation_cycles += extra;
            counters.cycles += extra;
            // Demand fault on first touch (identity-mapped).
            if kernel.pagetable.translate(vpn).is_none() {
                kernel.pagetable.map(
                    vpn,
                    carat_kernel::Pte {
                        ppn: vpn,
                        writable: true,
                    },
                );
                kernel
                    .trace
                    .record(carat_kernel::PagingEvent::Alloc { page: vpn });
                counters.cycles += kernel.cost.page_fault;
            }
            addr // identity mapping: paddr == vaddr
        }
    }
}

impl Vm {
    /// Account for a data access at `addr` and return the physical address
    /// to use. Traditional mode translates (TLB/pagewalk/fault);
    /// CARAT mode uses the address as-is and records first touches.
    ///
    /// A *poison* (non-canonical) address raises the hardware fault the
    /// paper relies on for swapped data — even when the access's guard was
    /// optimized away — and the kernel services it by paging back in.
    fn data_access(&mut self, mut addr: u64, size: u64, _write: bool) -> Result<u64, VmError> {
        if SimKernel::is_poison(addr) {
            match self.try_page_in(addr)? {
                Some((base, span, delta)) => addr = translate(addr, base, span, delta),
                None => {
                    return Err(VmError::GuardFault {
                        addr,
                        len: size,
                        write: _write,
                    })
                }
            }
        }
        Ok(data_access_resolved(
            &mut self.kernel,
            &mut self.tlb,
            &mut self.counters,
            &mut self.access_counter,
            &mut self.last_vpn,
            self.cfg.mode,
            addr,
            size,
        ))
    }

    fn exec_intrinsic(
        &mut self,
        intr: Intrinsic,
        args: &[Value],
    ) -> Result<Option<Value>, VmError> {
        match intr {
            Intrinsic::Malloc => {
                let size = args[0].as_i().max(0) as u64;
                self.counters.cycles += 60;
                // Injected allocation failure: the tenant sees a clean
                // out-of-memory, exactly as if its arena were exhausted.
                if self.kernel.poll_fault(FaultPoint::TenantOom) {
                    return Err(VmError::OutOfMemory);
                }
                let addr = self.heap.alloc(size).ok_or(VmError::OutOfMemory)?;
                Ok(Some(Value::P(addr)))
            }
            Intrinsic::Free => {
                self.counters.cycles += 40;
                self.heap.free(args[0].as_p());
                Ok(None)
            }
            Intrinsic::GuardLoad | Intrinsic::GuardStore => {
                let addr = args[0].as_p();
                let len = args[1].as_i().max(0) as u64;
                let access = if intr == Intrinsic::GuardStore {
                    Access::Write
                } else {
                    Access::Read
                };
                self.exec_guard_access(addr, len, access)?;
                Ok(None)
            }
            Intrinsic::GuardRange => {
                let lo = args[0].as_p();
                let hi = args[1].as_p();
                let access = if args[2].as_i() != 0 {
                    Access::Write
                } else {
                    Access::Read
                };
                let check = self.kernel.regions.check_range(lo, hi, access);
                self.account_guard(check.probes);
                if check.ok {
                    return Ok(None);
                }
                if let Some((base, span, delta)) = self.try_page_in(lo)? {
                    let lo2 = translate(lo, base, span, delta);
                    let hi2 = translate(hi, base, span, delta);
                    let again = self.kernel.regions.check_range(lo2, hi2, access);
                    self.account_guard(again.probes);
                    if again.ok {
                        return Ok(None);
                    }
                }
                Err(VmError::GuardFault {
                    addr: lo,
                    len: hi.saturating_sub(lo),
                    write: access == Access::Write,
                })
            }
            Intrinsic::GuardCall => {
                let frame = args[0].as_i().max(0) as u64;
                let lo = self.sp.saturating_sub(frame);
                let check =
                    self.kernel
                        .regions
                        .check(self.cfg.guard_impl, lo, frame, Access::Write);
                self.account_guard(check.probes);
                if check.ok {
                    return Ok(None);
                }
                // The stack itself may be in swap (its pointers poisoned);
                // fault to the kernel and page it back in first.
                if SimKernel::is_poison(lo) && self.try_page_in(lo)?.is_some() {
                    let lo2 = self.sp.saturating_sub(frame);
                    let again =
                        self.kernel
                            .regions
                            .check(self.cfg.guard_impl, lo2, frame, Access::Write);
                    self.account_guard(again.probes);
                    if again.ok {
                        return Ok(None);
                    }
                }
                // A failed guard involving the stack invokes the kernel,
                // which implements seamless stack expansion (paper §2.2).
                // Spawned threads' heap stacks are fixed-size.
                if self.cfg.auto_grow_stack && self.cur_tid == 0 && self.try_expand_stack()? {
                    let lo2 = self.sp.saturating_sub(frame);
                    let again =
                        self.kernel
                            .regions
                            .check(self.cfg.guard_impl, lo2, frame, Access::Write);
                    self.account_guard(again.probes);
                    if again.ok {
                        return Ok(None);
                    }
                }
                Err(VmError::GuardFault {
                    addr: lo,
                    len: frame,
                    write: true,
                })
            }
            Intrinsic::TrackAlloc => {
                let addr = args[0].as_p();
                let size = args[1].as_i().max(0) as u64;
                let kind = if addr >= self.image.heap.0 {
                    AllocKind::Heap
                } else {
                    AllocKind::Stack
                };
                self.table.track_alloc(addr, size, kind);
                self.counters.track_events += 1;
                self.counters.track_cycles += self.kernel.cost.track_alloc;
                self.counters.cycles += self.kernel.cost.track_alloc;
                self.counters.instrumentation_insts += 1;
                self.note_tracking_bytes();
                Ok(None)
            }
            Intrinsic::TrackFree => {
                self.table.track_free(args[0].as_p());
                self.counters.track_events += 1;
                self.counters.track_cycles += self.kernel.cost.track_free;
                self.counters.cycles += self.kernel.cost.track_free;
                self.counters.instrumentation_insts += 1;
                Ok(None)
            }
            Intrinsic::TrackEscape => {
                self.table.track_escape(args[0].as_p());
                self.counters.track_events += 1;
                self.counters.track_cycles += self.kernel.cost.track_escape_enqueue;
                self.counters.cycles += self.kernel.cost.track_escape_enqueue;
                self.counters.instrumentation_insts += 1;
                if self.table.pending_escapes() >= self.cfg.escape_batch {
                    self.flush_escapes();
                }
                Ok(None)
            }
            Intrinsic::Rand => {
                // xorshift64*
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                self.counters.cycles += 4;
                Ok(Some(Value::I(
                    (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 1) as i64,
                )))
            }
            Intrinsic::Sqrt => {
                self.counters.cycles += 15;
                Ok(Some(Value::F(args[0].as_f().sqrt())))
            }
            Intrinsic::Exp => {
                self.counters.cycles += 30;
                Ok(Some(Value::F(args[0].as_f().exp())))
            }
            Intrinsic::Log => {
                self.counters.cycles += 30;
                Ok(Some(Value::F(args[0].as_f().ln())))
            }
            Intrinsic::PrintI64 => {
                self.output.push(args[0].as_i().to_string());
                Ok(None)
            }
            Intrinsic::PrintF64 => {
                self.output.push(format!("{:.6}", args[0].as_f()));
                Ok(None)
            }
            Intrinsic::Memcpy => {
                let (mut dst, mut src, len) =
                    (args[0].as_p(), args[1].as_p(), args[2].as_i().max(0) as u64);
                // Resolve swapped operands up front so the bulk copy below
                // sees resident memory.
                if SimKernel::is_poison(dst) {
                    let (b, sp, d) = self.try_page_in(dst)?.ok_or(VmError::GuardFault {
                        addr: dst,
                        len,
                        write: true,
                    })?;
                    dst = translate(dst, b, sp, d);
                    src = translate(src, b, sp, d);
                }
                if SimKernel::is_poison(src) {
                    let (b, sp, d) = self.try_page_in(src)?.ok_or(VmError::GuardFault {
                        addr: src,
                        len,
                        write: false,
                    })?;
                    src = translate(src, b, sp, d);
                    dst = translate(dst, b, sp, d);
                }
                // Touch pages on both sides.
                let page = self.kernel.cost.page_size;
                for p in 0..=len.saturating_sub(1) / page {
                    self.data_access(src + p * page, 1, false)?;
                    self.data_access(dst + p * page, 1, true)?;
                }
                self.counters.cycles += self.kernel.cost.copy_cost(len);
                // Copy through a buffer (ranges may overlap).
                let data = self.kernel.mem.read_bytes(src, len).to_vec();
                self.kernel.mem.write_bytes(dst, &data);
                Ok(None)
            }
            Intrinsic::Memset => {
                let (mut dst, byte, len) = (
                    args[0].as_p(),
                    args[1].as_i() as u8,
                    args[2].as_i().max(0) as u64,
                );
                if SimKernel::is_poison(dst) {
                    let (b, sp, d) = self.try_page_in(dst)?.ok_or(VmError::GuardFault {
                        addr: dst,
                        len,
                        write: true,
                    })?;
                    dst = translate(dst, b, sp, d);
                }
                let page = self.kernel.cost.page_size;
                for p in 0..=len.saturating_sub(1) / page {
                    self.data_access(dst + p * page, 1, true)?;
                }
                self.counters.cycles += self.kernel.cost.copy_cost(len);
                self.kernel.mem.write_bytes(dst, &vec![byte; len as usize]);
                Ok(None)
            }
            Intrinsic::Abort => Err(VmError::Trap("abort() called".into())),
            Intrinsic::Spawn => {
                let fid = FuncId(args[0].as_i().max(0) as u32);
                let arg = args[1].as_i();
                let tid = self.spawn_thread(fid, arg)?;
                Ok(Some(Value::I(tid)))
            }
            Intrinsic::Join => {
                let tid = args[0].as_i();
                if tid < 0 || tid as usize >= self.threads.len() {
                    return Err(VmError::Trap(format!("join of unknown thread {tid}")));
                }
                if tid as usize == self.cur_tid {
                    return Err(VmError::Trap("thread cannot join itself".into()));
                }
                match self.threads[tid as usize] {
                    ThreadState::Done(v) => {
                        self.counters.cycles += self.kernel.cost.call;
                        Ok(Some(Value::I(v)))
                    }
                    _ => {
                        // Not finished: block and yield the rest of the
                        // quantum; the scheduler re-runs this join after
                        // other threads make progress.
                        self.block_current = true;
                        self.next_rotate_at = 0;
                        self.recompute_bail();
                        Ok(None)
                    }
                }
            }
        }
    }

    /// Guard-check `[addr, addr+len)` for `access` — the body of the
    /// `guard_load`/`guard_store` intrinsics, shared verbatim by the fused
    /// guard+access superinstructions so their accounting is identical by
    /// construction.
    ///
    /// The last-hit region cache short-circuits the full [`RegionTable`]
    /// search on the common path. Caching the *probe count* is sound
    /// because regions are disjoint and sorted: for any address inside a
    /// given region, every comparison against other regions' bounds
    /// resolves the same way, so all three guard implementations take the
    /// same search path — and charge the same probes — as they did on the
    /// hit that filled the cache. The cache keys on the table's
    /// generation, which the kernel bumps on every region change.
    ///
    /// [`RegionTable`]: carat_runtime::RegionTable
    fn exec_guard_access(&mut self, addr: u64, len: u64, access: Access) -> Result<(), VmError> {
        let gc = self.guard_cache;
        if gc.generation == self.kernel.regions.generation
            && addr >= gc.start
            && addr < gc.end
            && len > 0
            && addr.saturating_add(len) <= gc.end
            && gc.perms.allows(access)
        {
            self.account_guard(gc.probes);
            return Ok(());
        }
        let check = self
            .kernel
            .regions
            .check(self.cfg.guard_impl, addr, len, access);
        self.account_guard(check.probes);
        if check.ok {
            self.refill_guard_cache(addr, check.probes);
            return Ok(());
        }
        // A poison address means the data is in swap: the guard
        // fault reaches the kernel, which pages it back in.
        if let Some((base, span, delta)) = self.try_page_in(addr)? {
            let addr2 = translate(addr, base, span, delta);
            let again = self
                .kernel
                .regions
                .check(self.cfg.guard_impl, addr2, len, access);
            self.account_guard(again.probes);
            if again.ok {
                self.refill_guard_cache(addr2, again.probes);
                return Ok(());
            }
        }
        if std::env::var_os("CARAT_VM_DEBUG").is_some() {
            eprintln!(
                "guard fault @ {addr:#x}: alloc={:?}, regions={:?}",
                self.table.find_containing(addr).map(|(s, i)| (s, i.len)),
                self.kernel
                    .regions
                    .regions()
                    .iter()
                    .map(|r| (r.start, r.len))
                    .collect::<Vec<_>>()
            );
        }
        Err(VmError::GuardFault {
            addr,
            len,
            write: access == Access::Write,
        })
    }

    /// Remember the region containing `addr` (which a check just accepted)
    /// together with the probe count that check charged.
    fn refill_guard_cache(&mut self, addr: u64, probes: u64) {
        if let Some(r) = self.kernel.regions.containing(addr) {
            self.guard_cache = GuardFastPath {
                generation: self.kernel.regions.generation,
                start: r.start,
                end: r.end(),
                perms: r.perms,
                probes,
            };
        }
    }

    /// Execute one [`DecodedInst::HoistedGuard`]: reconstruct the loop's
    /// trip count and the full address span its elided per-iteration
    /// guards would have checked, account the whole trip as elided, and
    /// (when hoisting is enabled) run one widened range check that
    /// mirrors the `GuardRange` intrinsic exactly — region probe, guard
    /// accounting, poison page-in retry, fault on rejection.
    ///
    /// The trip arithmetic runs in `i128` so a pathological span that
    /// overflows the simulated address space faults instead of silently
    /// wrapping (per-iteration guards would have faulted on the way
    /// there too).
    fn exec_hoisted_guard(&mut self, fid: FuncId, meta: u32) -> Result<(), VmError> {
        let m = self.program.funcs[fid.index()].hoists[meta as usize];
        let fr = self.frames.last().expect("frame");
        let init = fr.regs[m.init as usize].as_i() as i128;
        // A peeled bound re-assembles `plus − minus + konst` from registers
        // defined outside the loop; wrapping at i64 matches the header's own
        // arithmetic (the peel only fires for i64 chains).
        let bound = {
            let plus = fr.regs[m.bound as usize].as_i();
            let minus = if m.bound2 == NO_REG {
                0
            } else {
                fr.regs[m.bound2 as usize].as_i()
            };
            plus.wrapping_sub(minus).wrapping_add(m.bound_const) as i128
        };
        let base = fr.regs[m.base as usize].as_p();
        let inv = if m.inv == NO_REG {
            0
        } else {
            fr.regs[m.inv as usize].as_i() as i128
        };
        let bound_adj = bound - i128::from(!m.inclusive);
        if init > bound_adj {
            // Zero-trip loop: the body never runs, so there is nothing to
            // elide and nothing to check — exactly like the fused engine,
            // which executes no guard either.
            return Ok(());
        }
        let step = m.step.max(1) as i128;
        let strides = (bound_adj - init) / step;
        let n = u64::try_from(strides + 1).unwrap_or(u64::MAX);
        self.counters.guards_elided = self.counters.guards_elided.saturating_add(n);
        if !m.check {
            return Ok(());
        }
        // Addresses the first and last iteration touch, in the VM's
        // PtrAdd+FieldAddr arithmetic:
        // `base + elem * (coeff*iv + inv + offset) + byte_off`.
        let addr_at = |iv: i128| {
            base as i128
                + m.elem as i128 * (m.coeff as i128 * iv + inv + m.offset as i128)
                + m.byte_off as i128
        };
        let first = addr_at(init);
        let last = addr_at(init + strides * step);
        let lo_w = first.min(last);
        let hi_w = first.max(last) + m.len as i128;
        let access = if m.write { Access::Write } else { Access::Read };
        let (Ok(lo), Ok(hi)) = (u64::try_from(lo_w), u64::try_from(hi_w)) else {
            return Err(VmError::GuardFault {
                addr: lo_w.clamp(0, u64::MAX as i128) as u64,
                len: m.len,
                write: m.write,
            });
        };
        self.counters.guards_hoisted += 1;
        let check = self.kernel.regions.check_range(lo, hi, access);
        self.account_guard(check.probes);
        if check.ok {
            return Ok(());
        }
        if let Some((pbase, span, delta)) = self.try_page_in(lo)? {
            let lo2 = translate(lo, pbase, span, delta);
            let hi2 = translate(hi, pbase, span, delta);
            let again = self.kernel.regions.check_range(lo2, hi2, access);
            self.account_guard(again.probes);
            if again.ok {
                return Ok(());
            }
        }
        Err(VmError::GuardFault {
            addr: lo,
            len: hi.saturating_sub(lo),
            write: m.write,
        })
    }

    fn account_guard(&mut self, probes: u64) {
        self.counters.guards_executed += 1;
        self.counters.guard_probes += probes;
        self.counters.instrumentation_insts += 1;
        let cost = &self.kernel.cost;
        let cycles = if self.cfg.guard_impl == GuardImpl::Mpx && self.kernel.regions.len() == 1 {
            cost.guard_mpx
        } else {
            cost.software_guard_cost(probes)
        };
        self.counters.guard_cycles += cycles;
        self.counters.cycles += cycles;
    }

    pub(crate) fn flush_escapes(&mut self) {
        let pending = self.table.pending_escapes() as u64;
        if pending == 0 {
            return;
        }
        let mem = &self.kernel.mem;
        let resolved = self.table.flush_escapes(|cell| {
            use carat_runtime::MemAccess;
            mem.read_u64(cell)
        });
        let _ = resolved;
        let cost = &self.kernel.cost;
        let cycles = pending * cost.track_escape_flush;
        self.counters.track_cycles += cycles;
        self.counters.cycles += cycles;
        self.note_tracking_bytes();
    }

    fn note_tracking_bytes(&mut self) {
        self.peak_tracking_bytes = self
            .peak_tracking_bytes
            .max(self.table.memory_overhead_bytes());
    }

    /// Whether the next instruction is a tracking callback whose
    /// notification the runtime has not received yet — a point where the
    /// world must not stop (see the call site in [`Vm::run`]).
    fn tracking_owed(&self) -> bool {
        let Some(frame) = self.frames.last() else {
            return false;
        };
        match self.cfg.engine {
            // Track intrinsics are never fused, so the fused and threaded
            // streams still show them as plain `Intrinsic` slots.
            Engine::Fused | Engine::Decoded | Engine::Threaded => {
                matches!(
                    frame.code.get(frame.idx),
                    Some(DecodedInst::Intrinsic { intr, .. }) if intr.is_track()
                )
            }
            Engine::Reference => {
                let f = self.image.module.func(frame.func);
                let insts = &f.block(frame.block).insts;
                let Some(&v) = insts.get(frame.idx) else {
                    return false;
                };
                matches!(
                    f.inst(v),
                    Some(Inst::CallIntrinsic { intr, .. }) if intr.is_track()
                )
            }
        }
    }

    /// Round-robin to the next runnable thread. With `force`, the current
    /// slot is already retired (`Done`) and must not be re-entered; returns
    /// whether a runnable thread was found.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` keeps the call sites uniform.
    /// Start a fresh scheduler quantum at the current instruction count
    /// and refold the bail thresholds around the new boundary.
    fn grant_quantum(&mut self) {
        self.next_rotate_at = self
            .counters
            .instructions
            .saturating_add(self.cfg.sched_quantum.max(1));
        self.recompute_bail();
    }

    fn rotate(&mut self, force: bool) -> Result<bool, VmError> {
        let n = self.threads.len();
        for off in 1..=n {
            let tid = (self.cur_tid + off) % n;
            if tid == self.cur_tid {
                return Ok(!force);
            }
            if matches!(self.threads[tid], ThreadState::Parked(_)) {
                self.switch_to(tid, force);
                return Ok(true);
            }
        }
        Ok(!force)
    }

    /// Swap the current thread's state with parked thread `tid`.
    fn switch_to(&mut self, tid: usize, current_retired: bool) {
        if !current_retired {
            let parked = ParkedThread {
                frames: std::mem::take(&mut self.frames),
                sp: self.sp,
                stack_base: self.cur_stack_base,
            };
            self.threads[self.cur_tid] = ThreadState::Parked(parked);
            self.parked_threads += 1;
        }
        self.parked_threads -= 1; // `tid` leaves the parked set
        let slot = std::mem::replace(&mut self.threads[tid], ThreadState::Current);
        let ThreadState::Parked(t) = slot else {
            unreachable!("switch target verified parked");
        };
        self.frames = t.frames;
        self.sp = t.sp;
        self.cur_stack_base = t.stack_base;
        self.cur_tid = tid;
        self.recompute_bail();
    }

    /// Live (current or parked) thread count, for world-stop costing.
    pub(crate) fn live_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| !matches!(t, ThreadState::Done(_)))
            .count()
    }

    /// Create a thread running function `fid` with `arg`, on a stack
    /// allocated from heap memory (paper §2.2). Returns its thread id.
    fn spawn_thread(&mut self, fid: FuncId, arg: i64) -> Result<i64, VmError> {
        if fid.index() >= self.image.module.num_funcs() {
            return Err(VmError::Trap("spawn of nonexistent function".into()));
        }
        let f = self.image.module.func(fid);
        if f.params != vec![Type::I64] || f.ret != Some(Type::I64) {
            return Err(VmError::Trap(format!(
                "spawned function `{}` must have signature i64(i64)",
                f.name
            )));
        }
        let stack_size = self.cfg.load.stack_size;
        let block = self.heap.alloc(stack_size).ok_or(VmError::OutOfMemory)?;
        // Thread stacks are ordinary tracked allocations: they move and
        // swap like everything else.
        self.table.track_alloc(block, stack_size, AllocKind::Stack);
        let sp_top = block + stack_size;
        let sp_base = sp_top - self.program.funcs[fid.index()].frame_size;
        let mut regs = vec![Value::Undef; f.num_values()];
        regs[0] = Value::I(arg);
        let entry = f.entry();
        let frame = Frame {
            func: fid,
            regs,
            block: entry,
            idx: 0,
            prev_block: None,
            sp_base,
            ret_to: None,
            code: self.pinned_code(fid.index(), entry.index()),
        };
        self.threads.push(ThreadState::Parked(ParkedThread {
            frames: vec![frame],
            sp: sp_base,
            stack_base: block,
        }));
        self.parked_threads += 1;
        self.recompute_bail();
        // Thread creation cost: the kernel sets up the stack and registers
        // the thread with the runtime.
        self.counters.cycles += self.kernel.cost.move_signal_per_thread;
        Ok((self.threads.len() - 1) as i64)
    }

    /// Snapshot every pointer-valued register of every frame (the
    /// "registers dumped on the stack" by the signal handlers), plus the
    /// stack pointer and frame bases. Returns the flat register image and
    /// the bookkeeping needed to write it back.
    pub(crate) fn snapshot_regs(&self) -> (Vec<u64>, SnapshotMap) {
        let mut regs: Vec<u64> = Vec::new();
        let mut map = SnapshotMap::default();
        let mut visit = |tid: usize, frames: &[Frame], sp: u64, map: &mut SnapshotMap| {
            for (fi, fr) in frames.iter().enumerate() {
                for (ri, val) in fr.regs.iter().enumerate() {
                    if let Value::P(p) = val {
                        regs.push(*p);
                        map.reg_slots.push((tid, fi, ri));
                    }
                }
            }
            regs.push(sp);
            map.sp_slots.push((tid, regs.len() - 1));
            for (fi, fr) in frames.iter().enumerate() {
                regs.push(fr.sp_base);
                map.base_slots.push((tid, fi, regs.len() - 1));
            }
        };
        visit(self.cur_tid, &self.frames, self.sp, &mut map);
        for (tid, t) in self.threads.iter().enumerate() {
            if let ThreadState::Parked(p) = t {
                visit(tid, &p.frames, p.sp, &mut map);
            }
        }
        (regs, map)
    }

    pub(crate) fn writeback_regs(&mut self, regs: &[u64], map: &SnapshotMap) {
        // A world stop relocated data: drop the translation front cache.
        // (Invalidation is always safe — a dropped entry merely routes the
        // next access through `TranslationUnit::access`, which charges the
        // identical DTLB hit.)
        self.last_vpn = u64::MAX;
        // Replay the exact visit order of `snapshot_regs`: per thread, its
        // pointer registers (positional), then sp and frame bases (by
        // recorded absolute slot index).
        let mut idx = 0usize;
        let mut r = 0usize;
        let mut spi = 0usize;
        let mut bi = 0usize;
        let order: Vec<usize> = {
            let mut o = vec![self.cur_tid];
            for (tid, t) in self.threads.iter().enumerate() {
                if matches!(t, ThreadState::Parked(_)) {
                    o.push(tid);
                }
            }
            o
        };
        for tid in order {
            // regs for this thread
            while r < map.reg_slots.len() && map.reg_slots[r].0 == tid {
                let (_, fi, ri) = map.reg_slots[r];
                self.thread_frames_mut(tid)[fi].regs[ri] = Value::P(regs[idx]);
                idx += 1;
                r += 1;
            }
            // sp
            debug_assert_eq!(map.sp_slots[spi].0, tid);
            let sp_val = regs[map.sp_slots[spi].1];
            if tid == self.cur_tid {
                self.sp = sp_val;
            } else if let ThreadState::Parked(p) = &mut self.threads[tid] {
                p.sp = sp_val;
            }
            idx += 1;
            spi += 1;
            // frame bases
            while bi < map.base_slots.len() && map.base_slots[bi].0 == tid {
                let (_, fi, slot) = map.base_slots[bi];
                self.thread_frames_mut(tid)[fi].sp_base = regs[slot];
                idx += 1;
                bi += 1;
            }
        }
    }

    fn thread_frames_mut(&mut self, tid: usize) -> &mut Vec<Frame> {
        if tid == self.cur_tid {
            &mut self.frames
        } else {
            match &mut self.threads[tid] {
                ThreadState::Parked(p) => &mut p.frames,
                _ => unreachable!("writeback targets live threads"),
            }
        }
    }

    /// Keep `image.stack` in sync when a relocation touched it (the stack
    /// is an ordinary allocation and moves/swaps like any other).
    fn rebase_image_stack(&mut self, lo: u64, len: u64, delta: i64) {
        let (s, _) = self.image.stack;
        if s >= lo && s < lo + len {
            self.image.stack.0 = s.wrapping_add(delta as u64);
        }
        if self.cur_stack_base >= lo && self.cur_stack_base < lo + len {
            self.cur_stack_base = self.cur_stack_base.wrapping_add(delta as u64);
        }
        for t in &mut self.threads {
            if let ThreadState::Parked(p) = t {
                if p.stack_base >= lo && p.stack_base < lo + len {
                    p.stack_base = p.stack_base.wrapping_add(delta as u64);
                }
            }
        }
    }

    /// Rebase every piece of host-side bookkeeping that refers into
    /// `[src, src+len)` after the kernel relocated it by `delta`: the
    /// heap allocator's block map, the image's global addresses, and the
    /// stack bases. Used by the multi-process scheduler after a
    /// cross-process shared-region move (the in-memory cells and
    /// registers were already patched by the kernel).
    pub(crate) fn apply_relocation(&mut self, src: u64, len: u64, delta: i64) {
        self.heap.rebase(src, len, delta);
        for g in &mut self.image.globals {
            if *g >= src && *g < src + len {
                *g = g.wrapping_add(delta as u64);
            }
        }
        self.rebase_image_stack(src, len, delta);
    }

    /// Ask the kernel to grow the stack; returns whether it did.
    ///
    /// # Errors
    ///
    /// [`VmError::Kernel`] when the kernel's expansion failed and rolled
    /// back (registers keep their pre-expansion snapshot — the rollback
    /// restored them, so no writeback happens).
    fn try_expand_stack(&mut self) -> Result<bool, VmError> {
        self.flush_escapes();
        let (mut regs, map) = self.snapshot_regs();
        let threads = self.live_threads() + self.cfg.extra_threads;
        let Some((world, outcome)) = self.kernel.expand_stack(
            &mut self.table,
            &mut regs,
            &mut self.image,
            threads,
            self.cfg.max_stack,
        )?
        else {
            return Ok(false);
        };
        self.writeback_regs(&regs, &map);
        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
        self.heap
            .rebase(outcome.moved_src, outcome.moved_len, delta);
        SimKernel::patch_globals(&mut self.image, &outcome);
        // The expanded stack block begins below the moved data.
        self.cur_stack_base = self.image.stack.0;
        let cycles = world.cycles + outcome.cost.total();
        self.counters.stack_expansions += 1;
        self.counters.move_cycles += cycles;
        self.counters.cycles += cycles;
        Ok(true)
    }

    /// Debug audit: every registered escape cell must hold a pointer into
    /// its owner allocation (reading through the swap store).
    #[allow(dead_code)]
    fn audit(&self, tag: &str) {
        if std::env::var_os("CARAT_VM_AUDIT").is_none() {
            return;
        }
        for (start, len, _, _) in self.table.snapshot() {
            if let Some(info) = self.table.info(start) {
                for &cell in &info.escapes {
                    let val = self.kernel.debug_read_routed(cell);
                    if !(val >= start && val < start + len) {
                        eprintln!(
                            "AUDIT[{tag}]: cell {cell:#x} -> {val:#x} outside owner [{start:#x},+{len:#x})"
                        );
                    }
                }
            }
        }
    }

    /// Debug audit 2: scan resident memory for pointers into tracked
    /// allocations that are NOT registered as escapes (slow; env-gated).
    #[allow(dead_code)]
    fn audit_unregistered(&self, tag: &str) {
        if std::env::var_os("CARAT_VM_AUDIT2").is_none() {
            return;
        }
        let snap = self.table.snapshot();
        for probe in (0x10000u64..0x4100000.min(self.kernel.mem.size() - 8)).step_by(8) {
            let v = self.kernel.mem.read_uint(probe, 8);
            if v < 0x10000 {
                continue;
            }
            for &(start, len, _, _) in &snap {
                if v >= start && v < start + len && len >= 64 {
                    if let Some(info) = self.table.info(start) {
                        // Is the holder cell registered?
                        if !info.escapes.contains(&probe)
                            && self.table.find_containing(probe).is_some()
                        {
                            eprintln!(
                                "AUDIT2[{tag}]: unregistered cell {probe:#x} -> {v:#x} (target alloc {start:#x}, cell alloc {:?})",
                                self.table.find_containing(probe).map(|(s, _)| s)
                            );
                        }
                    }
                }
            }
        }
    }

    /// Debug audit 3: any poison value in resident memory must refer to a
    /// live swap slot (env-gated scan).
    #[allow(dead_code)]
    fn audit_stale_poison(&self, tag: &str) {
        if std::env::var_os("CARAT_VM_AUDIT3").is_none() {
            return;
        }
        for probe in (0x10000u64..0x4100000.min(self.kernel.mem.size() - 8)).step_by(8) {
            let v = self.kernel.mem.read_uint(probe, 8);
            if SimKernel::is_poison(v) {
                let slot = (v - carat_kernel::POISON_BASE) / carat_kernel::POISON_SLOT_SPAN;
                if !self.kernel.has_swap_slot(slot) {
                    eprintln!(
                        "AUDIT3[{tag}]: stale poison {v:#x} (dead slot {slot}) in cell {probe:#x}, cell alloc {:?}",
                        self.table.find_containing(probe).map(|(s, _)| s)
                    );
                }
            }
        }
    }

    /// Inject one page-out (swap driver).
    fn drive_swap(&mut self) -> Result<(), VmError> {
        self.next_swap_at = self.next_swap_at.saturating_add(
            self.cfg
                .swap_driver
                .map(|d| d.period_cycles)
                .unwrap_or(u64::MAX),
        );
        self.recompute_bail();
        if let Some(d) = self.cfg.swap_driver {
            if d.max_swaps != 0 && self.swaps_done >= d.max_swaps {
                return Ok(());
            }
        }
        self.flush_escapes();
        // Pick the most-escaped allocation still resident in memory.
        let page_size = self.kernel.cost.page_size;
        let Some(page) = self
            .table
            .snapshot()
            .into_iter()
            .filter(|&(start, _, _, _)| !SimKernel::is_poison(start))
            .max_by_key(|&(_, _, escapes_live, _)| escapes_live)
            .map(|(start, _, _, _)| start / page_size * page_size)
        else {
            return Ok(());
        };
        let _ = page_size;
        let (mut regs, map) = self.snapshot_regs();
        let threads = self.live_threads() + self.cfg.extra_threads;
        let Some((world, slot, src, len)) =
            self.kernel
                .page_out(&mut self.table, &mut regs, page, threads)?
        else {
            return Ok(());
        };
        self.writeback_regs(&regs, &map);
        // Heap bookkeeping and code-image constants follow the data into
        // the poison range.
        let base = carat_kernel::POISON_BASE + slot * carat_kernel::POISON_SLOT_SPAN;
        let delta = base.wrapping_sub(src) as i64;
        self.heap.rebase(src, len, delta);
        for g in &mut self.image.globals {
            if *g >= src && *g < src + len {
                *g = g.wrapping_add(delta as u64);
            }
        }
        self.rebase_image_stack(src, len, delta);
        if std::env::var_os("CARAT_VM_DEBUG").is_some() {
            eprintln!("page-out slot {slot}: [{src:#x},+{len:#x})");
        }
        self.counters.swap_outs += 1;
        self.counters.cycles += world.cycles;
        self.counters.move_cycles += world.cycles;
        self.swaps_done += 1;
        self.audit("page_out");
        self.audit_unregistered("page_out");
        self.audit_stale_poison("page_out");
        Ok(())
    }

    /// Service a poison-address guard fault by paging the slot back in.
    /// Returns `(slot_base, slot_span, delta)` for translating stale
    /// locals, or `None` when `addr` is not poisoned swap data.
    ///
    /// # Errors
    ///
    /// [`VmError::Kernel`] when the slot exists but the kernel could not
    /// bring it back (swap-read failure, destination OOM). The kernel
    /// preserved the swap entry and rolled registers back, so the fault
    /// is retryable.
    fn try_page_in(&mut self, addr: u64) -> Result<Option<(u64, u64, i64)>, VmError> {
        if !SimKernel::is_poison(addr) {
            return Ok(None);
        }
        // Stores made after the page-out may legitimately have written
        // poison pointers; their escape notifications must reach the table
        // before the kernel patches, or those cells would be missed.
        self.flush_escapes();
        if std::env::var_os("CARAT_VM_DEBUG").is_some() {
            let slot = (addr - carat_kernel::POISON_BASE) / carat_kernel::POISON_SLOT_SPAN;
            eprintln!(
                "page-in attempt @ {addr:#x} (slot {slot}); swapped_ranges={}",
                self.kernel.swapped_ranges()
            );
        }
        let (mut regs, map) = self.snapshot_regs();
        let threads = self.live_threads() + self.cfg.extra_threads;
        // On Err the kernel rolled `regs` back to the snapshot, so the
        // writeback is skipped and thread state keeps its pre-fault image.
        let Some((world, dst)) = self
            .kernel
            .page_in(&mut self.table, &mut regs, addr, threads)?
        else {
            return Ok(None);
        };
        self.writeback_regs(&regs, &map);
        let span = carat_kernel::POISON_SLOT_SPAN;
        let base = (addr - carat_kernel::POISON_BASE) / span * span + carat_kernel::POISON_BASE;
        let delta = dst.wrapping_sub(base) as i64;
        self.heap.rebase(base, span, delta);
        for g in &mut self.image.globals {
            if *g >= base && *g < base + span {
                *g = g.wrapping_add(delta as u64);
            }
        }
        self.rebase_image_stack(base, span, delta);
        self.counters.swap_ins += 1;
        self.counters.cycles += world.cycles;
        self.counters.move_cycles += world.cycles;
        self.audit("page_in");
        self.audit_unregistered("page_in");
        self.audit_stale_poison("page_in");
        Ok(Some((base, span, delta)))
    }

    /// Inject one worst-case page movement (Figure 9 driver).
    fn drive_move(&mut self) -> Result<(), VmError> {
        self.next_move_at = self.next_move_at.saturating_add(
            self.cfg
                .move_driver
                .map(|d| d.period_cycles)
                .unwrap_or(u64::MAX),
        );
        self.recompute_bail();
        if let Some(d) = self.cfg.move_driver {
            if d.max_moves != 0 && self.moves_done >= d.max_moves {
                return Ok(());
            }
        }
        // Escape state must be current before patching.
        self.flush_escapes();
        let Some(page) = self.kernel.worst_page(&self.table) else {
            return Ok(());
        };
        let (mut regs, map) = self.snapshot_regs();
        let threads = self.live_threads() + self.cfg.extra_threads;
        // On Err the kernel rolled back (journal) or aborted (world stop)
        // and `regs` holds the untouched snapshot: skip the writeback.
        let (world, outcome) =
            self.kernel
                .move_pages(&mut self.table, &mut regs, page, 1, threads)?;
        self.writeback_regs(&regs, &map);
        // Rebase host-side bookkeeping.
        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
        self.heap
            .rebase(outcome.moved_src, outcome.moved_len, delta);
        SimKernel::patch_globals(&mut self.image, &outcome);
        self.rebase_image_stack(outcome.moved_src, outcome.moved_len, delta);

        if std::env::var_os("CARAT_VM_DEBUG").is_some() {
            eprintln!(
                "move #{}: [{:#x},+{:#x}) -> {:#x}, allocs={} escapes={} regs={}",
                self.moves_done + 1,
                outcome.moved_src,
                outcome.moved_len,
                outcome.moved_dst,
                outcome.allocations,
                outcome.escapes_patched,
                outcome.registers_patched
            );
        }
        let cycles = world.cycles + outcome.cost.total();
        self.counters.moves += 1;
        self.counters.move_cycles += cycles;
        self.counters.cycles += cycles;
        self.counters.move_breakdown.add(&outcome.cost);
        self.moves_done += 1;
        self.audit("move");
        self.audit_unregistered("move");
        self.audit_stale_poison("move");
        Ok(())
    }
}

/// Rebase `x` by `delta` when it lies within `[base, base+span)`.
fn translate(x: u64, base: u64, span: u64, delta: i64) -> u64 {
    if x >= base && x < base + span {
        x.wrapping_add(delta as u64)
    } else {
        x
    }
}

fn icmp_i(pred: Pred, a: i64, b: i64) -> bool {
    match pred {
        Pred::Eq => a == b,
        Pred::Ne => a != b,
        Pred::Slt => a < b,
        Pred::Sle => a <= b,
        Pred::Sgt => a > b,
        Pred::Sge => a >= b,
        Pred::Ult => (a as u64) < (b as u64),
        Pred::Uge => (a as u64) >= (b as u64),
    }
}

fn icmp_u(pred: Pred, a: u64, b: u64) -> bool {
    match pred {
        Pred::Eq => a == b,
        Pred::Ne => a != b,
        Pred::Slt | Pred::Ult => a < b,
        Pred::Sle => a <= b,
        Pred::Sgt => a > b,
        Pred::Sge | Pred::Uge => a >= b,
    }
}
