//! The patching engine: executing a mapping change (paper §4.2 "Mapping",
//! Figure 8 steps 5–10).
//!
//! Given a kernel page-move request, the runtime (inside the world-stop):
//!
//! 1. **negotiates/expands** the source range so no allocation straddles
//!    its boundary (allocations move in their entirety);
//! 2. finds all **affected allocations**;
//! 3. **patches every escape** of every affected allocation — each memory
//!    cell holding a pointer into the moved range is rewritten to the
//!    address the target will have *after* the move (pointer swizzling);
//! 4. **patches registers** (the register file dumped on the stack by the
//!    signal handler);
//! 5. moves the data and updates the allocation table.
//!
//! The engine is split into **plan** and **apply**: a [`PatchPlan`] — one
//! flat array of `(cell, old, new, owner)` records — is built from the
//! allocation table with pure reads, then applied over raw memory. The
//! apply step is embarrassingly parallel (the paper notes patching is a
//! data-parallel scan over escape cells): the plan is sharded
//! *deterministically by cell index* across a persistent worker pool
//! (workers park on a job queue between applies — no per-apply
//! fork/join), and per-shard journals are merged in shard order, so
//! memory state, counters, and rollback are byte-identical at every
//! worker count.
//!
//! Every phase reports counts so the caller can convert to cycles with the
//! [`CostModel`](crate::cost::CostModel) — this is the raw material of
//! Table 3.

use crate::alloc_table::AllocationTable;
use crate::cost::CostModel;
use crate::fast_hash::FastSet;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Memory access interface the engine uses to read/patch/copy simulated
/// physical memory. Implemented by the kernel's physical memory.
pub trait MemAccess {
    /// Read the 8-byte little-endian word at `addr`.
    fn read_u64(&self, addr: u64) -> u64;
    /// Write the 8-byte little-endian word at `addr`.
    fn write_u64(&mut self, addr: u64, val: u64);
    /// Copy `len` bytes from `src` to `dst` (ranges may not overlap).
    fn copy(&mut self, src: u64, dst: u64, len: u64);
}

/// [`MemAccess`] that can additionally expose raw host pointers to its
/// backing store, unlocking the parallel patch path.
pub trait PatchMem: MemAccess {
    /// Raw host pointer to the 8 bytes backing `addr`, or `None` when
    /// this memory has no contiguous host backing for the cell (the plan
    /// is then applied serially through [`MemAccess`], with identical
    /// results).
    ///
    /// Contract: the pointer must stay valid, and be written through by
    /// nobody else, until the next `&mut self` method call.
    fn cell_ptr(&mut self, addr: u64) -> Option<*mut u8> {
        let _ = addr;
        None
    }
}

/// A kernel request to move `[src, src+len)` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveRequest {
    /// Source range start (page aligned in page-granularity mode).
    pub src: u64,
    /// Source range length.
    pub len: u64,
    /// Destination start.
    pub dst: u64,
}

/// Cycle breakdown of one move — the columns of Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveCostBreakdown {
    /// "Page Expand": finding allocations and expanding the page set.
    pub page_expand: u64,
    /// "Patch Gen. & Exec.": finding and updating all escapes.
    pub patch_gen_exec: u64,
    /// "Register Patch".
    pub register_patch: u64,
    /// "Allocation & Mem. Movement": destination alloc + data copy.
    pub alloc_and_move: u64,
}

impl MoveCostBreakdown {
    /// "Prototype Cost": expand + patch + register (excludes the copy,
    /// which paging pays too).
    pub fn prototype_cost(&self) -> u64 {
        self.page_expand + self.patch_gen_exec + self.register_patch
    }

    /// "Prototype w/o Expand Cost".
    pub fn prototype_wo_expand(&self) -> u64 {
        self.patch_gen_exec + self.register_patch
    }

    /// "Total Cost".
    pub fn total(&self) -> u64 {
        self.prototype_cost() + self.alloc_and_move
    }
}

/// Outcome of a completed move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveOutcome {
    /// The range actually moved, after expansion.
    pub moved_src: u64,
    /// Length of the moved range.
    pub moved_len: u64,
    /// Destination of the (possibly expanded) range.
    pub moved_dst: u64,
    /// Allocations relocated.
    pub allocations: usize,
    /// Escape cells rewritten.
    pub escapes_patched: usize,
    /// Registers rewritten.
    pub registers_patched: usize,
    /// Cycle breakdown.
    pub cost: MoveCostBreakdown,
}

/// Expansion failure: the expanded range would exceed what the caller
/// allows (the kernel may veto, paper §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandVeto {
    /// The range the negotiation wanted.
    pub wanted_src: u64,
    /// Its length.
    pub wanted_len: u64,
}

/// Expand `[src, src+len)` (page-aligned growth) until no tracked
/// allocation straddles either boundary. Returns the expanded range.
///
/// This is the page-granularity "negotiation": an allocation overlapping
/// the boundary drags its whole extent (rounded to pages) into the move.
pub fn expand_to_allocations(
    table: &AllocationTable,
    mut src: u64,
    mut len: u64,
    page: u64,
) -> (u64, u64) {
    loop {
        let mut grown = false;
        for (start, info) in table.overlapping_infos(src, src + len) {
            let end = start + info.len;
            if start < src {
                let new_src = start / page * page;
                len += src - new_src;
                src = new_src;
                grown = true;
            }
            if end > src + len {
                let new_end = end.div_ceil(page) * page;
                len = new_end - src;
                grown = true;
            }
        }
        if !grown {
            return (src, len);
        }
    }
}

/// Checkpoints at which a journaled move consults its interrupt hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovePhase {
    /// After negotiation/expansion — nothing has been mutated yet.
    Expanded,
    /// After escapes and registers were patched, before the data copy and
    /// table maintenance — the crash window the patch journal covers.
    Patched,
}

/// A journaled move was interrupted and rolled back. Every escape cell and
/// register the move had patched was restored to its pre-move value; the
/// allocation table and the data were never touched (both are only updated
/// after the final checkpoint), so the machine state is byte-identical to
/// the state before the move began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveInterrupted {
    /// The checkpoint at which the interrupt fired.
    pub phase: MovePhase,
    /// Escape cells restored from the journal.
    pub cells_rolled_back: usize,
    /// Registers restored from the journal.
    pub registers_rolled_back: usize,
}

impl fmt::Display for MoveInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "move interrupted at {:?}: rolled back {} cells, {} registers",
            self.phase, self.cells_rolled_back, self.registers_rolled_back
        )
    }
}

impl std::error::Error for MoveInterrupted {}

/// A pinned physical range: memory a device is actively DMA-ing into,
/// which therefore cannot be moved, compacted, or swapped. The owner (if
/// any) is an opaque process index so the kernel can reap a tenant's pins
/// at kill time without the runtime knowing about process tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinnedRange {
    /// First byte of the pinned range.
    pub start: u64,
    /// Length in bytes (never zero).
    pub len: u64,
    /// Owning process index, or `None` for kernel-owned pins.
    pub owner: Option<usize>,
}

impl PinnedRange {
    /// Does `[start, start+len)` overlap this pin?
    #[inline]
    pub fn overlaps(&self, start: u64, len: u64) -> bool {
        start < self.start + self.len && self.start < start + len
    }
}

/// A move was refused because it would relocate pinned memory. Unlike
/// [`MoveInterrupted`] (a fault mid-protocol, rolled back), a pinned
/// refusal is decided *before* the world stops: nothing was mutated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveError {
    /// The requested source range overlaps a pinned DMA region.
    Pinned {
        /// Requested (expanded) source start.
        src: u64,
        /// Requested (expanded) length.
        len: u64,
        /// Start of the pin that blocked it.
        pin_start: u64,
        /// Length of the blocking pin.
        pin_len: u64,
    },
}

impl fmt::Display for MoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveError::Pinned {
                src,
                len,
                pin_start,
                pin_len,
            } => write!(
                f,
                "move of [{src:#x}, +{len:#x}) refused: overlaps pinned DMA range [{pin_start:#x}, +{pin_len:#x})"
            ),
        }
    }
}

impl std::error::Error for MoveError {}

/// Check a candidate move source against a pin list. Returns the typed
/// [`MoveError::Pinned`] for the first overlapping pin, if any. Movers
/// call this after expansion (the expanded range is what actually moves)
/// and before the world stop, so a refusal is side-effect free.
pub fn check_unpinned(src: u64, len: u64, pins: &[PinnedRange]) -> Result<(), MoveError> {
    for p in pins {
        if p.overlaps(src, len) {
            return Err(MoveError::Pinned {
                src,
                len,
                pin_start: p.start,
                pin_len: p.len,
            });
        }
    }
    Ok(())
}

/// Undo log for one move (or one batch of moves): the pre-patch value of
/// every mutated escape cell and register, in mutation order.
#[derive(Debug, Default)]
struct PatchJournal {
    cells: Vec<(u64, u64)>,
    regs: Vec<(usize, u64)>,
}

impl PatchJournal {
    /// Restore everything in reverse mutation order.
    fn rollback(self, mem: &mut dyn MemAccess, regs: &mut [u64]) -> (usize, usize) {
        let (nc, nr) = (self.cells.len(), self.regs.len());
        for (idx, old) in self.regs.into_iter().rev() {
            regs[idx] = old;
        }
        for (cell, old) in self.cells.into_iter().rev() {
            mem.write_u64(cell, old);
        }
        (nc, nr)
    }
}

/// One planned escape-cell rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedPatch {
    /// Address of the cell holding the pointer.
    pub cell: u64,
    /// Its current value (the journal entry).
    pub old: u64,
    /// The value it will hold after the move.
    pub new: u64,
    /// Start address of the allocation the pointer targets.
    pub owner: u64,
}

/// Below this many cells a parallel apply is not attempted: host
/// dispatch overhead overwhelms the scan (the cost model charges the
/// analogous `patch_fork_join_per_worker`). Results are identical either
/// way.
///
/// Set from measurement, not intuition — and re-measured when the
/// dispatch mechanism changed. The original `thread::scope` engine paid
/// ~80 µs fork/join per apply; at ~18 ns/cell serial and an ideal 4×
/// scan that broke even near `80 µs / (18 ns × 0.75)` ≈ 5.9k cells,
/// rounded up to 8192. The persistent worker pool replaced the per-apply
/// fork/join with a channel send + parked-thread wakeup: `move_parallel`'s
/// crossover sweep puts the fixed per-apply dispatch cost (intercept of
/// the delta-vs-cells fit) at ~23 µs on the reference host — break-even
/// `≈ 23 µs / (22 ns × 0.75)` ≈ 1.4k cells, rounded up to the next
/// power of two (see EXPERIMENTS.md, "Parallel move engine").
pub const PARALLEL_MIN_CELLS: usize = 2048;

static PARALLEL_MIN: AtomicUsize = AtomicUsize::new(PARALLEL_MIN_CELLS);

/// The live parallel-apply threshold, in cells (defaults to
/// [`PARALLEL_MIN_CELLS`]).
pub fn parallel_min_cells() -> usize {
    PARALLEL_MIN.load(Ordering::Relaxed)
}

/// Override the parallel-apply threshold — benchmark machinery: the
/// crossover sweep forces the parallel path onto small plans to measure
/// pool dispatch overhead, and a host-tuned harness can install its own
/// measured break-even. Returns the previous value. `0` is clamped to 1
/// (a zero threshold would parallelize empty plans).
pub fn set_parallel_min_cells(n: usize) -> usize {
    PARALLEL_MIN.swap(n.max(1), Ordering::Relaxed)
}

/// The flat patch plan for one move: every cell rewrite, precomputed from
/// the allocation table(s) with pure reads, plus the affected allocation
/// starts per table. Plan order equals the serial engine's mutation
/// order, so journals and rollbacks are byte-identical however the plan
/// is later sharded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchPlan {
    /// Expanded source range start.
    pub src: u64,
    /// Expanded range length.
    pub len: u64,
    /// Destination (adjusted by the same leading expansion).
    pub dst: u64,
    /// `dst - src`.
    pub delta: i64,
    /// Every cell rewrite, in deterministic table order.
    pub cells: Vec<PlannedPatch>,
    /// Affected allocation starts, one list per input table.
    pub affected: Vec<Vec<u64>>,
}

/// Raw cell pointer that may cross into a worker thread. Safety is
/// argued at the dispatch site: every shard writes pairwise-disjoint
/// 8-byte windows and nothing else touches the backing store until
/// every dispatched shard has replied.
struct SendPtr(*mut u8);
unsafe impl Send for SendPtr {}

/// Apply one shard of a patch plan: capture old bytes when journaling,
/// then write each cell's precomputed new value. The per-worker half of
/// [`PatchPlan::apply`]'s parallel path; the safety argument lives at
/// the dispatch site.
fn apply_shard(shard: Vec<(SendPtr, u64, u64)>, journaling: bool) -> Vec<(u64, u64)> {
    let mut seg = Vec::with_capacity(if journaling { shard.len() } else { 0 });
    for (SendPtr(ptr), new, cell) in shard {
        if journaling {
            let mut b = [0u8; 8];
            unsafe { std::ptr::copy_nonoverlapping(ptr, b.as_mut_ptr(), 8) };
            seg.push((cell, u64::from_le_bytes(b)));
        }
        let bytes = new.to_le_bytes();
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr, 8) };
    }
    seg
}

/// The persistent patch worker pool. `std::thread::scope` paid a
/// fork/join (~80 µs on the reference host) on EVERY parallel apply —
/// under fleet-scale pressure compaction that tax recurs per move. The
/// pool parks its workers on a shared job queue across applies instead:
/// dispatch is a channel send, and the barrier `thread::scope` provided
/// is re-created by the caller blocking on every shard's reply before
/// touching memory again. Workers are spawned on demand up to the
/// largest worker count any apply has requested, then live for the
/// process (parked on `recv`, costing nothing while idle).
mod pool {
    use super::{apply_shard, SendPtr};
    use std::sync::mpsc::{channel, Receiver, Sender};
    use std::sync::{Arc, Mutex, OnceLock};

    /// One dispatched shard plus the reply channel its caller blocks on.
    struct Job {
        shard: Vec<(SendPtr, u64, u64)>,
        journaling: bool,
        reply: Sender<Vec<(u64, u64)>>,
    }

    struct PatchPool {
        queue: Sender<Job>,
        /// Workers share one receiver behind a mutex (idle workers block
        /// in `recv`, so a job is taken by exactly one).
        intake: Arc<Mutex<Receiver<Job>>>,
        spawned: usize,
    }

    static POOL: OnceLock<Mutex<PatchPool>> = OnceLock::new();

    fn worker_loop(intake: Arc<Mutex<Receiver<Job>>>) {
        loop {
            // Take the next job; holding the lock only across the recv
            // keeps other workers free to take the following one.
            let job = {
                let guard = intake.lock().expect("patch pool intake poisoned");
                guard.recv()
            };
            let Ok(job) = job else {
                return;
            };
            let seg = apply_shard(job.shard, job.journaling);
            // A dropped reply receiver means the caller is gone
            // (panicking); nothing to do with the segment.
            let _ = job.reply.send(seg);
        }
    }

    /// Ship `shards` to the pool, growing it if this apply wants more
    /// workers than any before. Returns one reply receiver per shard,
    /// in shard order — the caller MUST block on every one before
    /// touching the patched memory (that recv loop is the safety
    /// barrier for the raw pointers the shards carry).
    pub(super) fn dispatch(
        shards: Vec<Vec<(SendPtr, u64, u64)>>,
        journaling: bool,
    ) -> Vec<Receiver<Vec<(u64, u64)>>> {
        if shards.is_empty() {
            return Vec::new();
        }
        let pool = POOL.get_or_init(|| {
            let (queue, rx) = channel();
            Mutex::new(PatchPool {
                queue,
                intake: Arc::new(Mutex::new(rx)),
                spawned: 0,
            })
        });
        let mut pool = pool.lock().expect("patch pool poisoned");
        while pool.spawned < shards.len() {
            let intake = pool.intake.clone();
            std::thread::Builder::new()
                .name("carat-patch-worker".into())
                .spawn(move || worker_loop(intake))
                .expect("spawn patch worker");
            pool.spawned += 1;
        }
        shards
            .into_iter()
            .map(|shard| {
                let (reply, receiver) = channel();
                pool.queue
                    .send(Job {
                        shard,
                        journaling,
                        reply,
                    })
                    .expect("patch pool queue closed");
                receiver
            })
            .collect()
    }
}

impl PatchPlan {
    /// Build the plan for moving `[src, src+len)` to `dst` across one or
    /// more allocation tables (several for the cross-process shared-region
    /// case). Pure reads: neither the tables nor memory are touched.
    ///
    /// A cell registered by more than one table is planned exactly once
    /// (the serial engine got the same idempotence from re-reading the
    /// already-patched, now out-of-range value).
    pub fn build(
        tables: &[&AllocationTable],
        mem: &dyn PatchMem,
        src: u64,
        len: u64,
        dst: u64,
    ) -> PatchPlan {
        let delta = dst.wrapping_sub(src) as i64;
        let mut cells = Vec::new();
        let mut affected = Vec::with_capacity(tables.len());
        let mut seen: Option<FastSet<u64>> = (tables.len() > 1).then(FastSet::default);
        for table in tables {
            let mut starts = Vec::new();
            for (start, info) in table.overlapping_infos(src, src + len) {
                starts.push(start);
                let (lo, hi) = (start, start + info.len);
                for &cell in &info.escapes {
                    let old = mem.read_u64(cell);
                    if old >= lo && old < hi {
                        if let Some(seen) = seen.as_mut() {
                            if !seen.insert(cell) {
                                continue;
                            }
                        }
                        cells.push(PlannedPatch {
                            cell,
                            old,
                            new: old.wrapping_add(delta as u64),
                            owner: start,
                        });
                    }
                }
            }
            affected.push(starts);
        }
        PatchPlan {
            src,
            len,
            dst,
            delta,
            cells,
            affected,
        }
    }

    /// Execute every planned rewrite over `workers` host threads (1 =
    /// serial). Deterministic regardless of worker count: the plan is
    /// sharded by cell index into contiguous chunks, each worker writes
    /// precomputed values into disjoint cells, and nothing depends on
    /// scheduling.
    pub fn apply(&self, mem: &mut dyn PatchMem, workers: usize) {
        self.apply_with_journal(mem, workers, None);
    }

    /// [`PatchPlan::apply`], optionally producing an undo journal. In the
    /// parallel path each shard journals the cells it wrote, and the
    /// per-shard journals are merged in shard order — which is plan
    /// order, which is the serial engine's mutation order — so a later
    /// rollback is byte-identical to a serial run's.
    fn apply_with_journal(
        &self,
        mem: &mut dyn PatchMem,
        workers: usize,
        journal: Option<&mut PatchJournal>,
    ) {
        let n = self.cells.len();
        if workers > 1 && n >= parallel_min_cells() && self.cell_windows_disjoint() {
            if let Some(ptrs) = self.resolve_ptrs(mem) {
                self.apply_parallel(ptrs, workers, journal);
                return;
            }
        }
        // Serial path (also the fallback for memories without raw
        // backing, or plans with overlapping / too few cell windows).
        if let Some(j) = journal {
            j.cells.reserve(n);
            for p in &self.cells {
                j.cells.push((p.cell, p.old));
                mem.write_u64(p.cell, p.new);
            }
        } else {
            for p in &self.cells {
                mem.write_u64(p.cell, p.new);
            }
        }
    }

    /// Whether every pair of 8-byte cell windows is disjoint. Escape
    /// cells closer than 8 bytes apart would make parallel writes race on
    /// the overlap, so such plans fall back to the serial path.
    fn cell_windows_disjoint(&self) -> bool {
        let mut addrs: Vec<u64> = self.cells.iter().map(|p| p.cell).collect();
        addrs.sort_unstable();
        addrs.windows(2).all(|w| w[1] - w[0] >= 8)
    }

    /// Resolve every cell to a raw host pointer, or `None` if the memory
    /// declines any of them.
    fn resolve_ptrs(&self, mem: &mut dyn PatchMem) -> Option<Vec<*mut u8>> {
        self.cells.iter().map(|p| mem.cell_ptr(p.cell)).collect()
    }

    fn apply_parallel(
        &self,
        ptrs: Vec<*mut u8>,
        workers: usize,
        journal: Option<&mut PatchJournal>,
    ) {
        let n = self.cells.len();
        let shard_len = n.div_ceil(workers);
        let journaling = journal.is_some();
        // Contiguous index shards: worker k owns cells
        // [k*shard_len, (k+1)*shard_len) — a pure function of (n, workers).
        let shards: Vec<Vec<(SendPtr, u64, u64)>> = self
            .cells
            .chunks(shard_len)
            .zip(ptrs.chunks(shard_len))
            .map(|(cells, ptrs)| {
                cells
                    .iter()
                    .zip(ptrs)
                    .map(|(p, &ptr)| (SendPtr(ptr), p.new, p.cell))
                    .collect()
            })
            .collect();
        // SAFETY: every pointer addresses an 8-byte window disjoint from
        // every other (checked by `cell_windows_disjoint`; distinct cell
        // addresses reach distinct backing regions per the `cell_ptr`
        // contract), each window is written by exactly one worker, and
        // `mem` is untouched until every dispatched shard has replied —
        // the recv loop below re-creates the barrier `thread::scope`
        // used to provide, without paying its per-apply fork/join.
        let mut shards = shards.into_iter();
        let first = shards.next().unwrap_or_default();
        let pending = pool::dispatch(shards.collect(), journaling);
        let mut segments: Vec<Vec<(u64, u64)>> = Vec::with_capacity(pending.len() + 1);
        // The calling thread is worker 0: its shard overlaps with the
        // pool's, so the serial share of the apply is one shard, not the
        // whole plan.
        segments.push(apply_shard(first, journaling));
        for rx in pending {
            segments.push(rx.recv().expect("patch worker panicked"));
        }
        if let Some(j) = journal {
            // Merge per-shard journals in shard order == plan order. The
            // comparison offset is plan-local: a batched journal already
            // carries earlier moves' entries, so `j.cells.len()` is not
            // an index into THIS plan's cells.
            j.cells.reserve(n);
            let mut off = 0usize;
            for seg in segments {
                debug_assert!(seg
                    .iter()
                    .zip(&self.cells[off..])
                    .all(|(&(cell, old), p)| cell == p.cell && old == p.old));
                off += seg.len();
                j.cells.extend(seg);
            }
        }
    }
}

/// Execute a move entirely: negotiate, patch escapes and registers, copy,
/// and update the allocation table. `regs` is the dumped register state of
/// all stopped threads (patched in place).
///
/// The caller (kernel) has already stopped the world and picked a `dst`
/// with room for the *expanded* range; `dst` is adjusted by the same
/// leading expansion so relative layout is preserved.
///
/// Infallible by construction — the no-interrupt path runs straight over
/// the plan builder and keeps no journal, so it pays zero crash-
/// consistency overhead and has no error to surface.
pub fn perform_move(
    table: &mut AllocationTable,
    mem: &mut dyn PatchMem,
    regs: &mut [u64],
    req: MoveRequest,
    cost: &CostModel,
) -> MoveOutcome {
    perform_move_workers(table, mem, regs, req, cost, 1)
}

/// [`perform_move`] applying the patch plan over `workers` host threads.
/// The outcome — memory, registers, table, and modeled cycles — is
/// identical at every worker count; only host wall-clock changes.
pub fn perform_move_workers(
    table: &mut AllocationTable,
    mem: &mut dyn PatchMem,
    regs: &mut [u64],
    req: MoveRequest,
    cost: &CostModel,
    workers: usize,
) -> MoveOutcome {
    let (src, len) = expand_to_allocations(table, req.src, req.len, cost.page_size);
    let dst = req.dst.wrapping_sub(req.src - src);
    let plan = PatchPlan::build(&[table], &*mem, src, len, dst);
    plan.apply(mem, workers);
    let mut registers_patched = 0usize;
    for r in regs.iter_mut() {
        if *r >= src && *r < src + len {
            *r = r.wrapping_add(plan.delta as u64);
            registers_patched += 1;
        }
    }
    mem.copy(src, dst, len);
    table.rebase_escape_cells(src, src + len, plan.delta);
    for &start in &plan.affected[0] {
        table.relocate(start, plan.delta);
    }
    MoveOutcome {
        moved_src: src,
        moved_len: len,
        moved_dst: dst,
        allocations: plan.affected[0].len(),
        escapes_patched: plan.cells.len(),
        registers_patched,
        cost: MoveCostBreakdown {
            page_expand: cost.move_expand_fixed
                + plan.affected[0].len() as u64 * cost.move_expand_per_alloc,
            patch_gen_exec: cost.patch_cost(plan.cells.len() as u64),
            register_patch: regs.len() as u64 * cost.move_register_patch_per_reg,
            alloc_and_move: cost.move_alloc_fixed + cost.copy_cost(len),
        },
    }
}

/// [`perform_move`] with crash consistency: when `interrupt` is present,
/// every escape-cell and register patch is journaled, and the hook is
/// consulted at each [`MovePhase`] checkpoint. If it returns `true` the
/// move is abandoned: the journal is replayed in reverse, restoring a
/// byte-identical pre-move state (the data copy and all allocation-table
/// maintenance happen strictly after the last checkpoint, so cells and
/// registers are the only mutations to undo).
///
/// With `interrupt == None` no journal is kept and no overhead is paid.
/// `workers` shards the patch apply across host threads (1 = serial) with
/// bit-identical results.
///
/// # Errors
///
/// [`MoveInterrupted`] when the hook fired; the rollback has already
/// happened by the time the error is returned.
pub fn perform_move_journaled(
    table: &mut AllocationTable,
    mem: &mut dyn PatchMem,
    regs: &mut [u64],
    req: MoveRequest,
    cost: &CostModel,
    workers: usize,
    interrupt: Option<&mut dyn FnMut(MovePhase) -> bool>,
) -> Result<MoveOutcome, MoveInterrupted> {
    perform_move_batch_journaled(
        table,
        mem,
        regs,
        std::slice::from_ref(&req),
        cost,
        workers,
        interrupt,
    )
    .map(|mut outs| outs.pop().expect("one request, one outcome"))
}

/// Execute a *batch* of moves as one transaction: every request is
/// expanded and planned up front, every plan is applied (cells first,
/// then one register pass over all ranges), and only then — after the
/// final [`MovePhase::Patched`] checkpoint — are the data copies and
/// table maintenance performed, in request order. The caller wraps the
/// whole batch in ONE world-stop, amortizing the signal+barrier round
/// and the register pass across every coalesced move.
///
/// Requirements (the kernel's batch planner guarantees both): expanded
/// source ranges are pairwise disjoint, and every destination is disjoint
/// from its own and from every *later* request's source range. A
/// destination may reuse an earlier request's source frames: the data
/// copies run in request order, so that range has been evacuated by the
/// time a later copy lands in it (which is exactly how sequential moves
/// recycle vacated frames). Under those, the batch is bit-identical —
/// memory, registers, table — to executing the requests sequentially.
///
/// Per-request outcomes match the sequential engine's exactly, except
/// that the register-patch charge (`regs.len()` inspections) is paid once
/// per batch and carried by the first outcome.
///
/// # Errors
///
/// [`MoveInterrupted`] when the hook fired; the whole batch — every cell
/// and register of every request — has been rolled back in reverse
/// mutation order.
pub fn perform_move_batch_journaled(
    table: &mut AllocationTable,
    mem: &mut dyn PatchMem,
    regs: &mut [u64],
    reqs: &[MoveRequest],
    cost: &CostModel,
    workers: usize,
    mut interrupt: Option<&mut dyn FnMut(MovePhase) -> bool>,
) -> Result<Vec<MoveOutcome>, MoveInterrupted> {
    // --- Phase 1: page expand (negotiation), every request up front ---
    let mut expanded: Vec<(u64, u64, u64)> = Vec::with_capacity(reqs.len());
    for req in reqs {
        let (src, len) = expand_to_allocations(table, req.src, req.len, cost.page_size);
        let dst = req.dst.wrapping_sub(req.src - src);
        debug_assert!(
            expanded
                .iter()
                .all(|&(s, l, _)| s + l <= src || src + len <= s),
            "batched moves must expand to disjoint ranges"
        );
        expanded.push((src, len, dst));
    }
    if let Some(hook) = interrupt.as_deref_mut() {
        if hook(MovePhase::Expanded) {
            // Nothing mutated yet; the journal is empty.
            return Err(MoveInterrupted {
                phase: MovePhase::Expanded,
                cells_rolled_back: 0,
                registers_rolled_back: 0,
            });
        }
    }

    // --- Phase 2: build every plan (pure reads), then apply them all ---
    let plans: Vec<PatchPlan> = expanded
        .iter()
        .map(|&(src, len, dst)| PatchPlan::build(&[table], &*mem, src, len, dst))
        .collect();
    let mut journal = interrupt.as_ref().map(|_| PatchJournal::default());
    for plan in &plans {
        plan.apply_with_journal(mem, workers, journal.as_mut());
    }

    // --- Phase 3: ONE register pass over every range in the batch ---
    let mut reg_counts = vec![0usize; plans.len()];
    for (idx, r) in regs.iter_mut().enumerate() {
        if let Some(k) = expanded.iter().position(|&(s, l, _)| *r >= s && *r < s + l) {
            if let Some(j) = journal.as_mut() {
                j.regs.push((idx, *r));
            }
            *r = r.wrapping_add(plans[k].delta as u64);
            reg_counts[k] += 1;
        }
    }

    if let Some(hook) = interrupt {
        if hook(MovePhase::Patched) {
            let (nc, nr) = journal
                .take()
                .expect("journal exists whenever a hook does")
                .rollback(mem, regs);
            return Err(MoveInterrupted {
                phase: MovePhase::Patched,
                cells_rolled_back: nc,
                registers_rolled_back: nr,
            });
        }
    }

    // --- Phase 4: data movement + table maintenance, request order ---
    let mut outcomes = Vec::with_capacity(plans.len());
    for (k, plan) in plans.iter().enumerate() {
        let (src, len, dst) = expanded[k];
        mem.copy(src, dst, len);
        table.rebase_escape_cells(src, src + len, plan.delta);
        for &start in &plan.affected[0] {
            table.relocate(start, plan.delta);
        }
        outcomes.push(MoveOutcome {
            moved_src: src,
            moved_len: len,
            moved_dst: dst,
            allocations: plan.affected[0].len(),
            escapes_patched: plan.cells.len(),
            registers_patched: reg_counts[k],
            cost: MoveCostBreakdown {
                page_expand: cost.move_expand_fixed
                    + plan.affected[0].len() as u64 * cost.move_expand_per_alloc,
                patch_gen_exec: cost.patch_cost(plan.cells.len() as u64),
                register_patch: if k == 0 {
                    regs.len() as u64 * cost.move_register_patch_per_reg
                } else {
                    0
                },
                alloc_and_move: cost.move_alloc_fixed + cost.copy_cost(len),
            },
        });
    }
    Ok(outcomes)
}

/// Execute one move against *several* allocation tables at once — the
/// cross-process shared-region case. Each table belongs to one process
/// that has the moved range mapped; the escape sets of all of them are
/// patched, `regs` is the concatenated dumped register state of every
/// stopped thread of every owner, the data is copied exactly once, and
/// every table's entries are relocated.
///
/// Escape patching is idempotent across tables: a cell registered by more
/// than one owner is planned — and counted — exactly once.
///
/// The journal spans all tables: an interrupt at a checkpoint rolls back
/// every cell and register patched so far regardless of which owner's
/// escape set produced it, leaving all processes byte-identical to their
/// pre-move state (table maintenance happens strictly after the last
/// checkpoint).
///
/// Expansion negotiates against *all* tables until a fixed point, so no
/// owner's allocation straddles the moved range.
///
/// # Errors
///
/// [`MoveInterrupted`] when the hook fired; the rollback across all
/// owners has already happened.
pub fn perform_shared_move_journaled(
    tables: &mut [&mut AllocationTable],
    mem: &mut dyn PatchMem,
    regs: &mut [u64],
    req: MoveRequest,
    cost: &CostModel,
    workers: usize,
    mut interrupt: Option<&mut dyn FnMut(MovePhase) -> bool>,
) -> Result<MoveOutcome, MoveInterrupted> {
    // --- Phase 1: page expand, negotiated across every owner ---
    let (mut src, mut len) = (req.src, req.len);
    loop {
        let before = (src, len);
        for table in tables.iter() {
            let (s, l) = expand_to_allocations(table, src, len, cost.page_size);
            (src, len) = (s, l);
        }
        if (src, len) == before {
            break;
        }
    }
    let dst = req.dst.wrapping_sub(req.src - src);
    let plan = {
        let views: Vec<&AllocationTable> = tables.iter().map(|t| &**t).collect();
        PatchPlan::build(&views, &*mem, src, len, dst)
    };
    let total_affected: usize = plan.affected.iter().map(Vec::len).sum();

    if let Some(hook) = interrupt.as_deref_mut() {
        if hook(MovePhase::Expanded) {
            return Err(MoveInterrupted {
                phase: MovePhase::Expanded,
                cells_rolled_back: 0,
                registers_rolled_back: 0,
            });
        }
    }

    // --- Phase 2: apply the combined plan ---
    let mut journal = interrupt.as_ref().map(|_| PatchJournal::default());
    plan.apply_with_journal(mem, workers, journal.as_mut());

    // --- Phase 3: register patch (all owners' dumped threads) ---
    let mut registers_patched = 0usize;
    for (idx, r) in regs.iter_mut().enumerate() {
        if *r >= src && *r < src + len {
            if let Some(j) = journal.as_mut() {
                j.regs.push((idx, *r));
            }
            *r = r.wrapping_add(plan.delta as u64);
            registers_patched += 1;
        }
    }

    if let Some(hook) = interrupt {
        if hook(MovePhase::Patched) {
            let (nc, nr) = journal
                .take()
                .expect("journal exists whenever a hook does")
                .rollback(mem, regs);
            return Err(MoveInterrupted {
                phase: MovePhase::Patched,
                cells_rolled_back: nc,
                registers_rolled_back: nr,
            });
        }
    }

    // --- Phase 4: single data copy + per-owner table maintenance ---
    mem.copy(src, dst, len);
    for (table, affected) in tables.iter_mut().zip(&plan.affected) {
        table.rebase_escape_cells(src, src + len, plan.delta);
        for &start in affected {
            table.relocate(start, plan.delta);
        }
    }

    Ok(MoveOutcome {
        moved_src: src,
        moved_len: len,
        moved_dst: dst,
        allocations: total_affected,
        escapes_patched: plan.cells.len(),
        registers_patched,
        cost: MoveCostBreakdown {
            page_expand: cost.move_expand_fixed
                + total_affected as u64 * cost.move_expand_per_alloc,
            patch_gen_exec: cost.patch_cost(plan.cells.len() as u64),
            register_patch: regs.len() as u64 * cost.move_register_patch_per_reg,
            alloc_and_move: cost.move_alloc_fixed + cost.copy_cost(len),
        },
    })
}

/// Allocation-granularity move (the paper's §6 "Allocation Granularity"
/// future-work extension, implemented here for the ablation benchmarks):
/// moves exactly one allocation, with no page expansion or negotiation.
pub fn perform_move_alloc_granular(
    table: &mut AllocationTable,
    mem: &mut dyn MemAccess,
    regs: &mut [u64],
    alloc_start: u64,
    dst: u64,
    cost: &CostModel,
) -> Option<MoveOutcome> {
    let info = table.info(alloc_start)?;
    let len = info.len;
    let delta = dst.wrapping_sub(alloc_start) as i64;
    let mut escapes_patched = 0;
    for &cell in &info.escapes {
        let val = mem.read_u64(cell);
        if val >= alloc_start && val < alloc_start + len {
            mem.write_u64(cell, val.wrapping_add(delta as u64));
            escapes_patched += 1;
        }
    }
    let mut registers_patched = 0;
    for r in regs.iter_mut() {
        if *r >= alloc_start && *r < alloc_start + len {
            *r = r.wrapping_add(delta as u64);
            registers_patched += 1;
        }
    }
    mem.copy(alloc_start, dst, len);
    table.rebase_escape_cells(alloc_start, alloc_start + len, delta);
    table.relocate(alloc_start, delta);
    Some(MoveOutcome {
        moved_src: alloc_start,
        moved_len: len,
        moved_dst: dst,
        allocations: 1,
        escapes_patched,
        registers_patched,
        cost: MoveCostBreakdown {
            page_expand: 0, // the whole point of allocation granularity
            patch_gen_exec: cost.patch_cost(escapes_patched as u64),
            register_patch: regs.len() as u64 * cost.move_register_patch_per_reg,
            alloc_and_move: cost.move_alloc_fixed + cost.copy_cost(len),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_table::AllocKind;
    use std::collections::HashMap;

    /// Sparse simulated memory for tests. No raw backing, so plans over
    /// it always take the serial apply path.
    #[derive(Default)]
    struct TestMem {
        words: HashMap<u64, u64>,
    }

    impl MemAccess for TestMem {
        fn read_u64(&self, addr: u64) -> u64 {
            *self.words.get(&addr).unwrap_or(&0)
        }
        fn write_u64(&mut self, addr: u64, val: u64) {
            self.words.insert(addr, val);
        }
        fn copy(&mut self, src: u64, dst: u64, len: u64) {
            let moved: Vec<(u64, u64)> = self
                .words
                .iter()
                .filter(|(&a, _)| a >= src && a < src + len)
                .map(|(&a, &v)| (a, v))
                .collect();
            for (a, v) in moved {
                self.words.remove(&a);
                self.words.insert(a - src + dst, v);
            }
        }
    }

    impl PatchMem for TestMem {}

    fn setup() -> (AllocationTable, TestMem) {
        let mut t = AllocationTable::new();
        let mut m = TestMem::default();
        // Allocation A at 0x1000..0x1100 with two escapes:
        //  - cell 0x5000 (outside A) -> 0x1010
        //  - cell 0x1080 (inside A!) -> 0x1020  (self-referential structure)
        t.track_alloc(0x1000, 0x100, AllocKind::Heap);
        m.write_u64(0x5000, 0x1010);
        m.write_u64(0x1080, 0x1020);
        t.track_escape(0x5000);
        t.track_escape(0x1080);
        let snapshot: HashMap<u64, u64> = [(0x5000u64, 0x1010u64), (0x1080, 0x1020)].into();
        t.flush_escapes(|c| snapshot[&c]);
        (t, m)
    }

    #[test]
    fn expand_covers_straddling_allocation() {
        let mut t = AllocationTable::new();
        // Allocation crossing the 0x2000 page boundary.
        t.track_alloc(0x1f00, 0x200, AllocKind::Heap);
        let (src, len) = expand_to_allocations(&t, 0x2000, 0x1000, 0x1000);
        assert_eq!(src, 0x1000, "expanded back to cover the allocation");
        assert_eq!(len, 0x2000);
    }

    #[test]
    fn move_patches_external_and_internal_escapes() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![0x1044u64, 0xdead];
        let out = perform_move(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
        );
        assert_eq!(out.allocations, 1);
        assert_eq!(out.escapes_patched, 2);
        assert_eq!(out.registers_patched, 1);
        // External cell now points into the new location.
        assert_eq!(m.read_u64(0x5000), 0x9010);
        // Internal cell moved with the data AND was patched.
        assert_eq!(m.read_u64(0x9080), 0x9020);
        // Register snapshot patched.
        assert_eq!(regs[0], 0x9044);
        assert_eq!(regs[1], 0xdead);
        // Table relocated.
        assert!(t.info(0x1000).is_none());
        assert_eq!(t.info(0x9000).map(|i| i.len), Some(0x100));
        // The internal escape cell is tracked at its new address.
        assert!(t.info(0x9000).unwrap().escapes.contains(&0x9080));
        assert!(t.info(0x9000).unwrap().escapes.contains(&0x5000));
    }

    #[test]
    fn move_cost_breakdown_sums() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![0u64; 16];
        let out = perform_move(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
        );
        let c = out.cost;
        assert_eq!(c.total(), c.prototype_cost() + c.alloc_and_move);
        assert_eq!(
            c.prototype_cost(),
            c.page_expand + c.patch_gen_exec + c.register_patch
        );
        assert!(c.prototype_wo_expand() < c.prototype_cost());
        assert_eq!(
            c.patch_gen_exec,
            2 * cost.move_patch_per_escape,
            "two escapes patched"
        );
    }

    #[test]
    fn plan_records_old_new_and_owner() {
        let (t, m) = setup();
        let plan = PatchPlan::build(&[&t], &m, 0x1000, 0x1000, 0x9000);
        assert_eq!(plan.delta, 0x8000);
        assert_eq!(plan.cells.len(), 2);
        assert_eq!(plan.affected, vec![vec![0x1000]]);
        for p in &plan.cells {
            assert_eq!(p.owner, 0x1000);
            assert_eq!(p.new, p.old + 0x8000);
            assert_eq!(m.read_u64(p.cell), p.old, "build is pure reads");
        }
    }

    #[test]
    fn alloc_granular_move_skips_expand() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![];
        let out = perform_move_alloc_granular(&mut t, &mut m, &mut regs, 0x1000, 0x9000, &cost)
            .expect("allocation exists");
        assert_eq!(out.cost.page_expand, 0);
        assert_eq!(out.moved_len, 0x100, "only the allocation itself");
        assert_eq!(m.read_u64(0x5000), 0x9010);
        assert_eq!(t.info(0x9000).map(|i| i.len), Some(0x100));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// Random allocation layouts with random cross-pointers: after a
        /// move of any page, every escape cell points into its (possibly
        /// relocated) owner and the data moved verbatim.
        #[test]
        fn move_preserves_pointer_graph(
            n_allocs in 1usize..24,
            sizes in proptest::collection::vec(16u64..200, 24),
            links in proptest::collection::vec((0usize..24, 0usize..24, 0u64..16), 0..40),
            move_page in 0u64..4,
        ) {
            use proptest::prelude::*;
            let cost = CostModel::default();
            let mut t = AllocationTable::new();
            let mut m = TestMem::default();
            // Lay allocations out contiguously from 0x10000 (16-aligned).
            let mut starts = Vec::new();
            let mut cursor = 0x10000u64;
            for &raw in sizes.iter().take(n_allocs) {
                let size = raw / 16 * 16 + 16;
                starts.push(cursor);
                t.track_alloc(cursor, size, AllocKind::Heap);
                cursor += size;
            }
            // Random pointer cells: cell inside alloc A points into alloc B.
            let mut cells = Vec::new();
            for &(a, bflt, off) in &links {
                let (a, b) = (a % n_allocs, bflt % n_allocs);
                let cell = starts[a] + (off % (sizes[a] / 16 + 1)) * 8;
                let target = starts[b] + (off % 2) * 8;
                m.write_u64(cell, target);
                t.track_escape(cell);
                cells.push(cell);
            }
            let snapshot = m.words.clone();
            t.flush_escapes(|c| *snapshot.get(&c).unwrap_or(&0));
            // Move one page of the layout.
            let src = 0x10000 + move_page * 0x1000;
            let mut regs = vec![starts[0], 0x0];
            let out = perform_move(
                &mut t,
                &mut m,
                &mut regs,
                MoveRequest { src, len: 0x1000, dst: 0x90000 },
                &cost,
            );
            prop_assert!(out.moved_len >= 0x1000);
            // Every registered escape cell's value lies inside its owner.
            for (start, len, _, _) in t.snapshot() {
                if let Some(info) = t.info(start) {
                    for &cell in &info.escapes {
                        let val = m.read_u64(cell);
                        prop_assert!(
                            val >= start && val < start + len,
                            "cell {cell:#x} -> {val:#x} outside [{start:#x},+{len:#x})"
                        );
                    }
                }
            }
            // Register patched iff it was in the moved range.
            prop_assert_eq!(regs[1], 0);
        }
    }

    #[test]
    fn interrupted_move_rolls_back_byte_identical() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![0x1044u64, 0xdead];
        let words_before = m.words.clone();
        let regs_before = regs.clone();
        let table_before = t.snapshot();
        let mut fire = |phase: MovePhase| phase == MovePhase::Patched;
        let err = perform_move_journaled(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
            1,
            Some(&mut fire),
        )
        .unwrap_err();
        assert_eq!(err.phase, MovePhase::Patched);
        assert_eq!(err.cells_rolled_back, 2, "both escape patches undone");
        assert_eq!(err.registers_rolled_back, 1);
        // Byte-identical pre-move state: memory, registers, and table.
        assert_eq!(m.words, words_before);
        assert_eq!(regs, regs_before);
        assert_eq!(t.snapshot(), table_before);
        assert!(t.info(0x1000).is_some(), "allocation still at old address");
        assert!(t.info(0x9000).is_none(), "nothing landed at the dst");
        // The machine is not poisoned: the same move succeeds afterwards.
        let out = perform_move(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
        );
        assert_eq!(out.escapes_patched, 2);
        assert_eq!(m.read_u64(0x5000), 0x9010);
    }

    #[test]
    fn interrupt_before_patching_touches_nothing() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![0x1044u64];
        let words_before = m.words.clone();
        let mut fire = |phase: MovePhase| phase == MovePhase::Expanded;
        let err = perform_move_journaled(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
            1,
            Some(&mut fire),
        )
        .unwrap_err();
        assert_eq!(err.phase, MovePhase::Expanded);
        assert_eq!(err.cells_rolled_back, 0);
        assert_eq!(m.words, words_before);
        assert_eq!(regs, vec![0x1044u64]);
    }

    #[test]
    fn journaled_move_without_interrupt_matches_plain_move() {
        let (mut t1, mut m1) = setup();
        let (mut t2, mut m2) = setup();
        let cost = CostModel::default();
        let req = MoveRequest {
            src: 0x1000,
            len: 0x1000,
            dst: 0x9000,
        };
        let mut regs1 = vec![0x1044u64, 0xdead];
        let mut regs2 = regs1.clone();
        let plain = perform_move(&mut t1, &mut m1, &mut regs1, req, &cost);
        let mut never = |_: MovePhase| false;
        let journaled = perform_move_journaled(
            &mut t2,
            &mut m2,
            &mut regs2,
            req,
            &cost,
            1,
            Some(&mut never),
        )
        .unwrap();
        assert_eq!(plain, journaled, "journal must not change the outcome");
        assert_eq!(regs1, regs2);
        assert_eq!(m1.words, m2.words);
    }

    /// Two disjoint allocations, each with its own escapes: a batch of
    /// two moves must equal two sequential moves bit-for-bit, except the
    /// register-patch charge is paid once.
    fn setup_two() -> (AllocationTable, TestMem) {
        let mut t = AllocationTable::new();
        let mut m = TestMem::default();
        t.track_alloc(0x1000, 0x100, AllocKind::Heap);
        t.track_alloc(0x3000, 0x200, AllocKind::Heap);
        m.write_u64(0x5000, 0x1010); // -> A
        m.write_u64(0x1080, 0x3020); // inside A, -> B (cross-range pointer)
        m.write_u64(0x6000, 0x3040); // -> B
        t.track_escape(0x5000);
        t.track_escape(0x1080);
        t.track_escape(0x6000);
        let snapshot: HashMap<u64, u64> =
            [(0x5000u64, 0x1010u64), (0x1080, 0x3020), (0x6000, 0x3040)].into();
        t.flush_escapes(|c| snapshot[&c]);
        (t, m)
    }

    #[test]
    fn batch_of_two_equals_sequential_moves() {
        let reqs = [
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            MoveRequest {
                src: 0x3000,
                len: 0x1000,
                dst: 0xb000,
            },
        ];
        let cost = CostModel::default();

        let (mut t1, mut m1) = setup_two();
        let mut regs1 = vec![0x1044u64, 0x3044, 0xdead];
        let seq: Vec<MoveOutcome> = reqs
            .iter()
            .map(|&req| perform_move(&mut t1, &mut m1, &mut regs1, req, &cost))
            .collect();

        let (mut t2, mut m2) = setup_two();
        let mut regs2 = vec![0x1044u64, 0x3044, 0xdead];
        let batch =
            perform_move_batch_journaled(&mut t2, &mut m2, &mut regs2, &reqs, &cost, 1, None)
                .unwrap();

        assert_eq!(m1.words, m2.words, "memory bit-identical");
        assert_eq!(regs1, regs2, "registers bit-identical");
        assert_eq!(t1.snapshot(), t2.snapshot(), "tables bit-identical");
        assert_eq!(batch.len(), 2);
        for (s, b) in seq.iter().zip(&batch) {
            assert_eq!(s.moved_src, b.moved_src);
            assert_eq!(s.moved_dst, b.moved_dst);
            assert_eq!(s.escapes_patched, b.escapes_patched);
            assert_eq!(s.registers_patched, b.registers_patched);
            assert_eq!(s.cost.patch_gen_exec, b.cost.patch_gen_exec);
        }
        // The amortization: one register pass for the whole batch.
        assert_eq!(
            batch[0].cost.register_patch,
            regs2.len() as u64 * cost.move_register_patch_per_reg
        );
        assert_eq!(batch[1].cost.register_patch, 0);
        // The cross-range pointer followed both moves: the cell moved
        // with A, its value was patched for B.
        assert_eq!(m2.read_u64(0x9080), 0xb020);
    }

    #[test]
    fn interrupted_batch_rolls_back_every_request() {
        let (mut t, mut m) = setup_two();
        let cost = CostModel::default();
        let mut regs = vec![0x1044u64, 0x3044];
        let words_before = m.words.clone();
        let regs_before = regs.clone();
        let table_before = t.snapshot();
        let reqs = [
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            MoveRequest {
                src: 0x3000,
                len: 0x1000,
                dst: 0xb000,
            },
        ];
        let mut fire = |phase: MovePhase| phase == MovePhase::Patched;
        let err = perform_move_batch_journaled(
            &mut t,
            &mut m,
            &mut regs,
            &reqs,
            &cost,
            1,
            Some(&mut fire),
        )
        .unwrap_err();
        assert_eq!(err.phase, MovePhase::Patched);
        assert_eq!(err.cells_rolled_back, 3, "all three cells, both requests");
        assert_eq!(err.registers_rolled_back, 2);
        assert_eq!(m.words, words_before);
        assert_eq!(regs, regs_before);
        assert_eq!(t.snapshot(), table_before);
    }

    /// Two owner tables for one shared allocation at 0x20000..0x20100:
    /// owner 0 holds a pointer cell at 0x5000, owner 1 at 0x6000, and both
    /// track a cell at 0x20080 *inside* the shared block.
    fn setup_shared() -> (AllocationTable, AllocationTable, TestMem) {
        let mut t1 = AllocationTable::new();
        let mut t2 = AllocationTable::new();
        let mut m = TestMem::default();
        for t in [&mut t1, &mut t2] {
            t.track_alloc(0x20000, 0x100, AllocKind::Heap);
        }
        m.write_u64(0x5000, 0x20010);
        m.write_u64(0x6000, 0x20020);
        m.write_u64(0x20080, 0x20030);
        t1.track_escape(0x5000);
        t1.track_escape(0x20080);
        t2.track_escape(0x6000);
        t2.track_escape(0x20080);
        let snapshot: HashMap<u64, u64> = [
            (0x5000u64, 0x20010u64),
            (0x6000, 0x20020),
            (0x20080, 0x20030),
        ]
        .into();
        t1.flush_escapes(|c| snapshot[&c]);
        t2.flush_escapes(|c| snapshot[&c]);
        (t1, t2, m)
    }

    #[test]
    fn shared_move_patches_every_owner() {
        let (mut t1, mut t2, mut m) = setup_shared();
        let cost = CostModel::default();
        // regs = owner0's thread then owner1's thread.
        let mut regs = vec![0x20044u64, 0xdead, 0x20048];
        let out = perform_shared_move_journaled(
            &mut [&mut t1, &mut t2],
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x20000,
                len: 0x1000,
                dst: 0x90000,
            },
            &cost,
            1,
            None,
        )
        .unwrap();
        assert_eq!(out.allocations, 2, "one affected allocation per owner");
        // 0x5000, 0x6000, and 0x20080 — the doubly-tracked internal cell
        // counts once (idempotent patch).
        assert_eq!(out.escapes_patched, 3);
        assert_eq!(out.registers_patched, 2);
        assert_eq!(m.read_u64(0x5000), 0x90010);
        assert_eq!(m.read_u64(0x6000), 0x90020);
        assert_eq!(
            m.read_u64(0x90080),
            0x90030,
            "internal cell moved + patched once"
        );
        assert_eq!(regs, vec![0x90044, 0xdead, 0x90048]);
        for t in [&t1, &t2] {
            assert!(t.info(0x20000).is_none());
            assert_eq!(t.info(0x90000).map(|i| i.len), Some(0x100));
            assert!(t.info(0x90000).unwrap().escapes.contains(&0x90080));
        }
        assert!(t1.info(0x90000).unwrap().escapes.contains(&0x5000));
        assert!(t2.info(0x90000).unwrap().escapes.contains(&0x6000));
    }

    #[test]
    fn interrupted_shared_move_rolls_back_all_owners() {
        let (mut t1, mut t2, mut m) = setup_shared();
        let cost = CostModel::default();
        let mut regs = vec![0x20044u64, 0x20048];
        let words_before = m.words.clone();
        let regs_before = regs.clone();
        let (snap1, snap2) = (t1.snapshot(), t2.snapshot());
        let mut fire = |phase: MovePhase| phase == MovePhase::Patched;
        let err = perform_shared_move_journaled(
            &mut [&mut t1, &mut t2],
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x20000,
                len: 0x1000,
                dst: 0x90000,
            },
            &cost,
            1,
            Some(&mut fire),
        )
        .unwrap_err();
        assert_eq!(err.phase, MovePhase::Patched);
        assert_eq!(err.cells_rolled_back, 3);
        assert_eq!(err.registers_rolled_back, 2);
        assert_eq!(m.words, words_before);
        assert_eq!(regs, regs_before);
        assert_eq!(t1.snapshot(), snap1);
        assert_eq!(t2.snapshot(), snap2);
        // Not poisoned: the same shared move succeeds afterwards.
        let out = perform_shared_move_journaled(
            &mut [&mut t1, &mut t2],
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x20000,
                len: 0x1000,
                dst: 0x90000,
            },
            &cost,
            1,
            None,
        )
        .unwrap();
        assert_eq!(out.escapes_patched, 3);
    }

    #[test]
    fn moving_without_pointers_patches_nothing() {
        let mut t = AllocationTable::new();
        let mut m = TestMem::default();
        t.track_alloc(0x1000, 0x100, AllocKind::Heap);
        m.write_u64(0x1000, 42);
        let cost = CostModel::default();
        let mut regs = vec![0u64; 4];
        let out = perform_move(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x4000,
            },
            &cost,
        );
        assert_eq!(out.escapes_patched, 0);
        assert_eq!(m.read_u64(0x4000), 42, "data moved verbatim");
    }
}
