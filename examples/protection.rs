//! Protection demo: CARAT guards stop the same wild accesses a paging MMU
//! would, and kernel protection changes (region permission updates) take
//! effect at the next guard — with no page table anywhere.
//!
//! ```sh
//! cargo run --example protection
//! ```

use carat_core::{CaratCompiler, CompileOptions, OptPreset};
use carat_frontend::compile_cm;
use carat_runtime::{Access, GuardImpl, Perms};
use carat_vm::{Vm, VmConfig, VmError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A wild write is caught by a guard -------------------------
    let wild = r#"
    int main() {
        int* p = (int*) 0x7f000000;   // forged physical address
        *p = 42;                      // must fault under CARAT
        return 0;
    }
    "#;
    let module = compile_cm("wild", wild)?;
    let compiled = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
        .compile(module)?;
    match Vm::new(compiled.module, VmConfig::default())?.run() {
        Err(VmError::GuardFault { addr, write, .. }) => {
            println!(
                "guard fault caught the wild {} to {addr:#x} (as paging would)",
                if write { "write" } else { "read" }
            );
        }
        other => panic!("expected a guard fault, got {other:?}"),
    }

    // --- 2. The same program minus the wild write runs fine -----------
    let tame = r#"
    int buffer[64];
    int main() {
        for (int i = 0; i < 64; i += 1) { buffer[i] = i; }
        return buffer[63];
    }
    "#;
    let module = compile_cm("tame", tame)?;
    let compiled = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
        .compile(module)?;
    let r = Vm::new(compiled.module, VmConfig::default())?.run()?;
    println!(
        "tame run returned {} with {} guard checks",
        r.ret, r.counters.guards_executed
    );

    // --- 3. Kernel-side protection change: make a region read-only ----
    // Drive the region machinery directly (what the kernel module does on
    // a protection change request, paper §4.3).
    let module = compile_cm("tame2", tame)?;
    let compiled = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
        .compile(module)?;
    let vm = Vm::new(compiled.module, VmConfig::default())?;
    let global_addr = vm.image().globals[0];
    let page = 4096;
    let mut kernel_view = vm; // we own the whole machine in this demo
    kernel_view
        .kernel
        .change_protection(global_addr / page * page, page, Perms::R);
    println!(
        "kernel made the page at {:#x} read-only; region count is now {}",
        global_addr / page * page,
        kernel_view.kernel.regions.len()
    );
    // The very next guarded store faults — "the next guard will see the
    // changes" (paper §2.2).
    match kernel_view.run() {
        Err(VmError::GuardFault {
            addr, write: true, ..
        }) => {
            println!("guarded store to {addr:#x} faulted after the protection change");
        }
        other => panic!("expected a write fault, got {other:?}"),
    }

    // --- 4. Guard mechanisms agree ------------------------------------
    let module = compile_cm("tame3", tame)?;
    let compiled = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
        .compile(module)?;
    for imp in [GuardImpl::BinarySearch, GuardImpl::IfTree, GuardImpl::Mpx] {
        let r = Vm::new(
            compiled.module.clone(),
            VmConfig {
                guard_impl: imp,
                ..VmConfig::default()
            },
        )?
        .run()?;
        println!("{imp:?}: {} cycles in guards", r.counters.guard_cycles);
    }
    let _ = Access::Read; // (re-exported for API browsing)
    Ok(())
}
