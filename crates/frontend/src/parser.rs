//! Recursive-descent parser for Cm.

use crate::ast::*;
use crate::token::{lex, Kw, LexError, Spanned, Tok};
use std::error::Error;
use std::fmt;

/// Parsing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CmParseError {
    /// 1-based line.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for CmParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for CmParseError {}

impl From<LexError> for CmParseError {
    fn from(e: LexError) -> CmParseError {
        CmParseError {
            line: e.line,
            message: e.message,
        }
    }
}

type Result<T> = std::result::Result<T, CmParseError>;

/// Parse a Cm source file.
///
/// # Errors
///
/// Returns a [`CmParseError`] naming the offending line.
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(CmParseError {
            line: self.line(),
            message: msg.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> Result<()> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found {other:?}")),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // ---- types ----------------------------------------------------------

    /// Whether the current token starts a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(Kw::Int | Kw::Double | Kw::Char | Kw::Bool | Kw::Void | Kw::Struct)
        )
    }

    fn base_type(&mut self) -> Result<CmType> {
        let t = match self.bump() {
            Tok::Kw(Kw::Int) => CmType::Int,
            Tok::Kw(Kw::Double) => CmType::Double,
            Tok::Kw(Kw::Char) => CmType::Char,
            Tok::Kw(Kw::Bool) => CmType::Bool,
            Tok::Kw(Kw::Void) => CmType::Void,
            Tok::Kw(Kw::Struct) => {
                let name = self.ident()?;
                CmType::Struct(name)
            }
            other => return self.err(format!("expected type, found {other:?}")),
        };
        Ok(t)
    }

    /// `base_type '*'*`
    fn typ(&mut self) -> Result<CmType> {
        let mut t = self.base_type()?;
        while self.try_punct("*") {
            t = CmType::ptr(t);
        }
        Ok(t)
    }

    // ---- items ----------------------------------------------------------

    fn program(&mut self) -> Result<Program> {
        let mut prog = Program::default();
        while !matches!(self.peek(), Tok::Eof) {
            // struct definition: `struct Name {` (vs `struct Name ident`).
            if matches!(self.peek(), Tok::Kw(Kw::Struct))
                && matches!(self.peek2(), Tok::Ident(_))
                && matches!(
                    self.toks.get(self.pos + 2).map(|s| &s.tok),
                    Some(Tok::Punct("{"))
                )
            {
                prog.structs.push(self.struct_def()?);
                continue;
            }
            // Otherwise: type name, then `(` => function, else global.
            let line = self.line();
            let ty = self.typ()?;
            let name = self.ident()?;
            if matches!(self.peek(), Tok::Punct("(")) {
                prog.funcs.push(self.func_def(ty, name, line)?);
            } else {
                prog.globals.push(self.global_def(ty, name, line)?);
            }
        }
        Ok(prog)
    }

    fn struct_def(&mut self) -> Result<StructDef> {
        self.bump(); // struct
        let name = self.ident()?;
        self.eat_punct("{")?;
        let mut fields = Vec::new();
        while !self.try_punct("}") {
            let fty = self.typ()?;
            let fname = self.ident()?;
            let fty = self.array_suffix(fty)?;
            self.eat_punct(";")?;
            fields.push((fty, fname));
        }
        let _ = self.try_punct(";");
        Ok(StructDef { name, fields })
    }

    fn array_suffix(&mut self, mut ty: CmType) -> Result<CmType> {
        let mut dims = Vec::new();
        while self.try_punct("[") {
            let n = match self.bump() {
                Tok::Int(n) if n > 0 => n as u64,
                other => return self.err(format!("expected array length, found {other:?}")),
            };
            self.eat_punct("]")?;
            dims.push(n);
        }
        for n in dims.into_iter().rev() {
            ty = CmType::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn global_def(&mut self, ty: CmType, name: String, line: usize) -> Result<GlobalDef> {
        let ty = self.array_suffix(ty)?;
        let init = if self.try_punct("=") {
            Some(self.global_init()?)
        } else {
            None
        };
        self.eat_punct(";")?;
        Ok(GlobalDef {
            ty,
            name,
            init,
            line,
        })
    }

    fn global_init(&mut self) -> Result<Vec<GlobalLit>> {
        let mut lits = Vec::new();
        if self.try_punct("{") {
            loop {
                if self.try_punct("}") {
                    break;
                }
                lits.push(self.global_lit()?);
                if !self.try_punct(",") {
                    self.eat_punct("}")?;
                    break;
                }
            }
        } else {
            lits.push(self.global_lit()?);
        }
        Ok(lits)
    }

    fn global_lit(&mut self) -> Result<GlobalLit> {
        let neg = self.try_punct("-");
        match self.bump() {
            Tok::Int(v) => Ok(GlobalLit::Int(if neg { -v } else { v })),
            Tok::Float(v) => Ok(GlobalLit::Float(if neg { -v } else { v })),
            other => self.err(format!("expected literal, found {other:?}")),
        }
    }

    fn func_def(&mut self, ret: CmType, name: String, line: usize) -> Result<FuncDef> {
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.try_punct(")") {
            loop {
                if matches!(self.peek(), Tok::Kw(Kw::Void))
                    && matches!(self.peek2(), Tok::Punct(")"))
                {
                    self.bump();
                    self.eat_punct(")")?;
                    break;
                }
                let pty = self.typ()?;
                let pname = self.ident()?;
                params.push((pty, pname));
                if !self.try_punct(",") {
                    self.eat_punct(")")?;
                    break;
                }
            }
        }
        self.eat_punct("{")?;
        let body = self.block_body()?;
        Ok(FuncDef {
            ret,
            name,
            params,
            body,
            line,
        })
    }

    // ---- statements -----------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        while !self.try_punct("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        match self.peek() {
            Tok::Punct("{") => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.eat_punct("(")?;
                let cond = self.expr()?;
                self.eat_punct(")")?;
                let then_body = self.stmt_as_block()?;
                let else_body = if matches!(self.peek(), Tok::Kw(Kw::Else)) {
                    self.bump();
                    self.stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.eat_punct("(")?;
                let cond = self.expr()?;
                self.eat_punct(")")?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.eat_punct("(")?;
                let init = if self.try_punct(";") {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_semi()?))
                };
                let cond = if matches!(self.peek(), Tok::Punct(";")) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_punct(";")?;
                let step = if matches!(self.peek(), Tok::Punct(")")) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_punct(")")?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let e = if self.try_punct(";") {
                    return Ok(Stmt::Return(None, line));
                } else {
                    let e = self.expr()?;
                    self.eat_punct(";")?;
                    Some(e)
                };
                Ok(Stmt::Return(e, line))
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.eat_punct(";")?;
                Ok(Stmt::Break(line))
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.eat_punct(";")?;
                Ok(Stmt::Continue(line))
            }
            _ => self.simple_stmt_semi(),
        }
    }

    /// A declaration or expression statement, consuming the `;`.
    fn simple_stmt_semi(&mut self) -> Result<Stmt> {
        let line = self.line();
        if self.at_type() && !self.is_struct_literal_expr() {
            let ty = self.typ()?;
            let name = self.ident()?;
            let ty = self.array_suffix(ty)?;
            let init = if self.try_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.eat_punct(";")?;
            return Ok(Stmt::Decl {
                ty,
                name,
                init,
                line,
            });
        }
        let e = self.expr()?;
        self.eat_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    /// Disambiguate `struct X` (decl) — Cm has no struct-literal exprs, so
    /// any type keyword starts a declaration.
    fn is_struct_literal_expr(&self) -> bool {
        false
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>> {
        if self.try_punct("{") {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr> {
        let line = self.line();
        let lhs = self.logical_or()?;
        let op = match self.peek() {
            Tok::Punct("=") => None,
            Tok::Punct("+=") => Some(BinOpKind::Add),
            Tok::Punct("-=") => Some(BinOpKind::Sub),
            Tok::Punct("*=") => Some(BinOpKind::Mul),
            Tok::Punct("/=") => Some(BinOpKind::Div),
            Tok::Punct("%=") => Some(BinOpKind::Rem),
            Tok::Punct("&=") => Some(BinOpKind::And),
            Tok::Punct("|=") => Some(BinOpKind::Or),
            Tok::Punct("^=") => Some(BinOpKind::Xor),
            Tok::Punct("<<=") => Some(BinOpKind::Shl),
            Tok::Punct(">>=") => Some(BinOpKind::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let value = self.assignment()?;
        Ok(Expr {
            kind: ExprKind::Assign {
                target: Box::new(lhs),
                op,
                value: Box::new(value),
            },
            line,
        })
    }

    fn logical_or(&mut self) -> Result<Expr> {
        let mut e = self.logical_and()?;
        while matches!(self.peek(), Tok::Punct("||")) {
            let line = self.line();
            self.bump();
            let r = self.logical_and()?;
            e = Expr {
                kind: ExprKind::LogicalOr(Box::new(e), Box::new(r)),
                line,
            };
        }
        Ok(e)
    }

    fn logical_and(&mut self) -> Result<Expr> {
        let mut e = self.bit_or()?;
        while matches!(self.peek(), Tok::Punct("&&")) {
            let line = self.line();
            self.bump();
            let r = self.bit_or()?;
            e = Expr {
                kind: ExprKind::LogicalAnd(Box::new(e), Box::new(r)),
                line,
            };
        }
        Ok(e)
    }

    fn binary_level(
        &mut self,
        ops: &[(&str, BinOpKind)],
        next: fn(&mut Parser) -> Result<Expr>,
    ) -> Result<Expr> {
        let mut e = next(self)?;
        'outer: loop {
            for (p, k) in ops {
                if matches!(self.peek(), Tok::Punct(q) if q == p) {
                    let line = self.line();
                    self.bump();
                    let r = next(self)?;
                    e = Expr {
                        kind: ExprKind::Binary(*k, Box::new(e), Box::new(r)),
                        line,
                    };
                    continue 'outer;
                }
            }
            return Ok(e);
        }
    }

    fn bit_or(&mut self) -> Result<Expr> {
        self.binary_level(&[("|", BinOpKind::Or)], Parser::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr> {
        self.binary_level(&[("^", BinOpKind::Xor)], Parser::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr> {
        self.binary_level(&[("&", BinOpKind::And)], Parser::equality)
    }

    fn equality(&mut self) -> Result<Expr> {
        self.binary_level(
            &[("==", BinOpKind::Eq), ("!=", BinOpKind::Ne)],
            Parser::relational,
        )
    }

    fn relational(&mut self) -> Result<Expr> {
        self.binary_level(
            &[
                ("<=", BinOpKind::Le),
                (">=", BinOpKind::Ge),
                ("<", BinOpKind::Lt),
                (">", BinOpKind::Gt),
            ],
            Parser::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr> {
        self.binary_level(
            &[("<<", BinOpKind::Shl), (">>", BinOpKind::Shr)],
            Parser::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr> {
        self.binary_level(
            &[("+", BinOpKind::Add), ("-", BinOpKind::Sub)],
            Parser::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        self.binary_level(
            &[
                ("*", BinOpKind::Mul),
                ("/", BinOpKind::Div),
                ("%", BinOpKind::Rem),
            ],
            Parser::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.peek() {
            Tok::Punct("-") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                    line,
                })
            }
            Tok::Punct("!") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                    line,
                })
            }
            Tok::Punct("~") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::BitNot, Box::new(e)),
                    line,
                })
            }
            Tok::Punct("*") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Deref(Box::new(e)),
                    line,
                })
            }
            Tok::Punct("&") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::AddrOf(Box::new(e)),
                    line,
                })
            }
            Tok::Kw(Kw::Sizeof) => {
                self.bump();
                self.eat_punct("(")?;
                let ty = self.typ()?;
                let ty = self.array_suffix(ty)?;
                self.eat_punct(")")?;
                Ok(Expr {
                    kind: ExprKind::Sizeof(ty),
                    line,
                })
            }
            // Cast: `( type ... )` — only when a type keyword follows `(`.
            Tok::Punct("(") => {
                if matches!(
                    self.peek2(),
                    Tok::Kw(Kw::Int | Kw::Double | Kw::Char | Kw::Bool | Kw::Void | Kw::Struct)
                ) {
                    self.bump();
                    let ty = self.typ()?;
                    self.eat_punct(")")?;
                    let e = self.unary()?;
                    return Ok(Expr {
                        kind: ExprKind::Cast(ty, Box::new(e)),
                        line,
                    });
                }
                self.postfix()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::Punct("[") => {
                    self.bump();
                    let idx = self.expr()?;
                    self.eat_punct("]")?;
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        line,
                    };
                }
                Tok::Punct(".") => {
                    self.bump();
                    let field = self.ident()?;
                    e = Expr {
                        kind: ExprKind::Field {
                            base: Box::new(e),
                            field,
                            arrow: false,
                        },
                        line,
                    };
                }
                Tok::Punct("->") => {
                    self.bump();
                    let field = self.ident()?;
                    e = Expr {
                        kind: ExprKind::Field {
                            base: Box::new(e),
                            field,
                            arrow: true,
                        },
                        line,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr {
                kind: ExprKind::IntLit(v),
                line,
            }),
            Tok::Float(v) => Ok(Expr {
                kind: ExprKind::FloatLit(v),
                line,
            }),
            Tok::Char(v) => Ok(Expr {
                kind: ExprKind::CharLit(v),
                line,
            }),
            Tok::Kw(Kw::True) => Ok(Expr {
                kind: ExprKind::BoolLit(true),
                line,
            }),
            Tok::Kw(Kw::False) => Ok(Expr {
                kind: ExprKind::BoolLit(false),
                line,
            }),
            Tok::Kw(Kw::Null) => Ok(Expr {
                kind: ExprKind::NullLit,
                line,
            }),
            Tok::Ident(name) => {
                if self.try_punct("(") {
                    let mut args = Vec::new();
                    if !self.try_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.try_punct(",") {
                                self.eat_punct(")")?;
                                break;
                            }
                        }
                    }
                    Ok(Expr {
                        kind: ExprKind::Call { name, args },
                        line,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Var(name),
                        line,
                    })
                }
            }
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse_program("int main() { return 1 + 2 * 3; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(e), _) => {
                // precedence: 1 + (2*3)
                match &e.kind {
                    ExprKind::Binary(BinOpKind::Add, _, r) => {
                        assert!(matches!(r.kind, ExprKind::Binary(BinOpKind::Mul, _, _)));
                    }
                    other => panic!("bad tree: {other:?}"),
                }
            }
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parses_structs_globals_functions() {
        let src = r#"
            struct point { double x; double y; };
            int table[100];
            double weights[3] = {1.0, 2.0, 3.0};
            int add(int a, int b) { return a + b; }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].ty, CmType::Array(Box::new(CmType::Int), 100));
        assert_eq!(p.globals[1].init.as_ref().unwrap().len(), 3);
        assert_eq!(p.funcs[0].params.len(), 2);
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i += 1) {
                    if (i % 2 == 0) { s += i; } else { continue; }
                    while (s > 100) { s -= 7; break; }
                }
                return s;
            }
        "#;
        let p = parse_program(src).unwrap();
        assert!(matches!(p.funcs[0].body[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_pointers_and_postfix() {
        let src = r#"
            struct node { int val; struct node* next; };
            int f(struct node* n, int* a) {
                return n->next->val + a[3] + (*a) + sizeof(struct node);
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.funcs[0].params[0].0,
            CmType::ptr(CmType::Struct("node".into()))
        );
    }

    #[test]
    fn parses_casts_and_logical_ops() {
        let src = "int f(double x) { return (int) x + (x > 0.0 && x < 1.0); }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn error_has_line_number() {
        let e = parse_program("int main() {\n  return @;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
