//! Differential tests for the superinstruction (fused) engine.
//!
//! Fusion is a pure host-speed optimization: for every workload, in every
//! execution mode, the fused engine must produce byte-for-byte the same
//! observable behavior as the decoded engine (and, transitively through
//! `tests/decoded_differential.rs`, the reference interpreter) — the same
//! return value and the same `PerfCounters` (instructions, cycles,
//! guard/tracking/move/TLB accounting, and the per-opcode histogram).
//! Fusion changes host nanoseconds, never simulated state.

use carat_suite::core::{CaratCompiler, CompileOptions};
use carat_suite::frontend::compile_cm;
use carat_suite::ir::Module;
use carat_suite::vm::{
    Engine, Mode, MoveDriverConfig, RunResult, SwapDriverConfig, Vm, VmConfig, VmError,
};
use carat_suite::workloads::{all_workloads, Scale};
use proptest::prelude::*;

/// Run `module` under `cfg` with the given engine.
fn run_engine(module: Module, cfg: &VmConfig, engine: Engine) -> RunResult {
    let cfg = VmConfig {
        engine,
        ..cfg.clone()
    };
    Vm::new(module, cfg).expect("load").run().expect("run")
}

/// Assert that the fused and decoded engines agree on every observable of
/// a run, and that the fused engine actually reports its fusion stats.
fn assert_identical(module: &Module, cfg: &VmConfig, what: &str) -> RunResult {
    let fus = run_engine(module.clone(), cfg, Engine::Fused);
    let dec = run_engine(module.clone(), cfg, Engine::Decoded);
    assert_eq!(fus.ret, dec.ret, "{what}: return value");
    assert_eq!(fus.counters, dec.counters, "{what}: counters");
    assert_eq!(fus.output, dec.output, "{what}: output");
    assert_eq!(fus.track_stats, dec.track_stats, "{what}: tracking stats");
    assert_eq!(fus.page_allocs, dec.page_allocs, "{what}: page allocs");
    assert_eq!(fus.page_moves, dec.page_moves, "{what}: page moves");
    assert_eq!(fus.dtlb_misses, dec.dtlb_misses, "{what}: DTLB misses");
    assert_eq!(fus.pagewalks, dec.pagewalks, "{what}: pagewalks");
    assert_eq!(
        dec.fusion.fused_pairs(),
        0,
        "{what}: decoded engine never executes superinstructions"
    );
    assert!(
        2 * fus.fusion.fused_pairs() <= fus.counters.instructions,
        "{what}: fused instructions bounded by retired instructions"
    );
    fus
}

fn compile(module: Module, options: CompileOptions) -> Module {
    CaratCompiler::new(options)
        .compile(module)
        .expect("carat compile")
        .module
}

/// Every workload, traditional paging mode (uninstrumented baseline
/// build): identical TLB/pagewalk accounting, with the VPN front cache
/// live on repeated-page accesses.
#[test]
fn all_workloads_agree_in_traditional_mode() {
    for w in all_workloads() {
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::baseline());
        let cfg = VmConfig {
            mode: Mode::Traditional,
            ..VmConfig::default()
        };
        assert_identical(&m, &cfg, &format!("{} (traditional)", w.name));
    }
}

/// Every workload, CARAT mode with full instrumentation: identical guard
/// and tracking accounting, with the guard fast-path cache and the fused
/// guard+access superinstructions live.
#[test]
fn all_workloads_agree_in_carat_mode() {
    let mut fused_anywhere = 0u64;
    for w in all_workloads() {
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::default());
        let cfg = VmConfig::default();
        let fus = assert_identical(&m, &cfg, &format!("{} (carat)", w.name));
        fused_anywhere += fus.fusion.fused_pairs();
    }
    assert!(
        fused_anywhere > 0,
        "fusion fires somewhere across the suite"
    );
}

/// Page moves exercise the world-stop machinery (register snapshot,
/// escape patching, poison handling); the fused engine must bail out of
/// pairs so the world stops on exactly the same cycle.
#[test]
fn moves_agree_across_engines() {
    for name in ["mcf", "canneal", "freqmine"] {
        let w = carat_suite::workloads::by_name(name).expect("workload");
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::default());
        let cfg = VmConfig {
            move_driver: Some(MoveDriverConfig {
                period_cycles: 15_000,
                max_moves: 40,
            }),
            ..VmConfig::default()
        };
        let fus = assert_identical(&m, &cfg, &format!("{name} (moves)"));
        assert!(fus.counters.moves > 0, "{name}: moves actually happened");
    }
}

/// Swap injection: page-outs poison addresses; guards fault the data back
/// in mid-pair (a world stop *inside* a fused guard+access component).
/// The fused engine must reproduce the identical page-in episodes.
#[test]
fn swaps_agree_across_engines() {
    for name in ["mcf", "dedup"] {
        let w = carat_suite::workloads::by_name(name).expect("workload");
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::default());
        let cfg = VmConfig {
            swap_driver: Some(SwapDriverConfig {
                period_cycles: 60_000,
                max_swaps: 10,
            }),
            ..VmConfig::default()
        };
        let fus = assert_identical(&m, &cfg, &format!("{name} (swap)"));
        assert!(
            fus.counters.swap_ins > 0 || fus.counters.swap_outs > 0,
            "{name}: swap actually happened"
        );
    }
}

/// Thread world-stops with `extra_threads > 0`: with parked threads the
/// scheduler rotates after every instruction, so fusion must split every
/// pair at the component boundary — and still agree on all counters.
#[test]
fn thread_world_stops_agree_across_engines() {
    let src = "
        int* shared;
        int work(int lo) {
            for (int i = lo; i < lo + 300; i += 1) { shared[i] = i * 7; }
            return lo;
        }
        int main() {
            shared = (int*) malloc(1200 * sizeof(int));
            int t0 = spawn(work, 0);
            int t1 = spawn(work, 300);
            int t2 = spawn(work, 600);
            int done = join(t0) + join(t1) + join(t2);
            for (int i = 900; i < 1200; i += 1) { shared[i] = i * 7; }
            int s = done * 0;
            for (int i = 0; i < 1200; i += 1) { s += shared[i]; }
            free(shared);
            return s % 1000000;
        }
    ";
    let module = compile_cm("stops", src).expect("frontend");
    let m = compile(module, CompileOptions::default());
    let cfg = VmConfig {
        move_driver: Some(MoveDriverConfig {
            period_cycles: 20_000,
            max_moves: 60,
        }),
        extra_threads: 2,
        ..VmConfig::default()
    };
    let fus = assert_identical(&m, &cfg, "threaded stops");
    assert!(fus.counters.moves > 0, "moves happened during threaded run");
}

/// The step limit must trip on exactly the same instruction: a fused pair
/// bails between components when the budget runs out, so tightening
/// `max_steps` one instruction at a time never diverges the two engines.
#[test]
fn step_limit_trips_identically() {
    let w = carat_suite::workloads::by_name("hpccg").expect("workload");
    let module = w.module(Scale::Test).expect("frontend");
    let m = compile(module, CompileOptions::default());
    for max_steps in [1, 2, 3, 17, 1_000, 10_001, 250_000] {
        let cfg = VmConfig {
            max_steps,
            ..VmConfig::default()
        };
        let outcome = |engine: Engine| -> Result<(i64, u64), String> {
            let cfg = VmConfig {
                engine,
                ..cfg.clone()
            };
            match Vm::new(m.clone(), cfg).expect("load").run() {
                Ok(r) => Ok((r.ret, r.counters.instructions)),
                Err(e) => Err(format!("{e:?}")),
            }
        };
        let fus = outcome(Engine::Fused);
        let dec = outcome(Engine::Decoded);
        assert_eq!(fus, dec, "max_steps={max_steps}");
        if max_steps < 250_000 {
            assert!(
                matches!(fus, Err(ref e) if e.contains("StepLimit")),
                "tiny budget must trip: {fus:?}"
            );
        }
    }
    let _ = VmError::StepLimit; // silence unused-import lint paths
}

/// The opcode histogram must agree — fused arms charge the tail
/// component's opcode themselves, so the histogram still covers every
/// retired instruction.
#[test]
fn opcode_mix_agrees_and_sums_to_instructions() {
    let w = carat_suite::workloads::by_name("hpccg").expect("workload");
    let module = w.module(Scale::Test).expect("frontend");
    let m = compile(module, CompileOptions::default());
    let cfg = VmConfig::default();
    let fus = run_engine(m.clone(), &cfg, Engine::Decoded);
    let dec = run_engine(m, &cfg, Engine::Fused);
    assert_eq!(fus.counters.opcode_mix, dec.counters.opcode_mix);
    assert_eq!(
        dec.counters.opcode_mix.total(),
        dec.counters.instructions,
        "histogram covers every retired instruction"
    );
}

/// Deterministically generate a small random Cm program rich in fusable
/// patterns: array loops (`PtrAdd`+`Load`/`Store`, guard+access once
/// instrumented), compare-and-branch chains (`Icmp`+`Br`), struct field
/// traffic (`FieldAddr`+access), and constant arithmetic (`Const`+`Bin`).
fn gen_program(seed: u64) -> String {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let n = 24 + (next() % 72); // array length
    let mut body = String::new();
    body.push_str(&format!("    int n = {n};\n"));
    body.push_str("    int* a = (int*) malloc(n * sizeof(int));\n");
    body.push_str("    struct pt p; p.x = 3; p.y = 4;\n");
    body.push_str("    int s = 0;\n");
    let stmts = 3 + next() % 5;
    for k in 0..stmts {
        let c = 1 + (next() % 9) as i64;
        let d = (next() % 100) as i64;
        match next() % 5 {
            0 => body.push_str(&format!(
                "    for (int i{k} = 0; i{k} < n; i{k} += 1) {{ a[i{k}] = i{k} * {c} + {d}; }}\n"
            )),
            1 => body.push_str(&format!(
                "    for (int i{k} = 0; i{k} < n; i{k} += 1) {{ s += a[i{k}] * {c}; }}\n"
            )),
            2 => body.push_str(&format!(
                "    for (int i{k} = 0; i{k} < n; i{k} += 1) {{ if (a[i{k}] > {d}) {{ s += {c}; }} else {{ s -= 1; }} }}\n"
            )),
            3 => body.push_str(&format!(
                "    p.x = p.x + {c}; p.y = p.y * {c} + p.x; s += p.y % 1000;\n"
            )),
            _ => body.push_str(&format!("    s = s * {c} + {d}; s = s % 100003;\n")),
        }
    }
    body.push_str("    free(a);\n    return (s + p.x + p.y) % 1000000;\n");
    format!("struct pt {{ int x; int y; }};\nint main() {{\n{body}}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Random-program property: fused, decoded, and reference engines
    /// agree on the result and on every counter, under both the fully
    /// instrumented CARAT build and the traditional baseline.
    #[test]
    fn random_programs_agree_across_engines(seed in 0u64..1_000_000) {
        let src = gen_program(seed);
        let module = compile_cm("prop", &src).expect("generated program compiles");
        for (opts, mode) in [
            (CompileOptions::default(), Mode::Carat),
            (CompileOptions::baseline(), Mode::Traditional),
        ] {
            let m = compile(module.clone(), opts);
            let cfg = VmConfig { mode, ..VmConfig::default() };
            let fus = run_engine(m.clone(), &cfg, Engine::Fused);
            let dec = run_engine(m.clone(), &cfg, Engine::Decoded);
            let refr = run_engine(m, &cfg, Engine::Reference);
            prop_assert_eq!(fus.ret, dec.ret, "seed {} ({:?}) ret", seed, mode);
            prop_assert_eq!(&fus.counters, &dec.counters, "seed {} ({:?}) fused vs decoded", seed, mode);
            prop_assert_eq!(&dec.counters, &refr.counters, "seed {} ({:?}) decoded vs reference", seed, mode);
            prop_assert_eq!(fus.dtlb_misses, dec.dtlb_misses, "seed {} ({:?}) dtlb", seed, mode);
            prop_assert_eq!(fus.page_allocs, dec.page_allocs, "seed {} ({:?}) allocs", seed, mode);
        }
    }
}
