//! Module verifier.
//!
//! Checks structural well-formedness plus the CARAT source restrictions
//! that the compiler must be able to rely on (paper §2.2): all control flow
//! is through structured terminators and direct calls — the IR has no
//! function-pointer type, so "no casts between function and data pointers"
//! and "no pointer arithmetic on function pointers" hold by construction;
//! this pass checks everything else.

use crate::func::{Function, ValueDef};
use crate::inst::{BlockId, Inst, ValueId};
use crate::module::{GlobalInit, Module};
use crate::types::Type;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name (empty for module-level problems).
    pub func: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.func.is_empty() {
            write!(f, "verify error: {}", self.message)
        } else {
            write!(f, "verify error in @{}: {}", self.func, self.message)
        }
    }
}

impl Error for VerifyError {}

/// Verify a whole module.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    // Globals: explicit initializers must fit the type.
    for gid in m.global_ids() {
        let g = m.global(gid);
        match &g.init {
            GlobalInit::Zero => {}
            GlobalInit::Bytes(bs) => {
                if bs.len() as u64 != g.ty.size() {
                    return Err(VerifyError {
                        func: String::new(),
                        message: format!(
                            "global @{}: byte initializer length {} != type size {}",
                            g.name,
                            bs.len(),
                            g.ty.size()
                        ),
                    });
                }
            }
            GlobalInit::I64s(ws) => {
                if (ws.len() as u64) * 8 > g.ty.size() {
                    return Err(VerifyError {
                        func: String::new(),
                        message: format!("global @{}: i64 initializer overflows type", g.name),
                    });
                }
            }
            GlobalInit::F64s(ws) => {
                if (ws.len() as u64) * 8 > g.ty.size() {
                    return Err(VerifyError {
                        func: String::new(),
                        message: format!("global @{}: f64 initializer overflows type", g.name),
                    });
                }
            }
        }
    }
    for fid in m.func_ids() {
        verify_func(m, m.func(fid))?;
    }
    Ok(())
}

fn err(f: &Function, message: impl Into<String>) -> Result<(), VerifyError> {
    Err(VerifyError {
        func: f.name.clone(),
        message: message.into(),
    })
}

/// Verify one function.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_func(m: &Module, f: &Function) -> Result<(), VerifyError> {
    if f.num_blocks() == 0 {
        return err(f, "function has no blocks");
    }
    // Gather live instruction ids (those present in some block).
    let mut placed: HashSet<ValueId> = HashSet::new();
    for b in f.block_ids() {
        for &v in &f.block(b).insts {
            if !placed.insert(v) {
                return err(f, format!("{v} appears in more than one position"));
            }
            match f.def(v) {
                ValueDef::Arg { .. } => {
                    return err(f, format!("{v} is an argument inside a block"))
                }
                ValueDef::Inst { block, .. } if *block != b => {
                    return err(f, format!("{v} recorded in wrong block"))
                }
                _ => {}
            }
        }
    }

    let preds = f.predecessors();
    for b in f.block_ids() {
        let insts = &f.block(b).insts;
        if insts.is_empty() {
            return err(f, format!("block {b} is empty"));
        }
        // Exactly one terminator and it is last.
        for (i, &v) in insts.iter().enumerate() {
            let inst = f.inst(v).expect("placed values are instructions");
            let is_last = i + 1 == insts.len();
            if inst.is_terminator() != is_last {
                return err(
                    f,
                    format!("block {b}: terminator placement wrong at position {i}"),
                );
            }
            // Phis only at the head.
            if matches!(inst, Inst::Phi { .. }) {
                let head = insts[..i]
                    .iter()
                    .all(|&w| matches!(f.inst(w), Some(Inst::Phi { .. })));
                if !head {
                    return err(f, format!("block {b}: phi not at head"));
                }
                // Incoming blocks must exactly match predecessors.
                if let Some(Inst::Phi { incomings, .. }) = f.inst(v) {
                    let inc: HashSet<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                    let actual: HashSet<BlockId> = preds[b.index()].iter().copied().collect();
                    if inc != actual {
                        return err(
                            f,
                            format!(
                                "block {b}: phi incomings {:?} do not match predecessors {:?}",
                                inc, actual
                            ),
                        );
                    }
                }
            }
            // Successor targets exist.
            for s in inst.successors() {
                if s.index() >= f.num_blocks() {
                    return err(f, format!("block {b}: branch to nonexistent {s}"));
                }
            }
            // Operands must exist and (if instructions) be placed in a block.
            for op in inst.operands() {
                if op.index() >= f.num_values() {
                    return err(f, format!("{v} uses undefined value {op}"));
                }
                match f.def(op) {
                    ValueDef::Arg { .. } => {}
                    ValueDef::Inst { .. } => {
                        if !placed.contains(&op) {
                            return err(f, format!("{v} uses unplaced instruction {op}"));
                        }
                    }
                }
            }
            type_check(m, f, v, inst)?;
        }
    }

    // Return type agreement.
    for b in f.block_ids() {
        if let Some(Inst::Ret { value }) = f.terminator(b) {
            match (value, &f.ret) {
                (None, None) => {}
                (Some(v), Some(rt)) => {
                    if let Some(vt) = f.value_type(*v) {
                        if &vt != rt {
                            return err(f, format!("ret type {vt} != declared {rt}"));
                        }
                    }
                }
                (Some(_), None) => return err(f, "ret with value in void function"),
                (None, Some(_)) => return err(f, "ret without value in non-void function"),
            }
        }
    }
    Ok(())
}

fn type_check(m: &Module, f: &Function, v: ValueId, inst: &Inst) -> Result<(), VerifyError> {
    let ty_of = |x: ValueId| f.value_type(x);
    let want = |cond: bool, msg: String| -> Result<(), VerifyError> {
        if cond {
            Ok(())
        } else {
            Err(VerifyError {
                func: f.name.clone(),
                message: msg,
            })
        }
    };
    match inst {
        Inst::Load { ty, addr } => {
            want(ty.is_scalar(), format!("{v}: load of non-scalar {ty}"))?;
            want(
                ty_of(*addr) == Some(Type::Ptr),
                format!("{v}: load address is not ptr"),
            )
        }
        Inst::Store { ty, addr, value } => {
            want(ty.is_scalar(), format!("{v}: store of non-scalar {ty}"))?;
            want(
                ty_of(*addr) == Some(Type::Ptr),
                format!("{v}: store address is not ptr"),
            )?;
            want(
                ty_of(*value).as_ref() == Some(ty),
                format!("{v}: store value type mismatch"),
            )
        }
        Inst::PtrAdd { base, index, .. } => {
            want(
                ty_of(*base) == Some(Type::Ptr),
                format!("{v}: ptradd base is not ptr"),
            )?;
            want(
                ty_of(*index) == Some(Type::I64),
                format!("{v}: ptradd index is not i64"),
            )
        }
        Inst::FieldAddr {
            base,
            struct_ty,
            field,
        } => {
            want(
                ty_of(*base) == Some(Type::Ptr),
                format!("{v}: fieldaddr base is not ptr"),
            )?;
            match struct_ty {
                Type::Struct(fs) => want(
                    (*field as usize) < fs.len(),
                    format!("{v}: field index out of range"),
                ),
                _ => err(f, format!("{v}: fieldaddr on non-struct")),
            }
        }
        Inst::Bin { op, lhs, rhs } => {
            let (lt, rt) = (ty_of(*lhs), ty_of(*rhs));
            if op.is_float() {
                want(
                    lt == Some(Type::F64) && rt == Some(Type::F64),
                    format!("{v}: float binop on non-floats"),
                )
            } else {
                want(
                    lt.as_ref().is_some_and(Type::is_int) && lt == rt,
                    format!("{v}: int binop operand mismatch ({lt:?} vs {rt:?})"),
                )
            }
        }
        Inst::Icmp { lhs, rhs, .. } => {
            let (lt, rt) = (ty_of(*lhs), ty_of(*rhs));
            let ok = lt == rt && lt.as_ref().is_some_and(|t| t.is_int() || *t == Type::Ptr);
            want(ok, format!("{v}: icmp operand mismatch"))
        }
        Inst::Fcmp { lhs, rhs, .. } => want(
            ty_of(*lhs) == Some(Type::F64) && ty_of(*rhs) == Some(Type::F64),
            format!("{v}: fcmp on non-floats"),
        ),
        Inst::Cast { kind, value, to } => {
            use crate::inst::CastKind::*;
            let from = ty_of(*value);
            let ok = match kind {
                Sext | Zext | Trunc => from.as_ref().is_some_and(Type::is_int) && to.is_int(),
                SiToFp => from.as_ref().is_some_and(Type::is_int) && *to == Type::F64,
                FpToSi => from == Some(Type::F64) && to.is_int(),
                PtrToInt => from == Some(Type::Ptr) && *to == Type::I64,
                IntToPtr => from == Some(Type::I64) && *to == Type::Ptr,
            };
            want(ok, format!("{v}: invalid cast"))
        }
        Inst::Select { cond, .. } => want(
            ty_of(*cond) == Some(Type::I1),
            format!("{v}: select condition is not i1"),
        ),
        Inst::Phi { ty, incomings } => {
            for (_, iv) in incomings {
                if let Some(t) = ty_of(*iv) {
                    if &t != ty {
                        return err(f, format!("{v}: phi incoming type {t} != {ty}"));
                    }
                }
            }
            Ok(())
        }
        Inst::Call {
            callee,
            args,
            ret_ty,
        } => {
            if callee.index() >= m.num_funcs() {
                return err(f, format!("{v}: call to nonexistent function"));
            }
            let target = m.func(*callee);
            want(
                args.len() == target.params.len(),
                format!("{v}: call arg count mismatch"),
            )?;
            for (a, p) in args.iter().zip(&target.params) {
                if let Some(at) = ty_of(*a) {
                    if &at != p {
                        return err(f, format!("{v}: call arg type {at} != param {p}"));
                    }
                }
            }
            want(
                ret_ty == &target.ret,
                format!("{v}: call return type mismatch"),
            )
        }
        Inst::CallIntrinsic { intr, args } => {
            let params = intr.param_tys();
            want(
                args.len() == params.len(),
                format!("{v}: intrinsic {} arg count mismatch", intr.name()),
            )?;
            for (a, p) in args.iter().zip(&params) {
                if let Some(at) = ty_of(*a) {
                    if &at != p {
                        return err(
                            f,
                            format!("{v}: intrinsic {} arg type {at} != {p}", intr.name()),
                        );
                    }
                }
            }
            Ok(())
        }
        Inst::Br { cond, .. } => want(
            ty_of(*cond) == Some(Type::I1),
            format!("{v}: branch condition is not i1"),
        ),
        Inst::Alloca(_)
        | Inst::Const(_)
        | Inst::Jmp { .. }
        | Inst::Ret { .. }
        | Inst::Unreachable => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, Const, Intrinsic};
    use crate::types::IntTy;

    fn ok_module() -> Module {
        let mut mb = ModuleBuilder::new("ok");
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let size = b.const_i64(64);
            let p = b.malloc(size);
            let x = b.const_i64(5);
            b.store(Type::I64, p, x);
            let y = b.load(Type::I64, p);
            b.free(p);
            b.ret(Some(y));
        }
        mb.finish()
    }

    #[test]
    fn accepts_valid_module() {
        verify_module(&ok_module()).expect("valid module verifies");
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![], None);
        let b = f.add_block("entry");
        f.append(b, Inst::Const(Const::Int(1, IntTy::I64)));
        m.add_func(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_store_type_mismatch() {
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![Type::Ptr], None);
        let b = f.add_block("entry");
        let c = f.append(b, Inst::Const(Const::F64(1.0)));
        f.append(
            b,
            Inst::Store {
                ty: Type::I64,
                addr: f.arg(0),
                value: c,
            },
        );
        f.append(b, Inst::Ret { value: None });
        m.add_func(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("store value type"), "{e}");
    }

    #[test]
    fn rejects_bad_phi_incomings() {
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![], None);
        let e0 = f.add_block("entry");
        let e1 = f.add_block("next");
        f.append(e0, Inst::Jmp { target: e1 });
        let c = f.append(e1, Inst::Const(Const::Int(0, IntTy::I64)));
        // phi claims an incoming from e1 itself, which is not a predecessor
        let bad_phi = Inst::Phi {
            ty: Type::I64,
            incomings: vec![(e1, c)],
        };
        let b1 = &mut f;
        let phi = b1.append(e1, bad_phi);
        // move phi to head
        b1.block_mut(e1).insts.retain(|&x| x != phi);
        b1.block_mut(e1).insts.insert(0, phi);
        b1.append(e1, Inst::Ret { value: None });
        m.add_func(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("phi incomings"), "{e}");
    }

    #[test]
    fn rejects_intrinsic_arity() {
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![Type::Ptr], None);
        let b = f.add_block("entry");
        f.append(
            b,
            Inst::CallIntrinsic {
                intr: Intrinsic::GuardLoad,
                args: vec![f.arg(0)],
            },
        );
        f.append(b, Inst::Ret { value: None });
        m.add_func(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("arg count"), "{e}");
    }

    #[test]
    fn rejects_int_binop_width_mismatch() {
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![], None);
        let b = f.add_block("entry");
        let a = f.append(b, Inst::Const(Const::Int(1, IntTy::I32)));
        let c = f.append(b, Inst::Const(Const::Int(1, IntTy::I64)));
        f.append(
            b,
            Inst::Bin {
                op: BinOp::Add,
                lhs: a,
                rhs: c,
            },
        );
        f.append(b, Inst::Ret { value: None });
        m.add_func(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_global_initializer_mismatch() {
        let mut m = ok_module();
        m.add_global(crate::module::Global {
            name: "g".into(),
            ty: Type::I64,
            init: GlobalInit::Bytes(vec![0; 4]),
        });
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("initializer"), "{e}");
    }
}
