//! Capsule externalization: serializing a descheduled [`TenantState`]
//! into a flat byte image and rebuilding it later.
//!
//! This is the fleet's cold-tenant path (ROADMAP: capsule
//! externalization toward very large fleets): a tenant that has not run
//! for a while is flattened into bytes and parked in the simulated swap
//! device through [`SimKernel::capsule_write`](carat_kernel::SimKernel),
//! which checksums the image. Rehydration verifies the checksum, so a
//! corrupted capsule surfaces as a typed, recoverable error — one lost
//! tenant, never a poisoned fleet.
//!
//! ## What is (and is not) in the image
//!
//! The image holds every *mutable* field of the tenant: registers,
//! frames, threads, heap and TLB bookkeeping, counters, buffered output,
//! driver cursors, RNG. Three things are deliberately excluded and must
//! be re-supplied at [`TenantState::rehydrate`] time from the host-side
//! spawn record:
//!
//! - the [`VmConfig`] (host policy, including the shared fault plan);
//! - the [`Module`] handle (shared, immutable IR);
//! - the [`DecodedProgram`] handle (shared decode cache).
//!
//! Per-frame pinned code streams are rebuilt from the program by
//! `(func, block)` under the configured engine, exactly as the
//! interpreter pins them, so execution resumes bit-identically.
//!
//! ## Determinism
//!
//! Serializing the same tenant twice yields identical bytes: the one
//! hash-ordered structure (the heap's live-block map) is sorted on the
//! way out. `Vec`/`String` capacities are recorded and restored so
//! [`TenantState::footprint_bytes`] reports the same number before and
//! after a round trip.

use crate::decode::DecodedProgram;
use crate::heap::HeapAllocator;
use crate::machine::{
    Frame, GuardFastPath, ParkedThread, StreamKind, TenantState, ThreadState, Value, VmConfig,
};
use crate::tlb::{Tlb, TranslationUnit};
use carat_ir::{BlockId, FuncId, Module, ValueId};
use carat_kernel::ProcessImage;
use carat_runtime::Perms;
use std::rc::Rc;

/// Image magic + format version. Bump on any layout change: a stale
/// capsule then fails cleanly at the header instead of misparsing.
const CAPSULE_MAGIC: u64 = 0x4341_5250_0000_0002; // "CARP" v2

/// Little-endian byte sink.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn pair(&mut self, (a, b): (u64, u64)) {
        self.u64(a);
        self.u64(b);
    }
    fn value(&mut self, v: Value) {
        match v {
            Value::I(x) => {
                self.u8(0);
                self.u64(x as u64);
            }
            Value::F(x) => {
                self.u8(1);
                self.u64(x.to_bits());
            }
            Value::P(p) => {
                self.u8(2);
                self.u64(p);
            }
            Value::Undef => self.u8(3),
        }
    }
    /// A register vector: contents plus capacity (footprint fidelity).
    fn regs(&mut self, regs: &[Value], capacity: usize) {
        self.usize(regs.len());
        self.usize(capacity);
        for &v in regs {
            self.value(v);
        }
    }
    fn frame(&mut self, f: &Frame) {
        self.u32(f.func.0);
        self.regs(&f.regs, f.regs.capacity());
        self.u32(f.block.0);
        self.usize(f.idx);
        self.bool(f.prev_block.is_some());
        self.u32(f.prev_block.map_or(0, |b| b.0));
        self.u64(f.sp_base);
        self.bool(f.ret_to.is_some());
        self.u32(f.ret_to.map_or(0, |v| v.0));
        // `f.code` is rebuilt from the program at rehydrate.
    }
    fn frames(&mut self, frames: &[Frame]) {
        self.usize(frames.len());
        for f in frames {
            self.frame(f);
        }
    }
}

/// Little-endian cursor; every read is bounds-checked so a truncated or
/// damaged image decodes to `None`, never a panic.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }
    /// A length prefix for a sequence of elements each at least
    /// `elem_bytes` wide, rejected when the remaining buffer could not
    /// possibly hold it (so a corrupt length cannot trigger a huge
    /// allocation).
    fn len(&mut self, elem_bytes: usize) -> Option<usize> {
        let n = self.usize()?;
        if n.checked_mul(elem_bytes.max(1))? > self.buf.len() - self.pos {
            return None;
        }
        Some(n)
    }
    fn pair(&mut self) -> Option<(u64, u64)> {
        Some((self.u64()?, self.u64()?))
    }
    fn value(&mut self) -> Option<Value> {
        Some(match self.u8()? {
            0 => Value::I(self.u64()? as i64),
            1 => Value::F(f64::from_bits(self.u64()?)),
            2 => Value::P(self.u64()?),
            3 => Value::Undef,
            _ => return None,
        })
    }
    fn regs(&mut self) -> Option<Vec<Value>> {
        // Min 1 byte per value: `Undef` is tag-only.
        let n = self.len(1)?;
        let cap = self.usize()?;
        if cap < n || cap > (1 << 32) {
            return None;
        }
        let mut v = Vec::with_capacity(cap);
        for _ in 0..n {
            v.push(self.value()?);
        }
        Some(v)
    }
    fn frame(&mut self, program: &DecodedProgram, stream: StreamKind) -> Option<Frame> {
        let func = FuncId(self.u32()?);
        let regs = self.regs()?;
        let block = BlockId(self.u32()?);
        let idx = self.usize()?;
        let has_prev = self.bool()?;
        let prev_raw = self.u32()?;
        let sp_base = self.u64()?;
        let has_ret = self.bool()?;
        let ret_raw = self.u32()?;
        let blk = program.funcs.get(func.index())?.blocks.get(block.index())?;
        let code = match stream {
            StreamKind::Fused => blk.fused_code.clone(),
            StreamKind::Threaded => blk.threaded_code.clone(),
            StreamKind::Plain => blk.code.clone(),
        };
        Some(Frame {
            func,
            regs,
            block,
            idx,
            prev_block: has_prev.then_some(BlockId(prev_raw)),
            sp_base,
            ret_to: has_ret.then_some(ValueId(ret_raw)),
            code,
        })
    }
    fn frames(&mut self, program: &DecodedProgram, stream: StreamKind) -> Option<Vec<Frame>> {
        let n = self.len(32)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.frame(program, stream)?);
        }
        Some(v)
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl TenantState {
    /// Flatten this tenant into a capsule image (see the module docs for
    /// the format contract). The tenant itself is untouched; callers
    /// that externalize then drop the state get a byte-exact replacement
    /// from [`TenantState::rehydrate`].
    pub fn externalize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.externalize_into(&mut out);
        out
    }

    /// [`TenantState::externalize`] into a caller-pooled buffer: `out`
    /// is cleared first and its capacity reused, so steady-state capsule
    /// churn against a fleet scratch buffer performs zero host
    /// allocations. The encoded bytes are identical to
    /// [`TenantState::externalize`]'s.
    pub fn externalize_into(&self, out: &mut Vec<u8>) {
        // Exhaustive destructure: adding a TenantState field without
        // deciding its capsule treatment is a compile error, not a
        // silently-dropped field.
        let TenantState {
            cfg: _,     // host-side (respawn spec)
            program: _, // host-side (shared decode cache)
            image,
            heap,
            tlb,
            counters,
            output,
            phi_scratch,
            rng,
            sp,
            frames,
            threads,
            cur_tid,
            parked_threads,
            block_current,
            cur_stack_base,
            access_counter,
            next_move_at,
            moves_done,
            next_swap_at,
            swaps_done,
            peak_tracking_bytes,
            guard_cache,
            last_vpn,
            fusion,
            regs_pool,
            next_rotate_at,
            bail_insts_at,
            bail_cycles_at,
            slice_limit,
            slice_cycle_limit,
        } = self;
        let mut buf = std::mem::take(out);
        buf.clear();
        buf.reserve(256 + self.footprint_bytes());
        let mut e = Enc { buf };
        e.u64(CAPSULE_MAGIC);

        // --- image (module handle excluded) ---
        e.usize(image.globals.len());
        e.usize(image.globals.capacity());
        for &g in &image.globals {
            e.u64(g);
        }
        e.pair(image.code);
        e.pair(image.stack);
        e.pair(image.heap);
        e.u64(image.initial_pages);
        e.u64(image.static_footprint);

        // --- heap allocator ---
        let (free, allocated) = heap.snapshot();
        e.usize(free.len());
        for &c in free {
            e.pair(c);
        }
        e.usize(allocated.len());
        for &b in &allocated {
            e.pair(b);
        }
        e.u64(heap.peak_bytes);
        e.u64(heap.live_bytes);

        // --- TLB ---
        let tlb_level = |e: &mut Enc, t: &Tlb| {
            let (sets, assoc, stamp) = t.snapshot();
            e.usize(sets.len());
            for set in sets {
                e.usize(set.len());
                for &entry in set {
                    e.pair(entry);
                }
            }
            e.usize(assoc);
            e.u64(stamp);
            e.u64(t.hits);
            e.u64(t.misses);
        };
        tlb_level(&mut e, &tlb.dtlb);
        tlb_level(&mut e, &tlb.stlb);
        e.u64(tlb.pagewalks);

        // --- counters (exhaustive: a new counter breaks this build) ---
        let crate::counters::PerfCounters {
            instructions,
            instrumentation_insts,
            cycles,
            loads,
            stores,
            calls,
            guards_executed,
            guard_cycles,
            guard_probes,
            guards_elided,
            guards_hoisted,
            track_events,
            track_cycles,
            translation_cycles,
            stack_expansions,
            swap_outs,
            swap_ins,
            moves,
            move_cycles,
            move_breakdown,
            opcode_mix,
        } = counters;
        for v in [
            instructions,
            instrumentation_insts,
            cycles,
            loads,
            stores,
            calls,
            guards_executed,
            guard_cycles,
            guard_probes,
            guards_elided,
            guards_hoisted,
            track_events,
            track_cycles,
            translation_cycles,
            stack_expansions,
            swap_outs,
            swap_ins,
            moves,
            move_cycles,
        ] {
            e.u64(*v);
        }
        e.u64(move_breakdown.page_expand);
        e.u64(move_breakdown.patch_gen_exec);
        e.u64(move_breakdown.register_patch);
        e.u64(move_breakdown.alloc_and_move);
        e.u64(move_breakdown.episodes);
        e.usize(opcode_mix.0.len());
        for &n in &opcode_mix.0 {
            e.u64(n);
        }

        // --- buffered output ---
        e.usize(output.len());
        for s in output {
            e.usize(s.len());
            e.usize(s.capacity());
            e.buf.extend_from_slice(s.as_bytes());
        }

        // --- interpreter state ---
        e.regs(phi_scratch, phi_scratch.capacity());
        e.u64(*rng);
        e.u64(*sp);
        e.frames(frames);
        e.usize(threads.len());
        for t in threads {
            match t {
                ThreadState::Current => e.u8(0),
                ThreadState::Parked(p) => {
                    e.u8(1);
                    e.frames(&p.frames);
                    e.u64(p.sp);
                    e.u64(p.stack_base);
                }
                ThreadState::Done(ret) => {
                    e.u8(2);
                    e.u64(*ret as u64);
                }
            }
        }
        e.usize(*cur_tid);
        e.usize(*parked_threads);
        e.bool(*block_current);
        e.u64(*cur_stack_base);
        e.u64(*access_counter);
        e.u64(*next_move_at);
        e.u64(*moves_done);
        e.u64(*next_swap_at);
        e.u64(*swaps_done);
        e.usize(*peak_tracking_bytes);

        // --- caches (serialized verbatim: the guard cache generation
        // self-invalidates against the freshly installed region table,
        // and carrying it preserves counter identity with a tenant that
        // was never externalized) ---
        e.u64(guard_cache.generation);
        e.u64(guard_cache.start);
        e.u64(guard_cache.end);
        e.bool(guard_cache.perms.read);
        e.bool(guard_cache.perms.write);
        e.u64(guard_cache.probes);
        e.u64(*last_vpn);

        e.usize(fusion.executed.len());
        for &n in &fusion.executed {
            e.u64(n);
        }
        e.usize(regs_pool.len());
        for r in regs_pool {
            e.regs(r, r.capacity());
        }
        e.u64(*next_rotate_at);
        e.u64(*bail_insts_at);
        e.u64(*bail_cycles_at);
        e.u64(*slice_limit);
        e.u64(*slice_cycle_limit);
        *out = e.buf;
    }

    /// Rebuild a tenant from a capsule image plus the host-side handles
    /// the image deliberately excludes. Returns `None` for any image
    /// that is truncated, misversioned, or structurally inconsistent
    /// with `program` — the caller treats that exactly like a checksum
    /// failure (respawn-from-image), so a damaged capsule can never
    /// resume as a half-restored tenant.
    pub fn rehydrate(
        bytes: &[u8],
        cfg: VmConfig,
        module: Rc<Module>,
        program: Rc<DecodedProgram>,
    ) -> Option<TenantState> {
        let mut d = Dec { buf: bytes, pos: 0 };
        if d.u64()? != CAPSULE_MAGIC {
            return None;
        }
        let stream = cfg.engine.stream();

        // --- image ---
        let nglobals = d.len(8)?;
        let gcap = d.usize()?;
        if gcap < nglobals || gcap > (1 << 32) {
            return None;
        }
        let mut globals = Vec::with_capacity(gcap);
        for _ in 0..nglobals {
            globals.push(d.u64()?);
        }
        let image = ProcessImage {
            module,
            globals,
            code: d.pair()?,
            stack: d.pair()?,
            heap: d.pair()?,
            initial_pages: d.u64()?,
            static_footprint: d.u64()?,
        };

        // --- heap allocator ---
        let nfree = d.len(16)?;
        let mut free = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            free.push(d.pair()?);
        }
        let nalloc = d.len(16)?;
        let mut allocated = Vec::with_capacity(nalloc);
        for _ in 0..nalloc {
            allocated.push(d.pair()?);
        }
        let peak_bytes = d.u64()?;
        let live_bytes = d.u64()?;
        let heap = HeapAllocator::restore(free, allocated, peak_bytes, live_bytes);

        // --- TLB ---
        let tlb_level = |d: &mut Dec| -> Option<Tlb> {
            let nsets = d.len(8)?;
            let mut sets = Vec::with_capacity(nsets);
            for _ in 0..nsets {
                let n = d.len(16)?;
                let mut set = Vec::with_capacity(n);
                for _ in 0..n {
                    set.push(d.pair()?);
                }
                sets.push(set);
            }
            if sets.is_empty() {
                return None;
            }
            let assoc = d.usize()?;
            let stamp = d.u64()?;
            let hits = d.u64()?;
            let misses = d.u64()?;
            Some(Tlb::restore(sets, assoc, stamp, hits, misses))
        };
        let dtlb = tlb_level(&mut d)?;
        let stlb = tlb_level(&mut d)?;
        let tlb = TranslationUnit {
            dtlb,
            stlb,
            pagewalks: d.u64()?,
        };

        // --- counters ---
        let mut counters = crate::counters::PerfCounters::default();
        {
            let c = &mut counters;
            for field in [
                &mut c.instructions,
                &mut c.instrumentation_insts,
                &mut c.cycles,
                &mut c.loads,
                &mut c.stores,
                &mut c.calls,
                &mut c.guards_executed,
                &mut c.guard_cycles,
                &mut c.guard_probes,
                &mut c.guards_elided,
                &mut c.guards_hoisted,
                &mut c.track_events,
                &mut c.track_cycles,
                &mut c.translation_cycles,
                &mut c.stack_expansions,
                &mut c.swap_outs,
                &mut c.swap_ins,
                &mut c.moves,
                &mut c.move_cycles,
            ] {
                *field = d.u64()?;
            }
            c.move_breakdown.page_expand = d.u64()?;
            c.move_breakdown.patch_gen_exec = d.u64()?;
            c.move_breakdown.register_patch = d.u64()?;
            c.move_breakdown.alloc_and_move = d.u64()?;
            c.move_breakdown.episodes = d.u64()?;
            let nops = d.len(8)?;
            if nops != c.opcode_mix.0.len() {
                return None;
            }
            for slot in c.opcode_mix.0.iter_mut() {
                *slot = d.u64()?;
            }
        }

        // --- buffered output ---
        let nout = d.len(16)?;
        let mut output = Vec::with_capacity(nout);
        for _ in 0..nout {
            let len = d.len(1)?;
            let cap = d.usize()?;
            if cap < len || cap > (1 << 32) {
                return None;
            }
            let mut s = String::with_capacity(cap);
            s.push_str(std::str::from_utf8(d.take(len)?).ok()?);
            output.push(s);
        }

        // --- interpreter state ---
        let phi_scratch = d.regs()?;
        let rng = d.u64()?;
        let sp = d.u64()?;
        let frames = d.frames(&program, stream)?;
        let nthreads = d.len(1)?;
        let mut threads = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            threads.push(match d.u8()? {
                0 => ThreadState::Current,
                1 => ThreadState::Parked(ParkedThread {
                    frames: d.frames(&program, stream)?,
                    sp: d.u64()?,
                    stack_base: d.u64()?,
                }),
                2 => ThreadState::Done(d.u64()? as i64),
                _ => return None,
            });
        }
        let cur_tid = d.usize()?;
        let parked_threads = d.usize()?;
        let block_current = d.bool()?;
        let cur_stack_base = d.u64()?;
        let access_counter = d.u64()?;
        let next_move_at = d.u64()?;
        let moves_done = d.u64()?;
        let next_swap_at = d.u64()?;
        let swaps_done = d.u64()?;
        let peak_tracking_bytes = d.usize()?;

        let guard_cache = GuardFastPath {
            generation: d.u64()?,
            start: d.u64()?,
            end: d.u64()?,
            perms: Perms {
                read: d.bool()?,
                write: d.bool()?,
            },
            probes: d.u64()?,
        };
        let last_vpn = d.u64()?;

        let nfused = d.len(8)?;
        let mut fusion = crate::decode::FusionStats::default();
        if nfused != fusion.executed.len() {
            return None;
        }
        for slot in fusion.executed.iter_mut() {
            *slot = d.u64()?;
        }
        let npool = d.len(16)?;
        let mut regs_pool = Vec::with_capacity(npool);
        for _ in 0..npool {
            regs_pool.push(d.regs()?);
        }
        let next_rotate_at = d.u64()?;
        let bail_insts_at = d.u64()?;
        let bail_cycles_at = d.u64()?;
        let slice_limit = d.u64()?;
        let slice_cycle_limit = d.u64()?;
        if !d.done() || cur_tid >= threads.len() {
            return None;
        }

        Some(TenantState {
            cfg,
            image,
            heap,
            tlb,
            counters,
            output,
            program,
            phi_scratch,
            rng,
            sp,
            frames,
            threads,
            cur_tid,
            parked_threads,
            block_current,
            cur_stack_base,
            access_counter,
            next_move_at,
            moves_done,
            next_swap_at,
            swaps_done,
            peak_tracking_bytes,
            guard_cache,
            last_vpn,
            fusion,
            regs_pool,
            next_rotate_at,
            bail_insts_at,
            bail_cycles_at,
            slice_limit,
            slice_cycle_limit,
        })
    }
}
