//! Opt 2 — guard merging.
//!
//! Two transformations, both producing [`Intrinsic::GuardRange`] checks:
//!
//! 1. **Loop range merging** (scalar evolution): a guard over
//!    `base + iv * stride` inside a canonical counted loop is replaced by a
//!    single preheader guard over the exact byte range the loop will touch,
//!    `[base + init*stride, base + last*stride + size)`.
//! 2. **Adjacent-access merging**: same-block guards over constant offsets
//!    from one base object whose extents are contiguous collapse into the
//!    earliest guard with a widened extent.

use super::{GuardClass, GuardClasses};
use carat_analysis::{
    canonical_loop_info, ensure_preheader, ptr_evolution, trace_base, AffineIndex, BaseObject, Cfg,
    ChainedAlias, DomTree, Loop, LoopForest, LoopInvariance, LoopTripInfo, PtrEvolution,
};
use carat_ir::{BinOp, BlockId, Const, Function, Inst, IntTy, Intrinsic, Pred, Type, ValueId};
use std::collections::HashSet;

/// Run guard merging on `f`. Marks merged guards in `classes`; returns the
/// number of guards folded away.
pub fn run(f: &mut Function, classes: &mut GuardClasses) -> usize {
    let mut n = merge_loop_ranges(f, classes);
    n += merge_adjacent(f, classes);
    n
}

/// The scalar-evolution driven loop merging.
fn merge_loop_ranges(f: &mut Function, classes: &mut GuardClasses) -> usize {
    let aa = ChainedAlias::for_function(f);
    let forest = {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        LoopForest::compute(f, &cfg, &dt)
    };
    let mut merged = 0;
    // Innermost-first so inner ranges land in outer bodies, where another
    // optimization round could process them further.
    let mut order: Vec<usize> = (0..forest.loops.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(forest.loops[i].depth));
    for li in order {
        let lp = forest.loops[li].clone();
        merged += merge_one_loop(f, &lp, &aa, classes);
    }
    merged
}

struct Candidate {
    guard: ValueId,
    base: ValueId,
    elem: Type,
    index: AffineIndex,
    size: u64,
    is_store: bool,
}

fn merge_one_loop(
    f: &mut Function,
    lp: &Loop,
    aa: &ChainedAlias,
    classes: &mut GuardClasses,
) -> usize {
    let inv = LoopInvariance::compute(f, lp, aa);
    let Some(trip) = canonical_loop_info(f, lp, &inv) else {
        return 0;
    };
    // The range endpoints are computed in the preheader, so everything they
    // use must be defined outside the loop.
    let outside = |v: ValueId| -> bool { f.block_of(v).map(|b| !lp.contains(b)).unwrap_or(true) };
    if !outside(trip.init) || !outside(trip.bound) {
        return 0;
    }
    let mut cands: Vec<Candidate> = Vec::new();
    for &b in &lp.blocks {
        for &v in &f.block(b).insts {
            let Some(Inst::CallIntrinsic { intr, args }) = f.inst(v) else {
                continue;
            };
            let is_store = match intr {
                Intrinsic::GuardLoad => false,
                Intrinsic::GuardStore => true,
                _ => continue,
            };
            let Some(size) = const_of(f, args[1]) else {
                continue;
            };
            match ptr_evolution(f, lp, &inv, &trip, args[0]) {
                PtrEvolution::Affine { base, elem, index } if outside(base) => {
                    cands.push(Candidate {
                        guard: v,
                        base,
                        elem,
                        index,
                        size: size as u64,
                        is_store,
                    })
                }
                _ => {}
            }
        }
    }
    if cands.is_empty() {
        return 0;
    }
    let ph = ensure_preheader(f, lp);
    let mut emitted: Vec<(ValueId, Type, AffineIndex, bool)> = Vec::new();
    let mut merged = 0;
    for c in cands {
        // The invariant summand of the index must be usable in the
        // preheader; hoist its invariant chain there if it lives in-loop.
        if let Some(sym) = c.index.inv {
            if f.block_of(sym).is_some_and(|b| lp.contains(b)) {
                hoist_chain_to_preheader(f, lp, ph, sym);
            }
        }
        // One range guard per distinct (base, elem, index, access kind).
        if !emitted.iter().any(|(b, e, ix, st)| {
            *b == c.base && *e == c.elem && *ix == c.index && *st == c.is_store
        }) {
            emit_range_guard(f, ph, &trip, &c);
            emitted.push((c.base, c.elem.clone(), c.index, c.is_store));
        }
        f.remove_from_block(c.guard);
        classes.mark(c.guard, GuardClass::Merged);
        merged += 1;
    }
    merged
}

/// Move the pure, loop-invariant computation `root` (and its in-loop
/// operand chain) into preheader `ph`, before its terminator.
fn hoist_chain_to_preheader(f: &mut Function, lp: &Loop, ph: BlockId, root: ValueId) {
    fn visit(f: &mut Function, lp: &Loop, ph: BlockId, v: ValueId, seen: &mut HashSet<ValueId>) {
        if !seen.insert(v) {
            return;
        }
        let in_loop = f.block_of(v).is_some_and(|b| lp.contains(b));
        if !in_loop {
            return;
        }
        let ops = f.inst(v).map(|i| i.operands()).unwrap_or_default();
        for op in ops {
            visit(f, lp, ph, op, seen);
        }
        let pos = f.block(ph).insts.len().saturating_sub(1);
        f.move_inst(v, ph, pos);
    }
    let mut seen = HashSet::new();
    visit(f, lp, ph, root, &mut seen);
}

/// Emit, in preheader `ph` (before its terminator), the range guard
/// `carat.guard.range(base + idx(init)*stride, base + idx(last)*stride + size)`
/// where `idx(iv) = coeff*iv + inv + offset` — covering every address the
/// loop touches through this access.
fn emit_range_guard(f: &mut Function, ph: BlockId, trip: &LoopTripInfo, c: &Candidate) {
    let at = |f: &mut Function, inst: Inst| -> ValueId {
        let pos = f.block(ph).insts.len().saturating_sub(1);
        f.insert_at(ph, pos, inst)
    };
    // idx(v) = coeff*v + inv + offset, materialized in the preheader.
    let emit_idx = |f: &mut Function, v: ValueId| -> ValueId {
        let mut cur = if c.index.coeff == 1 {
            v
        } else {
            let coeff = at(f, Inst::Const(Const::Int(c.index.coeff, IntTy::I64)));
            at(
                f,
                Inst::Bin {
                    op: BinOp::Mul,
                    lhs: v,
                    rhs: coeff,
                },
            )
        };
        if let Some(sym) = c.index.inv {
            cur = at(
                f,
                Inst::Bin {
                    op: BinOp::Add,
                    lhs: cur,
                    rhs: sym,
                },
            );
        }
        if c.index.offset != 0 {
            let off = at(f, Inst::Const(Const::Int(c.index.offset, IntTy::I64)));
            cur = at(
                f,
                Inst::Bin {
                    op: BinOp::Add,
                    lhs: cur,
                    rhs: off,
                },
            );
        }
        cur
    };
    let idx_lo = emit_idx(f, trip.init);
    // last iv value = bound - 1 for `<`, bound for `<=`.
    let last_iv = match trip.bound_pred {
        Pred::Slt => {
            let one = at(f, Inst::Const(Const::Int(1, IntTy::I64)));
            at(
                f,
                Inst::Bin {
                    op: BinOp::Sub,
                    lhs: trip.bound,
                    rhs: one,
                },
            )
        }
        _ => trip.bound,
    };
    let idx_hi = emit_idx(f, last_iv);
    let lo = at(
        f,
        Inst::PtrAdd {
            base: c.base,
            index: idx_lo,
            elem: c.elem.clone(),
        },
    );
    let last_ptr = at(
        f,
        Inst::PtrAdd {
            base: c.base,
            index: idx_hi,
            elem: c.elem.clone(),
        },
    );
    let sz = at(f, Inst::Const(Const::Int(c.size as i64, IntTy::I64)));
    let hi = at(
        f,
        Inst::PtrAdd {
            base: last_ptr,
            index: sz,
            elem: Type::I8,
        },
    );
    let is_write = at(
        f,
        Inst::Const(Const::Int(i64::from(c.is_store), IntTy::I64)),
    );
    at(
        f,
        Inst::CallIntrinsic {
            intr: Intrinsic::GuardRange,
            args: vec![lo, hi, is_write],
        },
    );
}

/// Same-block merging of guards over statically adjacent extents.
fn merge_adjacent(f: &mut Function, classes: &mut GuardClasses) -> usize {
    let mut merged = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        merged += merge_adjacent_in_block(f, b, classes);
    }
    merged
}

fn merge_adjacent_in_block(f: &mut Function, b: BlockId, classes: &mut GuardClasses) -> usize {
    // Gather (position, guard, base-object, offset, size, is_store); a call
    // or free between guards stops merging across it (regions may change).
    #[derive(Clone)]
    struct G {
        v: ValueId,
        base: BaseObject,
        off: i64,
        size: i64,
        is_store: bool,
        group: usize,
    }
    let mut gs: Vec<G> = Vec::new();
    let mut group = 0usize;
    for &v in &f.block(b).insts {
        match f.inst(v) {
            Some(Inst::Call { .. }) => group += 1,
            Some(Inst::CallIntrinsic { intr, args }) => match intr {
                Intrinsic::Free => group += 1,
                Intrinsic::GuardLoad | Intrinsic::GuardStore => {
                    let (base, off) = trace_base(f, args[0]);
                    if base == BaseObject::Unknown {
                        continue;
                    }
                    let (Some(off), Some(size)) = (off, const_of(f, args[1])) else {
                        continue;
                    };
                    gs.push(G {
                        v,
                        base,
                        off,
                        size,
                        is_store: *intr == Intrinsic::GuardStore,
                        group,
                    });
                }
                _ => {}
            },
            _ => {}
        }
    }
    // Merge guard j into guard i when same base/kind/group and the extents
    // are contiguous or overlapping. The survivor (the earlier guard, so the
    // check still precedes every covered access) keeps its address and
    // widens its extent, which requires it to also be the lowest address.
    let mut removed = 0;
    let mut handled = vec![false; gs.len()];
    for i in 0..gs.len() {
        if handled[i] {
            continue;
        }
        let mut lo = gs[i].off;
        let mut hi = gs[i].off + gs[i].size;
        // Grow the span to a fixpoint over compatible later guards.
        let mut added: Vec<usize> = Vec::new();
        loop {
            let mut grew = false;
            for j in (i + 1)..gs.len() {
                if handled[j]
                    || added.contains(&j)
                    || gs[j].group != gs[i].group
                    || gs[j].base != gs[i].base
                    || gs[j].is_store != gs[i].is_store
                {
                    continue;
                }
                let (jl, jh) = (gs[j].off, gs[j].off + gs[j].size);
                if jl <= hi && jh >= lo {
                    lo = lo.min(jl);
                    hi = hi.max(jh);
                    added.push(j);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        if added.is_empty() || lo != gs[i].off {
            // Nothing to merge, or the survivor would need a new (lower)
            // base address; leave this set untouched.
            continue;
        }
        let new_len = f.insert_before(gs[i].v, Inst::Const(Const::Int(hi - lo, IntTy::I64)));
        if let Some(Inst::CallIntrinsic { args, .. }) = f.inst_mut(gs[i].v) {
            args[1] = new_len;
        }
        handled[i] = true;
        for j in added {
            handled[j] = true;
            f.remove_from_block(gs[j].v);
            classes.mark(gs[j].v, GuardClass::Merged);
            removed += 1;
        }
    }
    removed
}

fn const_of(f: &Function, v: ValueId) -> Option<i64> {
    match f.inst(v) {
        Some(Inst::Const(Const::Int(x, _))) => Some(*x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guards::{guard_ids, inject_guards, GuardConfig};
    use carat_ir::{verify_module, Module, ModuleBuilder};

    /// for (i = 0; i < n; i++) sum += a[i];
    fn streaming_loop() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I64], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h = b.block("h");
            let body = b.block("body");
            let x = b.block("x");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let s = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let ai = b.ptr_add(b.arg(0), i, Type::I64);
            let v = b.load(Type::I64, ai);
            let s2 = b.add(s, v);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.phi_add_incoming(s, body, s2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(Some(s));
        }
        mb.finish()
    }

    #[test]
    fn loop_guard_becomes_preheader_range_guard() {
        let mut m = streaming_loop();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        assert_eq!(guards.len(), 1);
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 1);
        verify_module(&m).expect("merged module verifies");
        let f = m.func(fid);
        let remaining = guard_ids(f);
        assert_eq!(remaining.len(), 1);
        let g = remaining[0];
        assert!(matches!(
            f.inst(g),
            Some(Inst::CallIntrinsic {
                intr: Intrinsic::GuardRange,
                ..
            })
        ));
        // The range guard must live outside the loop body.
        let gb = f.block_of(g).unwrap();
        assert_ne!(gb, BlockId(2), "range guard not in loop body");
        assert_eq!(classes.census().merged, 1);
    }

    /// Adjacent struct-field accesses merge into one widened guard.
    #[test]
    fn adjacent_field_guards_merge() {
        let st = Type::Struct(vec![Type::I64, Type::I64, Type::I64]);
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let p = b.alloca(st.clone());
            let f0 = b.field_addr(p, st.clone(), 0);
            let f1 = b.field_addr(p, st.clone(), 1);
            let f2 = b.field_addr(p, st.clone(), 2);
            let x0 = b.load(Type::I64, f0);
            let x1 = b.load(Type::I64, f1);
            let x2 = b.load(Type::I64, f2);
            let s1 = b.add(x0, x1);
            let s2 = b.add(s1, x2);
            b.ret(Some(s2));
        }
        let mut m = mb.finish();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        assert_eq!(guards.len(), 3);
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 2, "two of three guards absorbed");
        verify_module(&m).unwrap();
        let f = m.func(fid);
        let remaining = guard_ids(f);
        assert_eq!(remaining.len(), 1);
        // Survivor covers all 24 bytes.
        assert_eq!(crate::guards::guard_extent(f, remaining[0]), Some(24));
    }

    /// Accesses with a hole between them must not merge.
    #[test]
    fn disjoint_guards_do_not_merge() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let p = b.alloca(Type::Array(Box::new(Type::I64), 10));
            let zero = b.const_i64(0);
            let nine = b.const_i64(9);
            let p0 = b.ptr_add(p, zero, Type::I64);
            let p9 = b.ptr_add(p, nine, Type::I64);
            let a = b.load(Type::I64, p0);
            let c = b.load(Type::I64, p9);
            let s = b.add(a, c);
            b.ret(Some(s));
        }
        let mut m = mb.finish();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 0);
        assert_eq!(guard_ids(m.func(fid)).len(), 2);
    }

    /// A strided loop merges to the full strided range.
    #[test]
    fn strided_loop_merges() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I64], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h = b.block("h");
            let body = b.block("body");
            let x = b.block("x");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let four = b.const_i64(4);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let ai = b.ptr_add(b.arg(0), i, Type::F64);
            let z = b.const_f64(0.0);
            b.store(Type::F64, ai, z);
            let i2 = b.add(i, four);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(None);
        }
        let mut m = mb.finish();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 1);
        verify_module(&m).unwrap();
    }
}
