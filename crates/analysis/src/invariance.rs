//! Loop-invariance analysis.
//!
//! CARAT's Opt 1 hoists a guard when the guarded address is loop-invariant.
//! The paper notes that the default LLVM loop-invariance detection was
//! enhanced with CARAT's program-dependence analysis; our equivalent is
//! using the chained alias analysis to also classify *loads* as invariant
//! when no store (or deallocation) inside the loop may alias them.

use crate::alias::{AliasAnalysis, AliasResult, MemLoc};
use crate::loops::Loop;
use carat_ir::{Function, Inst, Intrinsic, ValueId};
use std::collections::HashSet;

/// Values proven invariant with respect to one loop.
#[derive(Debug, Clone)]
pub struct LoopInvariance {
    invariant: HashSet<ValueId>,
}

impl LoopInvariance {
    /// Compute the invariant value set for `lp` in `f`.
    ///
    /// A value is invariant when it is defined outside the loop (arguments
    /// and constants included), or is a pure instruction all of whose
    /// operands are invariant. Loads are treated as pure when nothing in
    /// the loop may write or free the loaded location (checked via `aa`).
    pub fn compute(f: &Function, lp: &Loop, aa: &dyn AliasAnalysis) -> LoopInvariance {
        // Collect in-loop stores and whether the loop has calls/frees, to
        // decide load invariance.
        let mut stores: Vec<MemLoc> = Vec::new();
        let mut has_unknown_mem_effect = false;
        for &b in &lp.blocks {
            for &v in &f.block(b).insts {
                match f.inst(v) {
                    Some(Inst::Store { ty, addr, .. }) => stores.push(MemLoc {
                        ptr: *addr,
                        size: ty.size(),
                    }),
                    Some(Inst::Call { .. }) => has_unknown_mem_effect = true,
                    Some(Inst::CallIntrinsic { intr, .. }) => {
                        if matches!(
                            intr,
                            Intrinsic::Free | Intrinsic::Memcpy | Intrinsic::Memset
                        ) {
                            has_unknown_mem_effect = true;
                        }
                    }
                    _ => {}
                }
            }
        }

        let in_loop =
            |v: ValueId| -> bool { f.block_of(v).map(|b| lp.contains(b)).unwrap_or(false) };

        let mut invariant: HashSet<ValueId> = HashSet::new();
        // Iterate to fixpoint over in-loop instructions.
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &lp.blocks {
                for &v in &f.block(b).insts {
                    if invariant.contains(&v) {
                        continue;
                    }
                    let Some(inst) = f.inst(v) else { continue };
                    let pure = match inst {
                        Inst::Const(_)
                        | Inst::Bin { .. }
                        | Inst::Icmp { .. }
                        | Inst::Fcmp { .. }
                        | Inst::Cast { .. }
                        | Inst::Select { .. }
                        | Inst::PtrAdd { .. }
                        | Inst::FieldAddr { .. } => true,
                        Inst::Load { ty, addr } => {
                            !has_unknown_mem_effect
                                && stores.iter().all(|s| {
                                    aa.alias(
                                        f,
                                        *s,
                                        MemLoc {
                                            ptr: *addr,
                                            size: ty.size(),
                                        },
                                    ) == AliasResult::No
                                })
                        }
                        _ => false,
                    };
                    if !pure {
                        continue;
                    }
                    let ok = inst
                        .operands()
                        .iter()
                        .all(|&op| !in_loop(op) || invariant.contains(&op));
                    if ok {
                        invariant.insert(v);
                        changed = true;
                    }
                }
            }
        }
        LoopInvariance { invariant }
    }

    /// Whether `v` is invariant for the analyzed loop: defined outside the
    /// loop or proven invariant inside it.
    pub fn is_invariant(&self, f: &Function, lp: &Loop, v: ValueId) -> bool {
        match f.block_of(v) {
            None => true, // argument
            Some(b) => !lp.contains(b) || self.invariant.contains(&v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::ChainedAlias;
    use crate::cfg::Cfg;
    use crate::dom::DomTree;
    use crate::loops::LoopForest;
    use carat_ir::{ModuleBuilder, Pred, Type};

    /// Loop writing a[i] while reading a fixed pointer p (param 1) and a
    /// derived in-loop invariant address.
    fn build() -> (carat_ir::Module, Vec<ValueId>) {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::Ptr, Type::I64], None);
        let mut ids = Vec::new();
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(2));
            b.br(c, body, exit);
            b.switch_to(body);
            // invariant address computation inside the loop
            let five = b.const_i64(5);
            let q = b.ptr_add(b.arg(1), five, Type::I64);
            // variant address
            let ai = b.ptr_add(b.arg(0), i, Type::I64);
            let x = b.load(Type::I64, q);
            b.store(Type::I64, ai, x);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(exit);
            b.ret(None);
            ids.extend([i, q, ai, x, i2]);
        }
        (mb.finish(), ids)
    }

    #[test]
    fn classifies_invariance() {
        let (m, ids) = build();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dt);
        assert_eq!(forest.loops.len(), 1);
        let lp = &forest.loops[0];
        let aa = ChainedAlias::new();
        let inv = LoopInvariance::compute(f, lp, &aa);
        let [i, q, ai, _x, i2] = ids[..] else {
            panic!()
        };
        assert!(!inv.is_invariant(f, lp, i), "induction variable varies");
        assert!(inv.is_invariant(f, lp, q), "arg+5 is invariant");
        assert!(!inv.is_invariant(f, lp, ai), "a[i] varies");
        assert!(!inv.is_invariant(f, lp, i2));
        assert!(inv.is_invariant(f, lp, f.arg(0)), "arguments are invariant");
    }

    #[test]
    fn load_invariance_depends_on_aliasing() {
        let (m, ids) = build();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dt);
        let lp = &forest.loops[0];
        let aa = ChainedAlias::new();
        let inv = LoopInvariance::compute(f, lp, &aa);
        let x = ids[3];
        // The loop stores through arg0-derived addresses and loads from an
        // arg1-derived address; both are arguments, which may alias, so the
        // load must NOT be invariant.
        assert!(!inv.is_invariant(f, lp, x));
    }
}
