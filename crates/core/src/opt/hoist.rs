//! Opt 1 — guard hoisting.
//!
//! A load/store guard whose address is loop-invariant is moved to the
//! loop's preheader (with its invariant operand chain), executing once per
//! loop entry instead of once per iteration. Call guards hoist out of loops
//! containing no stack allocation. The pass re-applies itself so guards
//! climb to the outermost loop possible.

use super::{GuardClass, GuardClasses};
use carat_analysis::{
    ensure_preheader, Cfg, ChainedAlias, DomTree, Loop, LoopForest, LoopInvariance,
};
use carat_ir::{Const, Function, Inst, Intrinsic, ValueId};
use std::collections::HashSet;

/// Run guard hoisting on `f` to fixpoint. Marks hoisted guards in `classes`
/// and returns the number of hoist steps performed.
pub fn run(f: &mut Function, classes: &mut GuardClasses) -> usize {
    let mut total = 0;
    // Each round hoists one loop level; depth is bounded, so iterate until
    // a round makes no progress.
    for _ in 0..32 {
        let n = run_one_round(f, classes);
        total += n;
        if n == 0 {
            break;
        }
    }
    total
}

fn run_one_round(f: &mut Function, classes: &mut GuardClasses) -> usize {
    let aa = ChainedAlias::for_function(f);
    let mut hoisted = 0;
    // Recompute loop structure each round (preheader creation adds blocks).
    let forest = {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        LoopForest::compute(f, &cfg, &dt)
    };
    // Innermost-first: deeper loops hoist into enclosing loops, which a
    // later round lifts further.
    let mut order: Vec<usize> = (0..forest.loops.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(forest.loops[i].depth));
    for li in order {
        let lp = forest.loops[li].clone();
        hoisted += hoist_loop(f, &lp, &aa, classes);
    }
    hoisted
}

fn hoist_loop(f: &mut Function, lp: &Loop, aa: &ChainedAlias, classes: &mut GuardClasses) -> usize {
    let inv = LoopInvariance::compute(f, lp, aa);
    let loop_has_alloca = lp.blocks.iter().any(|&b| {
        f.block(b)
            .insts
            .iter()
            .any(|&v| matches!(f.inst(v), Some(Inst::Alloca(_))))
    });

    // Collect hoistable guards.
    let mut candidates: Vec<ValueId> = Vec::new();
    for &b in &lp.blocks {
        for &v in &f.block(b).insts {
            let Some(Inst::CallIntrinsic { intr, args }) = f.inst(v) else {
                continue;
            };
            let ok = match intr {
                Intrinsic::GuardLoad | Intrinsic::GuardStore | Intrinsic::GuardRange => {
                    args.iter().all(|&a| inv.is_invariant(f, lp, a))
                }
                Intrinsic::GuardCall => {
                    !loop_has_alloca && args.iter().all(|&a| inv.is_invariant(f, lp, a))
                }
                _ => false,
            };
            if ok {
                candidates.push(v);
            }
        }
    }
    if candidates.is_empty() {
        return 0;
    }

    let ph = ensure_preheader(f, lp);
    let mut count = 0;
    for g in candidates {
        // Hoist the invariant operand chain first.
        let mut chain = Vec::new();
        collect_in_loop_chain(f, lp, g, &mut chain);
        // `chain` is in dependency order (operands first), excluding g.
        for &c in &chain {
            move_to_preheader(f, ph, c);
        }
        // Dedup: an equivalent guard already in the preheader replaces this
        // one entirely.
        if find_equivalent_guard(f, ph, g).is_some() {
            f.remove_from_block(g);
        } else {
            move_to_preheader(f, ph, g);
        }
        classes.mark(g, GuardClass::Hoisted);
        count += 1;
    }
    count
}

/// Collect the in-loop instructions `root` transitively depends on,
/// operands before users, excluding `root` itself.
fn collect_in_loop_chain(f: &Function, lp: &Loop, root: ValueId, out: &mut Vec<ValueId>) {
    fn visit(
        f: &Function,
        lp: &Loop,
        v: ValueId,
        seen: &mut HashSet<ValueId>,
        out: &mut Vec<ValueId>,
        is_root: bool,
    ) {
        if !seen.insert(v) {
            return;
        }
        let Some(inst) = f.inst(v) else { return };
        let in_loop = f.block_of(v).is_some_and(|b| lp.contains(b));
        if !in_loop && !is_root {
            return;
        }
        for op in inst.operands() {
            visit(f, lp, op, seen, out, false);
        }
        if !is_root && in_loop {
            out.push(v);
        }
    }
    let mut seen = HashSet::new();
    visit(f, lp, root, &mut seen, out, true);
}

/// Move `v` into the preheader, before its terminator.
fn move_to_preheader(f: &mut Function, ph: carat_ir::BlockId, v: ValueId) {
    if f.block_of(v) == Some(ph) {
        return;
    }
    let pos = f.block(ph).insts.len().saturating_sub(1); // before the jmp
    f.move_inst(v, ph, pos);
}

/// Find a guard in `ph` equivalent to `g` (same intrinsic, structurally
/// equal arguments), other than `g` itself.
fn find_equivalent_guard(f: &Function, ph: carat_ir::BlockId, g: ValueId) -> Option<ValueId> {
    let Some(Inst::CallIntrinsic { intr, args }) = f.inst(g) else {
        return None;
    };
    for &v in &f.block(ph).insts {
        if v == g {
            continue;
        }
        if let Some(Inst::CallIntrinsic { intr: i2, args: a2 }) = f.inst(v) {
            if i2 == intr
                && args.len() == a2.len()
                && args
                    .iter()
                    .zip(a2)
                    .all(|(&x, &y)| values_equivalent(f, x, y))
            {
                return Some(v);
            }
        }
    }
    None
}

/// Whether two values are trivially the same (identical id, or equal
/// constants).
fn values_equivalent(f: &Function, a: ValueId, b: ValueId) -> bool {
    if a == b {
        return true;
    }
    match (f.inst(a), f.inst(b)) {
        (Some(Inst::Const(ca)), Some(Inst::Const(cb))) => match (ca, cb) {
            (Const::Int(x, wx), Const::Int(y, wy)) => x == y && wx == wy,
            (Const::F64(x), Const::F64(y)) => x.to_bits() == y.to_bits(),
            (Const::Null, Const::Null) => true,
            (Const::GlobalAddr(x), Const::GlobalAddr(y)) => x == y,
            _ => false,
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guards::{count_guards_in, guard_ids, inject_guards, GuardConfig};
    use carat_ir::{verify_module, Module, ModuleBuilder, Pred, Type};

    /// for (i = 0; i < n; i++) { *p = *p + 1; }  -- p invariant
    fn invariant_loop() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I64], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h = b.block("h");
            let body = b.block("body");
            let x = b.block("x");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let v = b.load(Type::I64, b.arg(0));
            let v2 = b.add(v, one);
            b.store(Type::I64, b.arg(0), v2);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn hoists_invariant_guards_to_preheader() {
        let mut m = invariant_loop();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        assert_eq!(guards.len(), 2);
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert!(n >= 2, "both guards hoist (possibly across rounds): {n}");
        verify_module(&m).expect("hoisted module verifies");
        let f = m.func(fid);
        // Guards must no longer be inside the loop body (block 2).
        for g in guard_ids(f) {
            assert_ne!(f.block_of(g), Some(carat_ir::BlockId(2)));
        }
        let census = classes.census();
        assert_eq!(census.hoisted, 2);
    }

    #[test]
    fn identical_hoisted_guards_dedup() {
        let mut m = invariant_loop();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let before = count_guards_in(m.func(fid));
        let guards = guard_ids(m.func(fid));
        let mut classes = GuardClasses::with_original(&guards);
        run(m.func_mut(fid), &mut classes);
        // load guard + store guard on the same (addr, len): the pair cannot
        // fully dedup (different intrinsics), so both remain; but statically
        // we never *gain* guards.
        assert!(count_guards_in(m.func(fid)) <= before);
    }

    /// Guard on a[i] must NOT hoist (variant address).
    #[test]
    fn variant_guards_stay() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I64], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h = b.block("h");
            let body = b.block("body");
            let x = b.block("x");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let _one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let ai = b.ptr_add(b.arg(0), i, Type::I64);
            let v = b.load(Type::I64, ai);
            let i2 = b.add(i, v);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(None);
        }
        let mut m = mb.finish();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 0, "variant guard must not hoist");
        assert_eq!(classes.census().untouched, 1);
        verify_module(&m).unwrap();
    }

    /// Nested loops: invariant guard in the inner loop climbs out of BOTH.
    #[test]
    fn hoists_recursively_through_nest() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I64], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let oh = b.block("oh");
            let ih = b.block("ih");
            let ib = b.block("ib");
            let ol = b.block("ol");
            let x = b.block("x");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.jmp(oh);
            b.switch_to(oh);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let ci = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(ci, ih, x);
            b.switch_to(ih);
            let j = b.phi(Type::I64, vec![(oh, zero)]);
            let cj = b.icmp(Pred::Slt, j, b.arg(1));
            b.br(cj, ib, ol);
            b.switch_to(ib);
            let v = b.load(Type::I64, b.arg(0)); // invariant in both loops
            let j2 = b.add(j, one);
            let _ = v;
            b.phi_add_incoming(j, ib, j2);
            b.jmp(ih);
            b.switch_to(ol);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, ol, i2);
            b.jmp(oh);
            b.switch_to(x);
            b.ret(None);
        }
        let mut m = mb.finish();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        let mut classes = GuardClasses::with_original(&guards);
        run(m.func_mut(fid), &mut classes);
        verify_module(&m).expect("verifies after nested hoist");
        // The guard must end up outside every loop.
        let f = m.func(fid);
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dt);
        for g in guard_ids(f) {
            let gb = f.block_of(g).unwrap();
            for lp in &forest.loops {
                assert!(!lp.contains(gb), "guard still inside a loop");
            }
        }
    }

    use carat_analysis::{Cfg, DomTree, LoopForest};
}
