//! Multi-tenant scheduling: N CARAT processes time-sliced on one
//! simulated kernel.
//!
//! The single-process [`Vm`] owns its kernel outright. Here the real
//! kernel is shared, and a descheduled tenant is *not* a parked `Vm`: it
//! is a compact [`TenantState`] (frame stack, thread slots, counters,
//! decoded-code handle) in a slab slot, plus its allocation table checked
//! into the kernel's process table. A context switch goes through
//! [`SimKernel::proc_switch`] — which installs the incoming tenant's
//! guard-region map (CARAT) or page table (traditional) and charges the
//! modeled switch cost into kernel-side [`ProcAccounting`] — and then
//! materializes a `Vm` around the real kernel with O(1) field moves
//! ([`Vm::from_tenant`]). At slice end the `Vm` is dismantled again
//! ([`Vm::into_tenant`]). Nothing scales with fleet size: no per-tenant
//! kernel, no per-tenant decoded program (tenants spawned from one
//! shared module share one decoded copy), no whole-`SimKernel` swap.
//!
//! The accounting split is unchanged: a tenant's own counters never see
//! scheduling charges, so a time-sliced process retires exactly the
//! instruction stream and cycles a sequential run would (the
//! multi-process differential suite pins this down).
//!
//! Isolation is the paper's: in CARAT mode every access is guarded
//! against the owning process's region set, so a stray pointer into
//! another tenant surfaces as a typed [`ProtectionFault`] that kills the
//! offender and leaves every other process running — never a panic.
//! Lifecycle errors are typed too: spawning past the configured
//! [`TenantQuotas`] yields [`VmError::Admission`], and looking up a
//! killed or recycled pid yields [`TenancyError::NoSuchTenant`].

use std::fmt;
use std::rc::Rc;

use crate::counters::PerfCounters;
use crate::decode::{DecodedProgram, ThreadedOpts};
use crate::machine::{Engine, Mode, RunResult, SliceExit, TenantState, Vm, VmConfig, VmError};
use crate::supervise::{PendingRestart, Supervisor, SupervisorConfig, TenantExit, Verdict};
use carat_ir::Module;
use carat_kernel::{
    AdmissionError, ArenaStats, DmaCompletion, DmaDir, FaultPlan, KernelError, LoadError, Pid,
    PinError, ProcAccounting, ProcState, ProtectionFault, SharedId, SimKernel, TenantQuotas,
    POISON_BASE, POISON_SLOT_SPAN,
};
use carat_runtime::{AllocKind, AllocationTable, MemAccess};

/// One tenant to admit into a [`MultiVm`].
pub struct ProcSpec {
    /// Process name (workload name in the benches).
    pub name: String,
    /// Its program.
    pub module: Module,
    /// Its VM configuration (mode, engine, load sizing …).
    pub cfg: VmConfig,
}

/// The fleet's preemption source: what ends a tenant's time slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedSource {
    /// Instruction-quantum round-robin (the original scheduler): a slice
    /// ends after [`MultiVmConfig::quantum`] retired instructions. No
    /// device is involved; the "interrupt" is the VM counting.
    #[default]
    Quantum,
    /// Timer-preemptive: before each slice the scheduler arms the
    /// kernel's CLINT-style timer at `tenant_cycles +
    /// [`MultiVmConfig::timer_interval`]`, and the slice ends when the
    /// tenant's modeled cycle counter crosses that deadline. The gap
    /// between the deadline and the actual exit (deferral past
    /// signals-masked windows) is recorded by the timer device as
    /// interrupt-to-dispatch latency.
    Timer,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct MultiVmConfig {
    /// Time-slice length in retired instructions. `u64::MAX` degenerates
    /// to running each process to completion in pid order — the
    /// "sequential" arm of the differential tests, on the same kernel
    /// and the same load addresses as the sliced arm. Used by
    /// [`SchedSource::Quantum`] only.
    pub quantum: u64,
    /// Preemption source (default [`SchedSource::Quantum`], the
    /// historical behavior; `--sched timer` in the benches selects
    /// [`SchedSource::Timer`]).
    pub sched: SchedSource,
    /// Timer-slice length in modeled cycles ([`SchedSource::Timer`]
    /// only). Clamped to at least 1 when a timer slice is armed.
    pub timer_interval: u64,
    /// Physical arena of the shared kernel in bytes.
    pub kernel_mem: u64,
    /// Run a memory-pressure compaction pass every this many slices
    /// (0 disables): pick the victim process whose allocation table
    /// carries the most live escapes, and relocate its worst pages with
    /// journaled CARAT moves plus a `page_out` — all while it is
    /// descheduled, charged to its kernel-side accounting.
    pub pressure_every: u64,
    /// Compaction victims relocated per pressure pass (the batch the
    /// kernel's move planner coalesces; clamped to at least 1).
    pub pressure_batch: usize,
    /// Coalesce the pass's moves into ONE world-stop via
    /// [`SimKernel::move_pages_batch`] (default). `false` issues the same
    /// victim list as sequential per-move stops — the slower arm of the
    /// batching differential.
    pub batch_stops: bool,
    /// Host threads for the shared kernel's move engine (1 = serial);
    /// see [`SimKernel::set_move_workers`].
    pub move_workers: usize,
    /// Admission quotas for the fleet (default unlimited): spawns past
    /// the tenant-count or resident-byte ceiling fail with a typed
    /// [`VmError::Admission`] instead of exhausting the kernel arena.
    pub quotas: TenantQuotas,
    /// Supervision policy (default `None`: terminal tenant outcomes are
    /// recorded and the pid retired, exactly the pre-supervision
    /// behavior). With a policy installed, every abnormal exit goes
    /// through the [`Supervisor`]: recoverable exits are restarted with
    /// exponential backoff, unrecoverable ones (and lineages past the
    /// restart cap) are quarantined and reaped.
    pub supervisor: Option<SupervisorConfig>,
    /// Rung 3 of the degradation ladder: when a pressure pass sees
    /// frame utilization at or above this percentage, the coldest
    /// resident tenant is externalized into the checksummed capsule
    /// device. `100` effectively disables the rung (the default — the
    /// differential suites expect rungs 1–2 only).
    pub externalize_watermark: u64,
    /// Rung 4: admissions at or above this frame-utilization percentage
    /// are refused with [`AdmissionError::Backpressure`]. `101`
    /// disables the rung (the default).
    pub backpressure_watermark: u64,
    /// Private move-destination pool reserved per tenant at admission,
    /// in frames (0 disables — the default). With a pool, a tenant's
    /// CARAT move destinations are carved from its own pre-reserved
    /// frames instead of the shared buddy allocator, so fleet
    /// composition cannot perturb its relocation addresses — the
    /// strongest form of the bystander-determinism guarantee. The pool
    /// is reaped in full when the tenant dies.
    pub tenant_pool_pages: u64,
    /// Epoch-based pressure scanning: slots a pressure pass examines
    /// when choosing its externalization and compaction victims (`0` =
    /// unbounded, the pre-epoch full rescan). The scan is a clock hand
    /// over the tenant slab — each pass picks up where the last left
    /// off, so every slot is still examined once per `fleet /
    /// pressure_scan_limit` passes, but per-pass cost is bounded and
    /// independent of fleet size. Fleets no larger than the limit get
    /// exactly the full-scan victims.
    pub pressure_scan_limit: usize,
}

impl Default for MultiVmConfig {
    fn default() -> MultiVmConfig {
        MultiVmConfig {
            quantum: 4096,
            sched: SchedSource::Quantum,
            // Default matches the quantum's order of magnitude: ~4096
            // instructions at a handful of cycles each.
            timer_interval: 16_384,
            kernel_mem: 512 * 1024 * 1024,
            pressure_every: 0,
            pressure_batch: 1,
            batch_stops: true,
            move_workers: 1,
            quotas: TenantQuotas::default(),
            supervisor: None,
            externalize_watermark: 100,
            backpressure_watermark: 101,
            tenant_pool_pages: 0,
            pressure_scan_limit: 64,
        }
    }
}

/// Typed tenant-lookup failure: the pid does not name a live tenant —
/// never admitted, already killed, or its slab slot was recycled (the
/// generation tag in the pid went stale). Lookups on retired pids return
/// this; they never panic and never alias a successor tenant in the same
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenancyError {
    /// No live tenant answers to this pid.
    NoSuchTenant(Pid),
    /// The tenant is live but its execution state is externalized to
    /// the capsule device: counters and footprint are unreadable until
    /// it is next scheduled (and thus rehydrated).
    NotResident(Pid),
    /// The shared kernel (or its spare placeholder) is engaged in a
    /// tenant slice and cannot service a fleet operation right now. A
    /// host-logic invariant violation surfaced as a typed refusal —
    /// never a panic mid-fleet.
    KernelEngaged,
}

impl fmt::Display for TenancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenancyError::NoSuchTenant(pid) => write!(f, "no such tenant: {pid}"),
            TenancyError::NotResident(pid) => {
                write!(f, "tenant {pid} is externalized to the capsule device")
            }
            TenancyError::KernelEngaged => {
                write!(f, "the shared kernel is engaged in a tenant slice")
            }
        }
    }
}

impl std::error::Error for TenancyError {}

/// How one tenant ended.
///
/// One value exists per process per run, so the size skew of carrying
/// the full [`RunResult`] inline is irrelevant.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ProcOutcome {
    /// `main` returned; the full single-process result.
    Finished(RunResult),
    /// Killed by an isolation violation (the typed fault, not a panic).
    Fault(ProtectionFault),
    /// Died on another VM error (step limit, OOM, trap …).
    Error(VmError),
}

/// Final report for one tenant.
#[derive(Debug)]
pub struct ProcReport {
    /// Its pid.
    pub pid: Pid,
    /// Its name.
    pub name: String,
    /// How it ended.
    pub outcome: ProcOutcome,
    /// Kernel-side scheduling/compaction accounting.
    pub accounting: ProcAccounting,
}

/// One slab slot of the fleet: the descheduled execution state plus the
/// scheduler-side facts about the tenant. `state` is `None` while the
/// tenant is materialized as a `Vm` inside a scheduling operation, or
/// while its capsule is externalized (`external` holds the device slot).
struct Tenant {
    pid: Pid,
    name: String,
    traditional: bool,
    /// Respawn-from-image spec: the module and config this lineage was
    /// admitted with (the config's fault plan is stripped — the shared
    /// kernel plan is installed once, not re-armed per respawn).
    module: Rc<Module>,
    cfg: VmConfig,
    /// The decoded-program handle, kept host-side so an externalized
    /// capsule (which deliberately excludes it) can be rehydrated.
    program: Rc<DecodedProgram>,
    state: Option<TenantState>,
    /// Capsule-device slot while externalized.
    external: Option<u64>,
    /// Supervised restarts this lineage has consumed (carried across
    /// respawns so the circuit breaker counts the whole lineage).
    restarts: u32,
    /// Fleet slice this tenant last ran — the externalization rung's
    /// coldness metric.
    last_ran: u64,
    outcome: Option<ProcOutcome>,
}

/// N processes time-sliced on one shared simulated kernel.
pub struct MultiVm {
    /// The real kernel — parked here between slices, moved into the
    /// scheduled tenant's materialized `Vm` for the duration of its
    /// slice (public for post-run inspection, like [`Vm::kernel`]).
    pub kernel: SimKernel,
    /// ONE reusable placeholder kernel: whenever the real kernel moves
    /// into a `Vm`, this stands in at `self.kernel` so the field is never
    /// empty; it also backs pressure/shared-move materializations of
    /// descheduled tenants. `None` only inside those operations.
    spare: Option<SimKernel>,
    /// Tenant slots, indexed by `pid.index()` — the same slab indices as
    /// the kernel's process table, so both sides recycle in lock-step.
    slots: Vec<Option<Tenant>>,
    /// Decoded-program cache for [`MultiVm::spawn_shared`]: every tenant
    /// spawned from the same `Rc<Module>` shares one decoded copy.
    programs: Vec<(Rc<Module>, Option<ThreadedOpts>, Rc<DecodedProgram>)>,
    cfg: MultiVmConfig,
    /// Slices executed so far (drives the pressure cadence across
    /// [`MultiVm::run_batch`] calls).
    slices: u64,
    /// Restart/quarantine policy engine, when configured.
    supervisor: Option<Supervisor>,
    /// Final reports of tenants the supervisor reaped (restarted or
    /// quarantined) — prepended to [`MultiVm::run`]'s report list so a
    /// supervised fleet still accounts for every admission.
    retired: Vec<ProcReport>,
    /// Pooled externalization scratch: capsule images are encoded into
    /// and decoded from this one buffer, so steady-state
    /// externalize/rehydrate churn performs zero host allocations (the
    /// kernel-side arena pools the parked copies).
    scratch: Vec<u8>,
    /// Clock hand of the epoch-based externalization scan: the slab
    /// index the next pressure pass starts examining from.
    scan_hand: usize,
    /// Modeled cycles spent admitting tenants (verify + quota + stamp;
    /// fleet-level — admission predates the tenant, so there is no
    /// per-tenant accounting to charge).
    admission_cycles: u64,
    /// Modeled cycles spent scanning for pressure victims
    /// (externalization coldness + compaction escapes), and the slots
    /// those scans examined. The fleet bench's flatness gate reads
    /// these: per-slice scan cost must not grow with fleet size.
    pressure_scan_cycles: u64,
    pressure_scan_slots: u64,
}

impl MultiVm {
    /// Build a fleet over one shared kernel and admit every spec (in pid
    /// order), exactly like calling [`MultiVm::spawn`] for each.
    ///
    /// # Errors
    ///
    /// Loader failures, a module without `main`, or a quota refusal
    /// ([`VmError::Admission`]).
    pub fn new(specs: Vec<ProcSpec>, cfg: MultiVmConfig) -> Result<MultiVm, VmError> {
        let mut kernel = SimKernel::new(cfg.kernel_mem);
        kernel.set_move_workers(cfg.move_workers);
        kernel.set_quotas(cfg.quotas);
        let mut mv = MultiVm {
            kernel,
            spare: Some(SimKernel::placeholder()),
            slots: Vec::new(),
            programs: Vec::new(),
            supervisor: cfg.supervisor.map(Supervisor::new),
            retired: Vec::new(),
            cfg,
            slices: 0,
            scratch: Vec::new(),
            scan_hand: 0,
            admission_cycles: 0,
            pressure_scan_cycles: 0,
            pressure_scan_slots: 0,
        };
        for spec in specs {
            mv.spawn(spec)?;
        }
        Ok(mv)
    }

    /// Number of live tenants (admitted and not yet killed; exited
    /// tenants still count until the fleet is torn down).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no tenant is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit one tenant: load its module into the shared kernel, decode
    /// its program, register it with the kernel's process table
    /// (admission-checked against the quotas), and park it descheduled
    /// and runnable. O(program + capsule) — nothing about this scales
    /// with the number of tenants already resident.
    ///
    /// # Errors
    ///
    /// Loader failures ([`VmError::Load`]), a module without `main`, or
    /// a quota refusal ([`VmError::Admission`]). Refused spawns roll the
    /// kernel back completely — capsule frames freed, no pid burned.
    pub fn spawn(&mut self, spec: ProcSpec) -> Result<Pid, VmError> {
        let ProcSpec { name, module, cfg } = spec;
        self.admit(&name, Rc::new(module), cfg, false)
    }

    /// Admit one tenant from a shared module: every tenant spawned from
    /// the same `Rc<Module>` shares one decoded program, so a 10k-tenant
    /// fleet of one workload holds ONE decoded copy of its code. Same
    /// admission path and errors as [`MultiVm::spawn`].
    ///
    /// # Errors
    ///
    /// See [`MultiVm::spawn`].
    pub fn spawn_shared(
        &mut self,
        name: &str,
        module: Rc<Module>,
        cfg: VmConfig,
    ) -> Result<Pid, VmError> {
        self.admit(name, module, cfg, true)
    }

    /// Admit N tenants from one shared module in a single admission
    /// pass: the module is verified and measured ONCE, the backpressure
    /// gate is consulted ONCE, and each tenant is then stamped through
    /// the preverified load path. Tenant `i` is named
    /// `{name_prefix}{i}`, and its image, counters, guards, and capsule
    /// bytes are bit-identical to the tenant the `i`-th sequential
    /// [`MultiVm::spawn_shared`] call would have produced — only the
    /// modeled admission cost differs ([`MultiVm::admission_cycles`]
    /// grows by `verify + quota + n × stamp` instead of `n × (verify +
    /// quota + stamp)`).
    ///
    /// All-or-nothing: a mid-batch refusal (per-tenant kernel quota,
    /// loader OOM) kills the tenants already stamped and returns the
    /// error — the fleet is left exactly as before the call.
    ///
    /// # Errors
    ///
    /// See [`MultiVm::spawn_shared`], plus [`LoadError::Verify`] when
    /// the template module fails verification (checked here, since the
    /// per-tenant path skips it).
    pub fn spawn_batch(
        &mut self,
        name_prefix: &str,
        module: Rc<Module>,
        cfg: VmConfig,
        n: usize,
    ) -> Result<Vec<Pid>, VmError> {
        // Rung 4, consulted once for the whole batch.
        let utilization_pct = self.utilization_pct();
        if utilization_pct >= self.cfg.backpressure_watermark {
            return Err(VmError::Admission(AdmissionError::Backpressure {
                utilization_pct,
                watermark_pct: self.cfg.backpressure_watermark,
            }));
        }
        // Verify and measure the template once; every stamp below skips
        // both. `text_len` is exactly what the sequential path computes,
        // so stamped images are bit-identical to sequential ones.
        carat_ir::verify_module(&module).map_err(|e| VmError::Load(LoadError::Verify(e)))?;
        let text_len = carat_ir::print_module(&module).len() as u64;
        self.admission_cycles += self.kernel.cost.admit_verify + self.kernel.cost.admit_quota;
        let mut pids = Vec::with_capacity(n);
        for i in 0..n {
            self.admission_cycles += self.kernel.cost.admit_stamp;
            let name = format!("{name_prefix}{i}");
            match self.admit_load(&name, module.clone(), cfg.clone(), true, Some(text_len)) {
                Ok(pid) => pids.push(pid),
                Err(e) => {
                    // Unwind the partial batch: admission is
                    // all-or-nothing.
                    for pid in pids {
                        self.kill(pid);
                    }
                    return Err(e);
                }
            }
        }
        Ok(pids)
    }

    fn admit(
        &mut self,
        name: &str,
        module: Rc<Module>,
        cfg: VmConfig,
        share_program: bool,
    ) -> Result<Pid, VmError> {
        // Rung 4 of the degradation ladder: past the backpressure
        // watermark the fleet sheds load at the door — a typed refusal
        // before any frame is committed, never an allocator panic.
        let utilization_pct = self.utilization_pct();
        if utilization_pct >= self.cfg.backpressure_watermark {
            return Err(VmError::Admission(AdmissionError::Backpressure {
                utilization_pct,
                watermark_pct: self.cfg.backpressure_watermark,
            }));
        }
        // A sequential admission pays the full toll: verification,
        // quota consultation, and the capsule stamp.
        self.admission_cycles += self.kernel.cost.admit_verify
            + self.kernel.cost.admit_quota
            + self.kernel.cost.admit_stamp;
        self.admit_load(name, module, cfg, share_program, None)
    }

    /// The admission tail shared by the sequential and batch paths:
    /// everything after the backpressure gate and cost charge. With
    /// `preverified = Some(text_len)` the loader skips module
    /// verification and the text-length walk (the batch entry point did
    /// both once for the whole batch).
    fn admit_load(
        &mut self,
        name: &str,
        module: Rc<Module>,
        cfg: VmConfig,
        share_program: bool,
        preverified: Option<u64>,
    ) -> Result<Pid, VmError> {
        if let Some(plan) = cfg.fault_plan.clone() {
            self.kernel.install_fault_plan(plan);
        }
        // Mid-fleet admission (supervised respawn, churn): the loader
        // builds the newcomer's region list in the kernel's live master
        // list, so an installed incumbent must be parked first or its
        // regions would be swept into the newcomer's entry.
        self.kernel.proc_park();
        let mut table = AllocationTable::new();
        let image = match preverified {
            None => self
                .kernel
                .load_shared(module.clone(), &mut table, cfg.load)?,
            Some(text_len) => self.kernel.load_shared_preverified(
                module.clone(),
                text_len,
                &mut table,
                cfg.load,
            )?,
        };
        let pid = self.kernel.register_proc(name, image.clone())?;
        if let Err(e) = self
            .kernel
            .proc_reserve_pool(pid, self.cfg.tenant_pool_pages)
        {
            // Pool reservation is part of admission: refuse the tenant
            // whole rather than admit it with weaker isolation.
            self.kernel.proc_kill(pid);
            return Err(VmError::Kernel(e));
        }
        self.kernel.procs.checkin_table(pid, table);
        let threaded = (cfg.engine == Engine::Threaded).then_some(cfg.threaded);
        let program = if share_program {
            self.decoded(&module, threaded)
        } else {
            Rc::new(DecodedProgram::decode_with(&module, threaded))
        };
        let traditional = cfg.mode == Mode::Traditional;
        // The respawn spec keeps the admission config minus its fault
        // plan: the shared kernel plan was installed above, once — a
        // supervised respawn must not re-arm it.
        let mut spec_cfg = cfg.clone();
        spec_cfg.fault_plan = None;
        // Assemble the tenant around the spare placeholder: `start` only
        // builds host-side frame state, so the real kernel is not needed.
        let Some(spare) = self.spare.take() else {
            // Host invariant violated (the spare is away mid-slice):
            // refuse typed rather than panic with a half-admitted tenant.
            self.kernel.proc_kill(pid);
            return Err(VmError::Tenancy(TenancyError::KernelEngaged));
        };
        let mut vm = Vm::assemble(spare, AllocationTable::new(), image, cfg, program.clone());
        let started = vm.start();
        let (spare, _empty, state) = vm.into_tenant();
        self.spare = Some(spare);
        if let Err(e) = started {
            self.kernel.proc_kill(pid);
            return Err(e);
        }
        let idx = pid.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        debug_assert!(
            self.slots[idx].is_none(),
            "kernel slab and fleet slots recycle in lock-step"
        );
        self.slots[idx] = Some(Tenant {
            pid,
            name: name.to_string(),
            traditional,
            module,
            cfg: spec_cfg,
            program,
            state: Some(state),
            external: None,
            restarts: 0,
            last_ran: self.slices,
            outcome: None,
        });
        Ok(pid)
    }

    /// Look up the shared decoded program for `module`, decoding it on
    /// first sight. Cache entries die with their last tenant (pruned in
    /// [`MultiVm::kill`]).
    fn decoded(
        &mut self,
        module: &Rc<Module>,
        threaded: Option<ThreadedOpts>,
    ) -> Rc<DecodedProgram> {
        for (m, t, p) in &self.programs {
            if Rc::ptr_eq(m, module) && *t == threaded {
                return p.clone();
            }
        }
        let p = Rc::new(DecodedProgram::decode_with(module, threaded));
        self.programs.push((module.clone(), threaded, p.clone()));
        p
    }

    /// Kill tenant `pid`: retire its kernel slab slot (generation bump —
    /// every outstanding copy of the pid goes stale), free its capsule
    /// frames, and drop its descheduled state. Returns `false` for a
    /// stale pid — killing twice is a no-op, never a panic.
    pub fn kill(&mut self, pid: Pid) -> bool {
        let live = self
            .slots
            .get(pid.index())
            .and_then(|s| s.as_ref())
            .is_some_and(|t| t.pid == pid);
        if !live {
            return false;
        }
        // Reap-and-release: kernel frames and quota via `proc_kill`,
        // plus any capsule the tenant left in the device.
        if let Some(slot) = self
            .slots
            .get(pid.index())
            .and_then(|s| s.as_ref())
            .and_then(|t| t.external)
        {
            self.kernel.capsule_free(slot);
        }
        self.kernel.proc_kill(pid);
        self.slots[pid.index()] = None;
        // Drop decoded programs whose last tenant just died (the cache
        // holds the only remaining module handle).
        self.programs.retain(|(m, _, _)| Rc::strong_count(m) > 1);
        true
    }

    fn tenant(&self, pid: Pid) -> Result<&Tenant, TenancyError> {
        self.slots
            .get(pid.index())
            .and_then(|s| s.as_ref())
            .filter(|t| t.pid == pid)
            .ok_or(TenancyError::NoSuchTenant(pid))
    }

    /// The live performance counters of tenant `pid` (the differential
    /// comparison target — kernel-side scheduling charges never appear
    /// here).
    ///
    /// # Errors
    ///
    /// [`TenancyError::NoSuchTenant`] for a killed or recycled pid;
    /// [`TenancyError::NotResident`] while the tenant's capsule is
    /// externalized to the device.
    pub fn counters(&self, pid: Pid) -> Result<&PerfCounters, TenancyError> {
        let t = self.tenant(pid)?;
        t.state
            .as_ref()
            .map(|s| s.counters())
            .ok_or(TenancyError::NotResident(pid))
    }

    /// Host bytes pinned by tenant `pid` while descheduled — the fleet
    /// bench's per-tenant memory-overhead metric. Capsule bytes live in
    /// kernel physical memory and the decoded program is shared, so this
    /// is the true marginal cost of keeping one more tenant parked.
    ///
    /// # Errors
    ///
    /// [`TenancyError::NoSuchTenant`] for a killed or recycled pid;
    /// [`TenancyError::NotResident`] while the tenant's capsule is
    /// externalized to the device.
    pub fn descheduled_bytes(&self, pid: Pid) -> Result<usize, TenancyError> {
        let t = self.tenant(pid)?;
        t.state
            .as_ref()
            .map(|s| s.footprint_bytes())
            .ok_or(TenancyError::NotResident(pid))
    }

    /// The capsule image of tenant `pid` — the exact bytes
    /// [`MultiVm::externalize_tenant`] would write, serialized from the
    /// resident state without consuming it. Differential suites compare
    /// these across admission paths: two tenants whose images are
    /// byte-identical are in bit-identical execution states.
    ///
    /// # Errors
    ///
    /// [`TenancyError::NoSuchTenant`] for a killed or recycled pid;
    /// [`TenancyError::NotResident`] while the tenant's capsule is
    /// externalized to the device.
    pub fn capsule_image(&self, pid: Pid) -> Result<Vec<u8>, TenancyError> {
        let t = self.tenant(pid)?;
        t.state
            .as_ref()
            .map(TenantState::externalize)
            .ok_or(TenancyError::NotResident(pid))
    }

    /// The supervisor's decision log and tallies, when supervision is
    /// configured.
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervisor.as_ref()
    }

    /// Fleet slices executed so far.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Modeled cycles spent admitting tenants (verification, quota
    /// consultation, capsule stamping). Batch admission amortizes the
    /// verify + quota share across the batch, so this is the bench's
    /// measure of the batch-vs-sequential admission win.
    pub fn admission_cycles(&self) -> u64 {
        self.admission_cycles
    }

    /// Modeled cycles spent scanning for pressure victims, and the
    /// slots examined. Bounded per pass by
    /// [`MultiVmConfig::pressure_scan_limit`], so cycles-per-pass stays
    /// flat as the fleet grows — the bench's flatness gate reads this.
    pub fn pressure_scan_cycles(&self) -> u64 {
        self.pressure_scan_cycles
    }

    /// Slab slots examined by pressure-victim scans so far.
    pub fn pressure_scan_slots(&self) -> u64 {
        self.pressure_scan_slots
    }

    /// Pool accounting of the kernel's capsule arena (live/pooled
    /// bytes, high-water marks, alloc/reuse/reap counters) — the fleet
    /// bench's arena columns.
    pub fn arena_stats(&self) -> ArenaStats {
        self.kernel.arena_stats()
    }

    /// Current frame utilization of the shared kernel arena, in percent
    /// — the degradation ladder's pressure signal.
    pub fn utilization_pct(&self) -> u64 {
        let total = self.kernel.buddy.total_pages();
        if total == 0 {
            return 0;
        }
        (total - self.kernel.buddy.pages_free()) * 100 / total
    }

    /// Arm the shared kernel with a seeded fault plan — the chaos
    /// bench's storm installer. Replaces any plan installed at
    /// admission time.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.kernel.install_fault_plan(plan);
    }

    /// Externalize tenant `pid`: serialize its descheduled state into
    /// the kernel's checksummed capsule device and drop the resident
    /// copy (rung 3 of the degradation ladder; also callable directly).
    /// Idempotent — an already-externalized tenant returns its existing
    /// slot. Returns the device slot.
    ///
    /// # Errors
    ///
    /// [`KernelError::StaleTenant`] (as [`VmError::Kernel`]) for a dead
    /// pid, or [`KernelError::CapsuleWriteFailed`] when the device
    /// refuses the write (injected fault) — the tenant stays resident
    /// and untouched.
    pub fn externalize_tenant(&mut self, pid: Pid) -> Result<u64, VmError> {
        let idx = pid.index();
        {
            let t = self
                .slots
                .get(idx)
                .and_then(|s| s.as_ref())
                .filter(|t| t.pid == pid)
                .ok_or(VmError::Kernel(KernelError::StaleTenant { pid }))?;
            if let Some(slot) = t.external {
                return Ok(slot);
            }
        }
        // A pinned tenant's memory holds live device targets: the DMA
        // engine addresses it by physical location, so serializing the
        // tenant away while a pin is live would leave the device writing
        // into a reaped image. Refuse typed; unpin (or kill) first.
        let pinned = self.kernel.pinned_bytes_of(pid);
        if pinned > 0 {
            return Err(VmError::Pin(PinError::PinnedTenant { pid, bytes: pinned }));
        }
        let state = self.slots[idx]
            .as_mut()
            .and_then(|t| t.state.take())
            .ok_or(VmError::Kernel(KernelError::StaleTenant { pid }))?;
        // Encode into the fleet's pooled scratch buffer; the kernel
        // copies it into a pooled arena slot. Steady-state churn
        // allocates nothing on the host.
        let mut buf = std::mem::take(&mut self.scratch);
        state.externalize_into(&mut buf);
        let wrote = self.kernel.capsule_write_from(&buf);
        self.scratch = buf;
        match wrote {
            Ok(slot) => {
                if let Some(t) = self.slots[idx].as_mut() {
                    t.external = Some(slot);
                }
                if let Some(e) = self.kernel.procs.get_mut(pid) {
                    e.accounting.externalizations += 1;
                }
                Ok(slot)
            }
            Err(e) => {
                // Device refused: put the resident copy back; nothing
                // was consumed.
                if let Some(t) = self.slots[idx].as_mut() {
                    t.state = Some(state);
                }
                Err(VmError::Kernel(e))
            }
        }
    }

    /// Rehydrate tenant `pid` from the capsule device (no-op when it is
    /// already resident). Called automatically when an externalized
    /// tenant is next scheduled.
    ///
    /// # Errors
    ///
    /// [`KernelError::CapsuleCorrupt`] (as [`VmError::Kernel`]) when
    /// the image fails its checksum or no longer parses — the execution
    /// state is lost (the device consumed the slot) and the supervisor,
    /// if configured, respawns the lineage from its admission image.
    pub fn rehydrate_tenant(&mut self, pid: Pid) -> Result<(), VmError> {
        let idx = pid.index();
        let slot = {
            let t = self
                .slots
                .get(idx)
                .and_then(|s| s.as_ref())
                .filter(|t| t.pid == pid)
                .ok_or(VmError::Kernel(KernelError::StaleTenant { pid }))?;
            match t.external {
                Some(slot) => slot,
                None => return Ok(()),
            }
        };
        // The read consumes the slot whether or not it verifies; the
        // resident marker is cleared on every path below. The image is
        // copied out of its arena slot into the pooled scratch buffer —
        // no allocation on the steady-state path.
        let mut buf = std::mem::take(&mut self.scratch);
        let read = self.kernel.capsule_read_into(slot, &mut buf);
        let Some(t) = self.slots[idx].as_mut() else {
            self.scratch = buf;
            return Err(VmError::Kernel(KernelError::StaleTenant { pid }));
        };
        t.external = None;
        if let Err(e) = read {
            self.scratch = buf;
            return Err(VmError::Kernel(e));
        }
        let state =
            TenantState::rehydrate(&buf, t.cfg.clone(), t.module.clone(), t.program.clone());
        self.scratch = buf;
        match state {
            Some(state) => {
                if let Some(t) = self.slots[idx].as_mut() {
                    t.state = Some(state);
                }
                if let Some(e) = self.kernel.procs.get_mut(pid) {
                    e.accounting.rehydrations += 1;
                }
                Ok(())
            }
            None => Err(VmError::Kernel(KernelError::CapsuleCorrupt { slot })),
        }
    }

    /// Create a shared memory block of at least `len` bytes (page
    /// aligned up), mapped into no process yet.
    ///
    /// # Errors
    ///
    /// [`VmError::Kernel`] when no frames are left.
    pub fn shared_create(&mut self, len: u64) -> Result<SharedId, VmError> {
        Ok(self.kernel.shared_create(len)?)
    }

    /// Map shared block `id` into process `pid`'s region set and publish
    /// its base pointer into the storage of that process's global
    /// `global` — the block becomes a tracked allocation in the owner's
    /// table and the global's cell a registered escape, so a later
    /// kernel move of the block patches this owner's pointer too.
    ///
    /// # Errors
    ///
    /// Typed, never a panic: [`KernelError::NoSuchShared`] for a dead
    /// block id, [`KernelError::StaleTenant`] for a dead or
    /// externalized pid, and a [`VmError::Trap`] for a global index the
    /// program does not have.
    pub fn shared_map(&mut self, pid: Pid, id: SharedId, global: usize) -> Result<(), VmError> {
        let cell = self
            .tenant(pid)
            .ok()
            .and_then(|t| t.state.as_ref())
            .ok_or(VmError::Kernel(KernelError::StaleTenant { pid }))?
            .image()
            .globals
            .get(global)
            .copied()
            .ok_or_else(|| VmError::Trap(format!("shared_map: no global #{global}")))?;
        self.kernel.shared_map(pid, id)?;
        let (base, len) = {
            let s = self
                .kernel
                .procs
                .shared(id)
                .ok_or(VmError::Kernel(KernelError::NoSuchShared { id }))?;
            (s.base, s.len)
        };
        self.kernel.mem.write_uint(cell, base, 8);
        let mut table = self
            .kernel
            .procs
            .checkout_table(pid)
            .ok_or(VmError::Kernel(KernelError::StaleTenant { pid }))?;
        // Kernel-side setup, not guest instrumentation: track and resolve
        // directly against the table, charging the guest nothing.
        table.track_alloc(base, len, AllocKind::Heap);
        table.track_escape(cell);
        let mem = &self.kernel.mem;
        table.flush_escapes(|c| mem.read_u64(c));
        self.kernel.procs.checkin_table(pid, table);
        Ok(())
    }

    /// Move shared block `id` to a fresh location in one world stop:
    /// every owner's escapes, dumped registers, heap bookkeeping, and
    /// guard-region map are patched. Callable between slices (every
    /// process quiesced). Returns the new base.
    ///
    /// # Errors
    ///
    /// Transactional: a typed kernel error (frame exhaustion, injected
    /// mid-move fault …) leaves every owner byte-identical to the
    /// pre-call state and is retryable.
    pub fn move_shared(&mut self, id: SharedId) -> Result<u64, VmError> {
        let owners = {
            let s = self
                .kernel
                .procs
                .shared(id)
                .ok_or(VmError::Kernel(KernelError::NoSuchShared { id }))?;
            s.owners.clone()
        };
        // Quiesced by construction: escapes were flushed when each owner
        // was descheduled, and setup escapes were resolved eagerly. Each
        // owner is materialized briefly (O(1) field moves around the
        // spare kernel) to dump and later patch its registers.
        let mut regs: Vec<u64> = Vec::new();
        let mut spans = Vec::with_capacity(owners.len());
        let mut threads = 0usize;
        for &pid in &owners {
            let (vm, _slot) = self
                .materialize(pid)
                .map_err(|_| VmError::Kernel(KernelError::StaleTenant { pid }))?;
            let (r, map) = vm.snapshot_regs();
            spans.push((pid, regs.len(), r.len(), map));
            regs.extend(r);
            threads += vm.live_threads();
            self.park(pid, vm);
        }
        let (_world, outcome) = self.kernel.move_shared(id, &mut regs, threads)?;
        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
        for (pid, off, n, map) in &spans {
            let Ok((mut vm, _slot)) = self.materialize(*pid) else {
                // The owner list was validated above; a vanished owner
                // here means its slot was reaped mid-operation — its
                // registers no longer exist to patch.
                continue;
            };
            vm.writeback_regs(&regs[*off..*off + *n], map);
            vm.apply_relocation(outcome.moved_src, outcome.moved_len, delta);
            self.park(*pid, vm);
        }
        self.kernel
            .procs
            .shared(id)
            .map(|s| s.base)
            .ok_or(VmError::Kernel(KernelError::NoSuchShared { id }))
    }

    /// Pin shared block `id` as a DMA target on behalf of tenant `pid`:
    /// the block's whole range enters the kernel pin list (every mover
    /// refuses it with a typed error until unpinned) and the pin is
    /// charged to `pid`'s accounting, so killing the tenant reaps it.
    ///
    /// This is the CARAT pin: a registry entry, no page-table walk —
    /// see [`carat_runtime::CostModel::pin_cost_carat`].
    ///
    /// # Errors
    ///
    /// [`VmError::Pin`] — stale pid, overlap with an existing pin, or a
    /// swapped-out range; [`VmError::Kernel`] for a dead block id.
    pub fn pin_shared(&mut self, pid: Pid, id: SharedId) -> Result<(u64, u64), VmError> {
        let (base, len) = {
            let s = self
                .kernel
                .procs
                .shared(id)
                .ok_or(VmError::Kernel(KernelError::NoSuchShared { id }))?;
            (s.base, s.len)
        };
        self.kernel.pin_region_for(pid, base, len)?;
        Ok((base, len))
    }

    /// Release the pin covering shared block `id` (exact-range match).
    ///
    /// # Errors
    ///
    /// [`VmError::Pin`] when no pin matches the block's current range;
    /// [`VmError::Kernel`] for a dead block id.
    pub fn unpin_shared(&mut self, id: SharedId) -> Result<(), VmError> {
        let (base, len) = {
            let s = self
                .kernel
                .procs
                .shared(id)
                .ok_or(VmError::Kernel(KernelError::NoSuchShared { id }))?;
            (s.base, s.len)
        };
        self.kernel.unpin_region(base, len)?;
        Ok(())
    }

    /// Enqueue a DMA request on the modeled device; returns its id.
    /// The target range must already be pinned when the device services
    /// it (see [`MultiVm::dma_service`]), not at submit time — exactly
    /// the window a real device driver has to get pinning wrong, and
    /// what the chaos tests probe.
    pub fn dma_submit(&mut self, addr: u64, len: u64, dir: DmaDir) -> u64 {
        self.kernel.dev.dma.submit(addr, len, dir)
    }

    /// Service up to `max` queued DMA requests against physical memory,
    /// returning their completions (also retained on the device's
    /// completion ring). Unpinned or swapped targets complete with a
    /// typed [`carat_kernel::DmaError`]; nothing is transferred for
    /// them.
    pub fn dma_service(&mut self, max: usize) -> Vec<DmaCompletion> {
        self.kernel.dma_service(max)
    }

    /// Materialize descheduled tenant `pid` around the spare placeholder
    /// kernel and an empty table — for kernel-side work on its host
    /// state (register dumps, relocation patching) while the real kernel
    /// stays home. Pure field moves. Pair with [`MultiVm::park`].
    fn materialize(&mut self, pid: Pid) -> Result<(Vm, usize), TenancyError> {
        let idx = pid.index();
        let state = self
            .slots
            .get_mut(idx)
            .and_then(|s| s.as_mut())
            .filter(|t| t.pid == pid)
            .ok_or(TenancyError::NoSuchTenant(pid))?
            .state
            .take()
            .ok_or(TenancyError::NotResident(pid))?;
        let Some(spare) = self.spare.take() else {
            // Host invariant violated (the spare is away mid-slice):
            // restore the state and refuse typed rather than panic.
            if let Some(t) = self
                .slots
                .get_mut(idx)
                .and_then(|s| s.as_mut())
                .filter(|t| t.pid == pid)
            {
                t.state = Some(state);
            }
            return Err(TenancyError::KernelEngaged);
        };
        Ok((Vm::from_tenant(spare, AllocationTable::new(), state), idx))
    }

    /// Undo [`MultiVm::materialize`]: park the tenant state back in its
    /// slot and the spare kernel back in the scheduler. Tolerant of a
    /// slot reaped mid-operation — the state is dropped with the slot.
    fn park(&mut self, pid: Pid, vm: Vm) {
        let (spare, _empty, state) = vm.into_tenant();
        self.spare = Some(spare);
        if let Some(t) = self
            .slots
            .get_mut(pid.index())
            .and_then(|s| s.as_mut())
            .filter(|t| t.pid == pid)
        {
            t.state = Some(state);
        }
    }

    /// Run ONE time slice for tenant `pid`: context-switch the kernel's
    /// view (regions or page table — the modeled cost lands in kernel
    /// accounting), materialize the tenant around the real kernel, run
    /// up to the quantum, dismantle, and record any terminal outcome.
    fn run_one_slice(&mut self, pid: Pid) {
        self.slices += 1;
        let idx = pid.index();
        let Some(t) = self
            .slots
            .get_mut(idx)
            .and_then(|s| s.as_mut())
            .filter(|t| t.pid == pid)
        else {
            // The run queue handed us a pid whose slot was reaped
            // between slices; retire it so it is never picked again.
            self.kernel.procs.set_state(pid, ProcState::Exited(-1));
            return;
        };
        let traditional = t.traditional;
        t.last_ran = self.slices;
        // Rehydrate-on-schedule: an externalized tenant comes back from
        // the capsule device before it can run. A corrupt capsule is a
        // tenant-fatal but fleet-recoverable exit — the supervisor
        // respawns the lineage from its admission image; bystanders
        // never notice.
        if t.external.is_some() {
            if let Err(e) = self.rehydrate_tenant(pid) {
                self.kernel.procs.set_state(pid, ProcState::Exited(-1));
                self.supervise(pid, ProcOutcome::Error(e));
                return;
            }
        }
        if self.kernel.proc_switch(pid, traditional).is_err() {
            // Stale by the kernel's account: retire the fleet slot too.
            self.kernel.procs.set_state(pid, ProcState::Exited(-1));
            return;
        }
        let Some(table) = self.kernel.procs.checkout_table(pid) else {
            self.kernel.procs.set_state(pid, ProcState::Exited(-1));
            return;
        };
        let Some(state) = self.slots[idx].as_mut().and_then(|t| t.state.take()) else {
            self.kernel.procs.checkin_table(pid, table);
            self.kernel.procs.set_state(pid, ProcState::Exited(-1));
            return;
        };
        // The real kernel moves into the tenant's Vm; the spare
        // placeholder stands in at `self.kernel` for the slice.
        let Some(spare) = self.spare.take() else {
            // Host invariant violated (the spare is away): put the
            // tenant back intact and skip the slice — a lost quantum,
            // never a panic mid-fleet.
            self.kernel.procs.checkin_table(pid, table);
            if let Some(t) = self.slots[idx].as_mut() {
                t.state = Some(state);
            }
            return;
        };
        // Timer-preemptive scheduling: arm the kernel's CLINT-style
        // timer at the tenant's current modeled cycles plus the
        // interval, *before* the kernel is lent to the VM — the armed
        // comparator travels with it. The quantum path arms nothing.
        let timer_deadline = match self.cfg.sched {
            SchedSource::Quantum => None,
            SchedSource::Timer => {
                let deadline = state
                    .counters()
                    .cycles
                    .saturating_add(self.cfg.timer_interval.max(1));
                self.kernel.dev.timer.arm(deadline);
                Some(deadline)
            }
        };
        let kernel = std::mem::replace(&mut self.kernel, spare);
        let mut vm = Vm::from_tenant(kernel, table, state);
        let res = match timer_deadline {
            None => vm.run_slice(self.cfg.quantum),
            Some(deadline) => vm.run_slice_cycles(deadline),
        };
        // Fold the final result while the real kernel and table are
        // still in the VM (the flush and audit need them). This match is
        // the per-tenant fault domain: every failure mode of the slice
        // lands here as a typed value — the tenant dies alone and the
        // loop (and every bystander's counters) continues untouched.
        let done = match res {
            Ok(SliceExit::Quantum) => None,
            Ok(SliceExit::Finished(v)) => Some(ProcOutcome::Finished(vm.finish_run(v))),
            // Typed isolation violation: recorded below, after the
            // kernel is home (it owns the process table).
            Err(VmError::GuardFault { addr, len, write }) => {
                Some(ProcOutcome::Fault(ProtectionFault {
                    pid,
                    addr,
                    len,
                    write,
                }))
            }
            Err(e) => Some(ProcOutcome::Error(e)),
        };
        // Flush the slice's pending escapes (so a cross-process move
        // while descheduled sees every pointer cell), then dismantle.
        vm.flush_escapes();
        let (kernel, table, state) = vm.into_tenant();
        let end_cycles = state.counters().cycles;
        self.spare = Some(std::mem::replace(&mut self.kernel, kernel));
        self.kernel.procs.checkin_table(pid, table);
        if let Some(t) = self.slots[idx].as_mut() {
            t.state = Some(state);
        }
        // Retire the timer interrupt now that the kernel is home: a
        // quantum exit under timer scheduling *is* the dispatched
        // interrupt (latency = cycles past the deadline, the deferral
        // the tenant's masked windows imposed); any terminal outcome
        // disarms the comparator instead.
        if timer_deadline.is_some() {
            if done.is_none() {
                let latency = self.kernel.dev.timer.dispatch(end_cycles);
                if let Some(e) = self.kernel.procs.get_mut(pid) {
                    e.accounting.timer_preemptions += 1;
                    e.accounting.preempt_latency_cycles += latency;
                }
            } else {
                self.kernel.dev.timer.cancel();
            }
        }
        if let Some(outcome) = done {
            match &outcome {
                ProcOutcome::Fault(f) => {
                    self.kernel
                        .procs
                        .record_protection_fault(pid, f.addr, f.len, f.write);
                }
                ProcOutcome::Finished(rr) => {
                    self.kernel.procs.set_state(pid, ProcState::Exited(rr.ret));
                }
                ProcOutcome::Error(_) => {
                    // Dead either way; `Exited(-1)` retires the pid so
                    // the scheduler never picks it again.
                    self.kernel.procs.set_state(pid, ProcState::Exited(-1));
                }
            }
            self.supervise(pid, outcome);
        }
        if self.cfg.pressure_every != 0 && self.slices.is_multiple_of(self.cfg.pressure_every) {
            self.pressure_pass();
        }
    }

    /// Route a terminal outcome through the supervision policy.
    ///
    /// Unsupervised fleets keep the pre-supervision behavior: the
    /// outcome is recorded in the slot and the pid stays (retired) until
    /// teardown. Supervised fleets retire finished tenants the same way,
    /// but abnormal exits are judged: recoverable ones are reaped and
    /// scheduled for a backed-off respawn, unrecoverable ones (and
    /// lineages past the restart cap) are quarantined — reaped with no
    /// successor. Reaping releases frames, quota, and capsule slot, and
    /// banks the tenant's final report.
    fn supervise(&mut self, pid: Pid, outcome: ProcOutcome) {
        let slice = self.slices;
        let idx = pid.index();
        let Some(t) = self
            .slots
            .get_mut(idx)
            .and_then(|s| s.as_mut())
            .filter(|t| t.pid == pid)
        else {
            return;
        };
        let attempt = t.restarts;
        // Normal retirement: the tenant (and its full result) stays in
        // its slot for the final report, supervised or not.
        if let ProcOutcome::Finished(rr) = outcome {
            let (name, ret) = (t.name.clone(), rr.ret);
            t.outcome = Some(ProcOutcome::Finished(rr));
            if let Some(sup) = self.supervisor.as_mut() {
                sup.decide(slice, pid, &name, TenantExit::Finished(ret), attempt);
            }
            return;
        }
        let Some(sup) = self.supervisor.as_mut() else {
            t.outcome = Some(outcome);
            return;
        };
        let exit = match &outcome {
            ProcOutcome::Fault(f) => TenantExit::Fault(*f),
            ProcOutcome::Error(e) => TenantExit::classify(e),
            ProcOutcome::Finished(_) => unreachable!("handled above"),
        };
        let name = t.name.clone();
        let (module, cfg) = (t.module.clone(), t.cfg.clone());
        let verdict = sup.decide(slice, pid, &name, exit, attempt);
        if let Verdict::Restarting { due_slice, .. } = verdict {
            let event_idx = sup.events.len() - 1;
            sup.pending.push(PendingRestart {
                event_idx,
                pid,
                name: name.clone(),
                module,
                cfg,
                attempt: attempt + 1,
                due_slice,
            });
        }
        // Reap-and-release: bank the report, then free frames, quota,
        // and capsule slot.
        let accounting = self
            .kernel
            .procs
            .get(pid)
            .map(|e| e.accounting)
            .unwrap_or_default();
        self.retired.push(ProcReport {
            pid,
            name,
            outcome,
            accounting,
        });
        self.kill(pid);
    }

    /// Admit every pending respawn whose backoff has elapsed. A respawn
    /// the admission path refuses (backpressure, quota) ends its lineage
    /// with a quarantine event — degradation stays graceful even when
    /// the fleet is too full to honor a restart.
    fn drain_due_restarts(&mut self) {
        let due = match self.supervisor.as_mut() {
            Some(sup) if sup.has_pending() => sup.take_due(self.slices),
            _ => return,
        };
        for r in due {
            match self.admit(&r.name, r.module.clone(), r.cfg.clone(), true) {
                Ok(new_pid) => {
                    let slice = self.slices;
                    if let Some(t) = self.slots.get_mut(new_pid.index()).and_then(|s| s.as_mut()) {
                        t.restarts = r.attempt;
                    }
                    if let Some(sup) = self.supervisor.as_mut() {
                        if let Some(ev) = sup.events.get_mut(r.event_idx) {
                            ev.respawned_as = Some((new_pid, slice));
                        }
                    }
                }
                Err(e) => {
                    if let Some(sup) = self.supervisor.as_mut() {
                        sup.quarantines += 1;
                        sup.events.push(crate::supervise::SupervisionEvent {
                            slice: self.slices,
                            pid: r.pid,
                            name: r.name,
                            exit: TenantExit::Fatal(format!("respawn refused: {e}")),
                            verdict: Verdict::Quarantined,
                            respawned_as: None,
                        });
                    }
                }
            }
        }
    }

    /// Run up to `max_slices` time slices (run-queue order), stopping
    /// early when no tenant is runnable. Returns the slices executed —
    /// the incremental driver behind [`MultiVm::run`], and the fleet
    /// bench's probe for steady-state per-slice cost: spawn/kill between
    /// batches, then keep slicing.
    pub fn run_batch(&mut self, max_slices: u64) -> u64 {
        let mut ran = 0u64;
        while ran < max_slices {
            self.drain_due_restarts();
            if let Some(pid) = self.kernel.procs.next_runnable() {
                self.run_one_slice(pid);
            } else if self
                .supervisor
                .as_ref()
                .is_some_and(Supervisor::has_pending)
            {
                // Nothing runnable but respawns are backing off: an
                // idle tick advances fleet time toward the next due
                // slice (counted against the budget so a fleet that can
                // never respawn still terminates).
                self.slices += 1;
            } else {
                break;
            }
            ran += 1;
        }
        ran
    }

    /// Round-robin every runnable process to completion (or death) and
    /// report per-process outcomes. Infallible: every per-process error
    /// is captured in its report — an isolation violation in one tenant
    /// never stops the others. Tenants removed by [`MultiVm::kill`] are
    /// not reported; everyone else is, in slot (spawn) order.
    pub fn run(mut self) -> Vec<ProcReport> {
        self.run_batch(u64::MAX);
        self.reports()
    }

    /// The degradation ladder under memory pressure, in escalating
    /// rungs: (1) compact — relocate the victim's worst pages with
    /// journaled CARAT moves; (2) page out its most-escaped allocation;
    /// (3) past [`MultiVmConfig::externalize_watermark`], serialize the
    /// coldest resident tenant into the checksummed capsule device;
    /// rung (4), admission backpressure, lives in the admission path.
    /// Kernel work on descheduled tenants — charged to their
    /// [`ProcAccounting`], never their own counters. Recoverable kernel
    /// errors (frame exhaustion, world stops, injected faults) skip the
    /// rung; transactional guarantees keep every victim intact.
    fn pressure_pass(&mut self) {
        self.compaction_rungs();
        // Rung 3: externalize the coldest resident tenant. Best-effort
        // by design — a device refusal (injected CapsuleWrite fault)
        // leaves the tenant resident and untouched.
        if self.utilization_pct() >= self.cfg.externalize_watermark {
            if let Some(cold) = self.scan_coldest() {
                let _ = self.externalize_tenant(cold);
            }
        }
    }

    /// The externalization rung's victim pick, as an epoch scan: examine
    /// up to [`MultiVmConfig::pressure_scan_limit`] slab slots starting
    /// at the clock hand, take the coldest eligible tenant seen (least
    /// recent `last_ran`; not exited, resident, and holding no pinned
    /// DMA bytes — the device addresses pinned memory physically, and
    /// [`MultiVm::externalize_tenant`] would refuse anyway), and advance
    /// the hand past the examined window. Per-pass cost is bounded by
    /// the limit, independent of fleet size; a fleet no larger than the
    /// limit is examined in full, which is exactly the pre-epoch
    /// `coldest_resident` full rescan.
    fn scan_coldest(&mut self) -> Option<Pid> {
        let n = self.slots.len();
        if n == 0 {
            return None;
        }
        let limit = match self.cfg.pressure_scan_limit {
            0 => n,
            l => l.min(n),
        };
        let mut best: Option<(u64, Pid)> = None;
        for step in 0..limit {
            let idx = (self.scan_hand + step) % n;
            if let Some(t) = self.slots[idx].as_ref() {
                if t.outcome.is_none()
                    && t.state.is_some()
                    && self.kernel.pinned_bytes_of(t.pid) == 0
                    && best.is_none_or(|(coldest, _)| t.last_ran < coldest)
                {
                    best = Some((t.last_ran, t.pid));
                }
            }
        }
        self.scan_hand = (self.scan_hand + limit) % n;
        self.pressure_scan_slots += limit as u64;
        self.pressure_scan_cycles += limit as u64 * self.kernel.cost.pressure_scan_per_slot;
        best.map(|(_, pid)| pid)
    }

    /// Rungs 1–2: journaled compaction moves plus a page-out against
    /// the tenant carrying the most live escapes. The victim pick is
    /// bounded by the same epoch limit as the externalization scan; the
    /// run queue's rotation supplies the clock hand.
    fn compaction_rungs(&mut self) {
        let (victim, examined) = self
            .kernel
            .procs
            .pick_compaction_victim_bounded(self.cfg.pressure_scan_limit);
        self.pressure_scan_slots += examined as u64;
        self.pressure_scan_cycles += examined as u64 * self.kernel.cost.pressure_scan_per_slot;
        let Some(victim) = victim else {
            return;
        };
        // Compaction is a CARAT mechanism: moves rely on the victim's
        // tracking state and page-outs on its guards to page data back
        // in. A traditional-mode tenant has neither; leave it alone.
        let Some(traditional) = self
            .slots
            .get(victim.index())
            .and_then(|s| s.as_ref())
            .filter(|t| t.pid == victim)
            .map(|t| t.traditional)
        else {
            return;
        };
        if traditional {
            return;
        }
        // Install the victim's region map: the move retargets the live
        // master list. A stale victim skips the pass.
        if self.kernel.proc_switch(victim, traditional).is_err() {
            return;
        }
        let Some(mut table) = self.kernel.procs.checkout_table(victim) else {
            return;
        };
        let (mut moves, mut outs, mut cycles) = (0u64, 0u64, 0u64);
        // The victim's host state (registers, TLB, heap bookkeeping) is
        // patched through a brief materialization on the spare kernel;
        // the real kernel stays home and drives the moves.
        let Ok((mut vm, _idx)) = self.materialize(victim) else {
            // Externalized (or reaped) since victim selection: its host
            // state is in the capsule device, not patchable — skip.
            self.kernel.procs.checkin_table(victim, table);
            return;
        };
        let threads = vm.live_threads();
        // The move planner picks up to `pressure_batch` victim pages; the
        // batched arm coalesces them into one world-stop, the sequential
        // arm walks the same list with a stop per move.
        let victims = self
            .kernel
            .worst_pages(&table, self.cfg.pressure_batch.max(1));
        if self.cfg.batch_stops {
            if !victims.is_empty() {
                let reqs: Vec<(u64, u64)> = victims.iter().map(|&p| (p, 1)).collect();
                let (mut regs, map) = vm.snapshot_regs();
                if let Ok((world, outcomes)) = self
                    .kernel
                    .move_pages_batch(&mut table, &mut regs, &reqs, threads)
                {
                    vm.writeback_regs(&regs, &map);
                    cycles += world.cycles;
                    for outcome in &outcomes {
                        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
                        vm.apply_relocation(outcome.moved_src, outcome.moved_len, delta);
                        moves += 1;
                        cycles += outcome.cost.total();
                    }
                }
            }
        } else {
            for &page in &victims {
                let (mut regs, map) = vm.snapshot_regs();
                if let Ok((world, outcome)) = self
                    .kernel
                    .move_pages(&mut table, &mut regs, page, 1, threads)
                {
                    vm.writeback_regs(&regs, &map);
                    let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
                    vm.apply_relocation(outcome.moved_src, outcome.moved_len, delta);
                    moves += 1;
                    cycles += world.cycles + outcome.cost.total();
                }
            }
        }
        let page_size = self.kernel.cost.page_size;
        // Skip already-swapped regions and pinned DMA targets: the
        // kernel's `page_out` would refuse a pinned range with a typed
        // error anyway, but not selecting it keeps the rung useful.
        let target = table
            .snapshot()
            .into_iter()
            .filter(|&(start, len, _, _)| {
                !SimKernel::is_poison(start) && self.kernel.pinned_overlap(start, len).is_none()
            })
            .max_by_key(|&(_, _, escapes_live, _)| escapes_live)
            .map(|(start, _, _, _)| start / page_size * page_size);
        if let Some(page) = target {
            let (mut regs, map) = vm.snapshot_regs();
            if let Ok(Some((world, slot, src, len))) =
                self.kernel.page_out(&mut table, &mut regs, page, threads)
            {
                vm.writeback_regs(&regs, &map);
                let base = POISON_BASE + slot * POISON_SLOT_SPAN;
                vm.apply_relocation(src, len, base.wrapping_sub(src) as i64);
                outs += 1;
                cycles += world.cycles;
            }
        }
        self.park(victim, vm);
        self.kernel.procs.checkin_table(victim, table);
        if let Some(e) = self.kernel.procs.get_mut(victim) {
            e.accounting.pressure_moves += moves;
            e.accounting.pressure_page_outs += outs;
            e.accounting.compaction_cycles += cycles;
        }
    }

    fn reports(mut self) -> Vec<ProcReport> {
        // Supervision-reaped tenants first (they exited first), then
        // the surviving slots in spawn order.
        let mut reports = std::mem::take(&mut self.retired);
        for slot in self.slots.drain(..) {
            let Some(tenant) = slot else { continue };
            let accounting = self
                .kernel
                .procs
                .get(tenant.pid)
                .map(|e| e.accounting)
                .unwrap_or_default();
            reports.push(ProcReport {
                pid: tenant.pid,
                name: tenant.name,
                outcome: tenant.outcome.unwrap_or(ProcOutcome::Error(VmError::Trap(
                    "process never completed a slice".into(),
                ))),
                accounting,
            });
        }
        reports
    }
}
