//! # carat-frontend — the Cm language front end
//!
//! Cm is the C subset the reproduction compiles ("CARAT … can be applied
//! to most C and C++ programs"): integers, doubles, chars, bools, pointers,
//! fixed arrays, structs, functions, the usual statements and operators,
//! plus the built-ins `malloc`/`free`/`rand`/`sqrt`/`exp`/`log`/
//! `print_i64`/`print_f64`/`memcpy`/`memset`/`abort`.
//!
//! Scalar locals are promoted to SSA registers during lowering (Braun-style
//! on-the-fly SSA construction), which is what lets the CARAT guard
//! optimizations recognize loops in frontend-generated code.
//!
//! ## Example
//!
//! ```
//! use carat_frontend::compile_cm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile_cm(
//!     "demo",
//!     "int main() { int s = 0; for (int i = 0; i < 10; i += 1) { s += i; } return s; }",
//! )?;
//! assert!(module.main().is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
mod lower;
mod parser;
mod token;

pub use ast::{CmType, Program};
pub use lower::{lower_program, LowerError};
pub use parser::{parse_program, CmParseError};
pub use token::{lex, LexError};

use carat_ir::Module;
use std::error::Error;
use std::fmt;

/// Any front-end failure.
#[derive(Debug)]
pub enum CmError {
    /// Parsing failed.
    Parse(CmParseError),
    /// Type checking / lowering failed.
    Lower(LowerError),
}

impl fmt::Display for CmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmError::Parse(e) => write!(f, "{e}"),
            CmError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CmError {}

/// Compile Cm source text to an IR module.
///
/// # Errors
///
/// Returns a [`CmError`] carrying the offending source line.
pub fn compile_cm(name: &str, src: &str) -> Result<Module, CmError> {
    let prog = parse_program(src).map_err(CmError::Parse)?;
    lower_program(name, &prog).map_err(CmError::Lower)
}
