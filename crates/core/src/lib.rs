//! # carat-core — the CARAT compiler passes
//!
//! The paper's primary contribution: compile-time transformations that let
//! a program run safely in a *physical* address space with no hardware
//! address translation.
//!
//! * [`guards`] — guard injection for loads, stores, and calls (§2.2);
//! * [`tracking`] — allocation & pointer-escape tracking injection (§4.1.2);
//! * [`opt`] — the CARAT-specific guard optimizations: hoisting, merging,
//!   AC/DC redundancy elimination (§4.1.1);
//! * [`sign`] / [`sha256`] — binary signing establishing compiler→kernel
//!   trust (§2.3);
//! * [`pipeline`] — the end-to-end [`CaratCompiler`] driver.
//!
//! ## Example
//!
//! ```
//! use carat_ir::{ModuleBuilder, Type};
//! use carat_core::{CaratCompiler, CompileOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new("demo");
//! let f = mb.declare("main", vec![], Some(Type::I64));
//! {
//!     let mut b = mb.define(f);
//!     let e = b.block("entry");
//!     b.switch_to(e);
//!     let size = b.const_i64(64);
//!     let p = b.malloc(size);
//!     let x = b.load(Type::I64, p);
//!     b.free(p);
//!     b.ret(Some(x));
//! }
//! let compiled = CaratCompiler::new(CompileOptions::default()).compile(mb.finish())?;
//! assert!(compiled.census.total >= 1); // the load got a guard
//! assert!(compiled.signed.is_some());  // and the binary is signed
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod guards;
pub mod opt;
pub mod pipeline;
pub mod sha256;
pub mod sign;
pub mod tracking;

pub use guards::{count_guards, frame_size, GuardConfig, InjectionCounts};
pub use opt::{GuardCensus, GuardClass, GuardClasses};
pub use pipeline::{CaratCompiler, CompileOptions, CompiledModule, OptPreset, OptToggles};
pub use sign::{sign_module, verify_signature, SignatureError, SignedModule, SigningKey};
pub use tracking::{count_tracking, TrackingConfig, TrackingCounts};
