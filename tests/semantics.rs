//! Language/execution semantics tests: the fine-grained behaviors a C
//! programmer relies on, end-to-end through the whole stack.

use carat_suite::core::{CaratCompiler, CompileOptions};
use carat_suite::frontend::compile_cm;
use carat_suite::vm::{Vm, VmConfig, VmError};

fn eval(src: &str) -> i64 {
    let module = compile_cm("sem", src).expect("frontend");
    let compiled = CaratCompiler::new(CompileOptions::default())
        .compile(module)
        .expect("carat");
    Vm::new(compiled.module, VmConfig::default())
        .expect("load")
        .run()
        .expect("run")
        .ret
}

fn eval_err(src: &str) -> VmError {
    let module = compile_cm("sem", src).expect("frontend");
    let compiled = CaratCompiler::new(CompileOptions::default())
        .compile(module)
        .expect("carat");
    Vm::new(compiled.module, VmConfig::default())
        .expect("load")
        .run()
        .expect_err("must fail")
}

#[test]
fn integer_arithmetic_semantics() {
    assert_eq!(eval("int main() { return 7 / 2; }"), 3);
    assert_eq!(
        eval("int main() { return -7 / 2; }"),
        -3,
        "C truncates toward zero"
    );
    assert_eq!(eval("int main() { return -7 % 2; }"), -1);
    assert_eq!(eval("int main() { return 1 << 10; }"), 1024);
    assert_eq!(
        eval("int main() { return -8 >> 1; }"),
        -4,
        "arithmetic shift"
    );
    assert_eq!(
        eval("int main() { return 0x7f & 0x18 | 0x3 ^ 0x1; }"),
        0x18 | 0x2
    );
    assert_eq!(eval("int main() { return ~0; }"), -1);
}

#[test]
fn division_by_zero_traps() {
    assert!(matches!(
        eval_err("int main() { int z = 0; return 5 / z; }"),
        VmError::Trap(_)
    ));
    assert!(matches!(
        eval_err("int main() { int z = 0; return 5 % z; }"),
        VmError::Trap(_)
    ));
}

#[test]
fn char_width_and_conversions() {
    assert_eq!(eval("int main() { char c = (char) 300; return c; }"), 44);
    assert_eq!(
        eval("int main() { char c = (char) 200; return c; }"),
        -56,
        "i8 is signed"
    );
    assert_eq!(eval("int main() { char c = 'A'; return c + 1; }"), 66);
}

#[test]
fn double_semantics() {
    assert_eq!(
        eval("int main() { double x = 7.0; return (int) (x / 2.0); }"),
        3
    );
    assert_eq!(eval("int main() { return (int) (0.1 + 0.2 + 10.0); }"), 10);
    assert_eq!(
        eval("int main() { double x = 2.0; return (int) sqrt(x * 8.0); }"),
        4
    );
    // int promotes to double in mixed arithmetic
    assert_eq!(eval("int main() { int i = 3; return (int) (i * 1.5); }"), 4);
}

#[test]
fn short_circuit_evaluation() {
    // The right side of && must not run when the left is false: a guarded
    // null deref there would fault.
    let src = r#"
        int main() {
            int* p = (int*) null;
            if (p != null && *p == 5) { return 1; }
            return 0;
        }
    "#;
    assert_eq!(eval(src), 0);
    let src2 = r#"
        int touched;
        int bump() { touched += 1; return 1; }
        int main() {
            int ok = 1;
            if (ok == 1 || bump() == 1) { }
            if (ok == 0 && bump() == 1) { }
            return touched;
        }
    "#;
    assert_eq!(eval(src2), 0, "neither arm evaluated its right side");
}

#[test]
fn pointer_arithmetic_scales_by_element() {
    let src = r#"
        int main() {
            double* a = (double*) malloc(8 * sizeof(double));
            for (int i = 0; i < 8; i += 1) { a[i] = i * 1.0; }
            double* p = a + 3;
            int diff = (int) (p - a);
            int val = (int) *p;
            free(a);
            return diff * 10 + val;
        }
    "#;
    assert_eq!(eval(src), 33);
}

#[test]
fn struct_copy_through_fields_and_nesting() {
    let src = r#"
        struct inner { int a; char b; };
        struct outer { struct inner one; int xs[3]; struct inner two; };
        int main() {
            struct outer o;
            o.one.a = 5;
            o.one.b = 'x';
            o.xs[0] = 10; o.xs[1] = 20; o.xs[2] = 30;
            o.two.a = o.one.a + o.xs[2];
            return o.two.a + o.one.b;
        }
    "#;
    assert_eq!(eval(src), 35 + 120);
}

#[test]
fn recursion_and_mutual_calls() {
    // Cm has no forward declarations, so no mutual recursion; iterate
    // instead.
    let src = r#"
        int is_even(int n) {
            int k = n;
            while (k >= 2) { k -= 2; }
            return 1 - k;
        }
        int main() { return is_even(10) * 10 + (1 - is_even(7)); }
    "#;
    assert_eq!(eval(src), 11);
}

#[test]
fn globals_persist_across_calls() {
    let src = r#"
        int counter;
        int hits[4];
        void record(int k) { counter += 1; hits[k % 4] += k; }
        int main() {
            for (int i = 0; i < 10; i += 1) { record(i); }
            return counter * 1000 + hits[1];
        }
    "#;
    assert_eq!(eval(src), 10 * 1000 + (1 + 5 + 9));
}

#[test]
fn memcpy_memset_builtins() {
    let src = r#"
        int main() {
            char* a = (char*) malloc(64);
            char* b = (char*) malloc(64);
            memset(a, 7, 64);
            memcpy(b, a, 64);
            int s = 0;
            for (int i = 0; i < 64; i += 1) { s += b[i]; }
            free(a); free(b);
            return s;
        }
    "#;
    assert_eq!(eval(src), 7 * 64);
}

#[test]
fn while_and_for_with_breaks() {
    let src = r#"
        int main() {
            int s = 0;
            int i = 0;
            while (true) {
                i += 1;
                if (i % 3 == 0) { continue; }
                if (i > 10) { break; }
                s += i;
            }
            return s;
        }
    "#;
    assert_eq!(eval(src), 1 + 2 + 4 + 5 + 7 + 8 + 10);
}
