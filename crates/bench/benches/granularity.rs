//! Ablation for the paper's §6 "Allocation Granularity" future work: page
//! granularity moves (with expand negotiation) vs allocation-granularity
//! moves. The paper predicts ~95% average reduction from dropping the page
//! abstraction; this measures our engine's equivalent.

use carat_kernel::PhysicalMemory;
use carat_runtime::{
    perform_move, perform_move_alloc_granular, AllocKind, AllocationTable, CostModel, MemAccess,
    MoveRequest,
};
use criterion::{criterion_group, criterion_main, Criterion};

/// Build a page full of small allocations with escapes.
fn setup() -> (AllocationTable, PhysicalMemory) {
    let mut t = AllocationTable::new();
    let mut m = PhysicalMemory::new(64 * 1024 * 1024);
    for i in 0..120u64 {
        let a = 0x100000 + i * 32;
        t.track_alloc(a, 24, AllocKind::Heap);
        // one escape per allocation, stored in a side table
        let cell = 0x900000 + i * 8;
        m.write_u64(cell, a);
        t.track_escape(cell);
    }
    let snapshot: Vec<(u64, u64)> = (0..120u64)
        .map(|i| (0x900000 + i * 8, 0x100000 + i * 32))
        .collect();
    t.flush_escapes(|c| {
        snapshot
            .iter()
            .find(|(cell, _)| *cell == c)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    });
    (t, m)
}

fn bench(c: &mut Criterion) {
    let cost = CostModel::default();
    let mut g = c.benchmark_group("granularity");
    g.bench_function("page_move_whole_page", |b| {
        b.iter_batched(
            setup,
            |(mut t, mut m)| {
                let mut regs = [0u64; 16];
                perform_move(
                    &mut t,
                    &mut m,
                    &mut regs,
                    MoveRequest {
                        src: 0x100000,
                        len: 0x1000,
                        dst: 0x800000,
                    },
                    &cost,
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("alloc_move_single_allocation", |b| {
        b.iter_batched(
            setup,
            |(mut t, mut m)| {
                let mut regs = [0u64; 16];
                perform_move_alloc_granular(&mut t, &mut m, &mut regs, 0x100000, 0x800000, &cost)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
