//! # carat-bench — harness regenerating the paper's tables and figures
//!
//! One binary per table/figure (see DESIGN.md's experiment index); this
//! library holds the shared machinery: compiling workloads in each
//! configuration, running them on the VM, and rendering aligned tables.

#![warn(missing_docs)]

use carat_core::{CaratCompiler, CompileOptions, OptPreset};
use carat_ir::Module;
use carat_vm::{Mode, MoveDriverConfig, RunResult, Vm, VmConfig, VmError};
use carat_workloads::{all_workloads, Scale, Workload};

/// Workloads whose hot paths are counted loops with affine accesses — the
/// subset where the threaded tier's decode-time whole-trip proofs have
/// material to work on. `freqmine` and `xalancbmk` are excluded
/// deliberately: their hot paths are recursive pointer chasing (linked
/// `struct elem` trees, side-exit search loops) where no affine
/// whole-trip proof applies.
pub const LOOP_HEAVY: &[&str] = &[
    "hpccg",
    "cg",
    "ft",
    "blackscholes",
    "canneal",
    "streamcluster",
    "deepsjeng",
    "lbm",
    "mcf",
    "nab",
    "xz",
    "dedup",
];

/// A compile/run configuration used across the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// No instrumentation, CARAT (physical) execution — the normalization
    /// baseline of Figures 3, 6, 7, 9.
    Baseline,
    /// No instrumentation, traditional paging execution (Figure 2, Table 2).
    Traditional,
    /// Guards only, no guard optimization at all.
    GuardsNaive,
    /// Guards with generic local optimizations only (Figure 3a).
    GuardsGeneral,
    /// Guards with the CARAT-specific optimizations (Figure 3b).
    GuardsCarat,
    /// Tracking only (Figures 5–7).
    Tracking,
    /// Guards + tracking + optimizations (Figure 9 / Table 3 substrate).
    Full,
}

impl Variant {
    /// Compile options for this variant.
    pub fn options(self) -> CompileOptions {
        match self {
            Variant::Baseline | Variant::Traditional => CompileOptions::baseline(),
            Variant::GuardsNaive => CompileOptions::guards_only(OptPreset::None),
            Variant::GuardsGeneral => CompileOptions::guards_only(OptPreset::General),
            Variant::GuardsCarat => CompileOptions::guards_only(OptPreset::CaratSpecific),
            Variant::Tracking => CompileOptions::tracking_only(),
            Variant::Full => CompileOptions::default(),
        }
    }

    /// Execution mode for this variant.
    pub fn mode(self) -> Mode {
        match self {
            Variant::Traditional => Mode::Traditional,
            _ => Mode::Carat,
        }
    }
}

/// Compile `workload` at `scale` under `variant`.
///
/// # Panics
///
/// Panics on workload or compiler bugs (experiments are not expected to
/// handle them).
pub fn compile(workload: &Workload, scale: Scale, variant: Variant) -> Module {
    let module = workload
        .module(scale)
        .unwrap_or_else(|e| panic!("{}: frontend: {e}", workload.name));
    CaratCompiler::new(variant.options())
        .compile(module)
        .unwrap_or_else(|e| panic!("{}: carat: {e}", workload.name))
        .module
}

/// Run `module` under `variant` with an optional move driver.
///
/// # Errors
///
/// Propagates VM faults (which several experiments treat as data).
pub fn run(
    module: Module,
    variant: Variant,
    guard_impl: carat_runtime::GuardImpl,
    move_driver: Option<MoveDriverConfig>,
) -> Result<RunResult, VmError> {
    let cfg = VmConfig {
        mode: variant.mode(),
        guard_impl,
        move_driver,
        ..VmConfig::default()
    };
    Vm::new(module, cfg)?.run()
}

/// Convenience: compile+run with the if-tree guard and no moves.
///
/// # Panics
///
/// Panics if the run faults.
pub fn run_simple(workload: &Workload, scale: Scale, variant: Variant) -> RunResult {
    let m = compile(workload, scale, variant);
    run(m, variant, carat_runtime::GuardImpl::IfTree, None)
        .unwrap_or_else(|e| panic!("{}: run: {e}", workload.name))
}

/// Read the scale from argv (`--scale test|small|full`; default small).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--scale" {
            return match w[1].as_str() {
                "test" => Scale::Test,
                "full" => Scale::Full,
                _ => Scale::Small,
            };
        }
    }
    Scale::Small
}

/// Read the move-engine worker count from argv (`--workers N`;
/// default 1 = serial). Sets both the host patch threads and the cost
/// model's `patch_workers`, mirroring `SimKernel::set_move_workers`.
pub fn workers_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--workers" {
            return w[1].parse::<usize>().unwrap_or(1).max(1);
        }
    }
    1
}

/// Read the interpreter engine from argv
/// (`--engine reference|decoded|fused|threaded`; default fused).
///
/// Panics on an unknown name so a typo in a CI job fails loudly instead
/// of silently benchmarking the wrong engine.
pub fn engine_from_args() -> carat_vm::Engine {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--engine" {
            return carat_vm::Engine::parse(&w[1]).unwrap_or_else(|| {
                panic!(
                    "unknown engine {:?}: want reference|decoded|fused|threaded",
                    w[1]
                )
            });
        }
    }
    carat_vm::Engine::default()
}

/// Read the fleet preemption source from argv
/// (`--sched quantum|timer`; default quantum, the historical behavior).
///
/// Panics on an unknown name so a typo in a CI job fails loudly instead
/// of silently benchmarking the wrong scheduler.
pub fn sched_from_args() -> carat_vm::SchedSource {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--sched" {
            return match w[1].as_str() {
                "quantum" => carat_vm::SchedSource::Quantum,
                "timer" => carat_vm::SchedSource::Timer,
                other => panic!("unknown scheduler {other:?}: want quantum|timer"),
            };
        }
    }
    carat_vm::SchedSource::default()
}

/// Percentile over a sample set (nearest-rank on a sorted copy);
/// 0 for an empty set. `pct` in [0, 100].
pub fn percentile(xs: &[u64], pct: f64) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Read a positional mode argument (used by fig3: `general` / `carat`).
pub fn arg_after_binary(default: &str) -> String {
    std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| default.to_string())
}

/// The workload list, optionally filtered by `--only name,name`.
pub fn selected_workloads() -> Vec<Workload> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--only" {
            let names: Vec<&str> = w[1].split(',').collect();
            return all_workloads()
                .into_iter()
                .filter(|wl| names.contains(&wl.name))
                .collect();
        }
    }
    all_workloads()
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("{:<w$}", c, w = widths[i]));
            } else {
                out.push_str(&format!("  {:>w$}", c, w = widths[i]));
            }
        }
        println!("{out}");
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row.clone());
    }
}

/// Geometric mean of positive values (the paper's preferred aggregate).
pub fn geomean(xs: &[f64]) -> f64 {
    let xs: Vec<f64> = xs.iter().copied().filter(|x| *x > 0.0).collect();
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Simulated clock used when converting cycles to seconds (matches the
/// paper's 2.3 GHz Xeon E5-2695 v3).
pub const FREQ_HZ: f64 = 2.3e9;

#[cfg(test)]
mod tests {
    use super::*;
    use carat_workloads::by_name;

    #[test]
    fn variants_compile_and_run_ep() {
        let w = by_name("ep").unwrap();
        for v in [
            Variant::Baseline,
            Variant::Traditional,
            Variant::GuardsNaive,
            Variant::GuardsGeneral,
            Variant::GuardsCarat,
            Variant::Tracking,
            Variant::Full,
        ] {
            let r = run_simple(&w, Scale::Test, v);
            assert!(r.counters.instructions > 0, "{v:?}");
        }
    }

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn guard_variants_rank_as_expected_on_lu() {
        let w = by_name("lu").unwrap();
        let base = run_simple(&w, Scale::Test, Variant::Baseline);
        let naive = run_simple(&w, Scale::Test, Variant::GuardsNaive);
        let carat = run_simple(&w, Scale::Test, Variant::GuardsCarat);
        let over_naive = naive.counters.normalized_to(&base.counters);
        let over_carat = carat.counters.normalized_to(&base.counters);
        assert!(over_naive > over_carat, "{over_naive} vs {over_carat}");
        assert!(
            over_carat < 1.6,
            "CARAT-opt overhead is small: {over_carat}"
        );
    }
}
