//! # io_latency — devices, interrupts, and the price of pinning
//!
//! Drives the `io_server` workload through the modeled device pair: the
//! CLINT-style timer preempting fleets of 10 / 100 / 1k tenants on
//! modeled-cycle deadlines, and the block/NIC-style DMA engine moving
//! request/response payloads through a **pinned** shared buffer. Three
//! claims, each gated:
//!
//! * **Interrupt-to-dispatch latency** — the gap between a timer
//!   deadline and the first safe preemption boundary past it must stay
//!   a small fraction of the timer interval (mean / p50 / p99 / max are
//!   reported per fleet size). Safe boundaries exist everywhere because
//!   every step retires at least one cycle; the tail comes from
//!   signals-masked windows (pending escape notifications, fused pairs).
//! * **CARAT vs Traditional pin cost** — a CARAT pin is a registry
//!   entry: no page-table walk, no per-page PTE pinning, so its modeled
//!   cost is FLAT in region size, while the traditional
//!   `get_user_pages`-style path walks and pins every page. What CARAT
//!   pays instead is **compaction freedom**: the pinned hole is a range
//!   the move planner must skip (reported as denied moves/bytes).
//! * **Scheduling divergence fails the run** — the same fleet run under
//!   `--sched quantum` and the timer must finish with bit-identical
//!   per-tenant counters (preemption is charged to kernel accounting,
//!   never guest state). Any divergence fails the gate and the exit
//!   code.
//!
//! Emits `BENCH_io.json` (override with `--out PATH`); exits non-zero
//! when any gate fails. `--scale test` runs the 10-tenant fleet only,
//! `small` adds 100, `full` adds 1k.

use std::rc::Rc;
use std::time::Instant;

use carat_bench::{engine_from_args, percentile, print_table, scale_from_args, Variant};
use carat_core::CaratCompiler;
use carat_ir::Module;
use carat_kernel::{DmaDir, LoadConfig};
use carat_runtime::CostModel;
use carat_vm::{MultiVm, MultiVmConfig, ProcOutcome, ProcReport, SchedSource, VmConfig};
use carat_workloads::{io_server, Scale};

/// Microservice-sized capsules, as in `fleet_scaling`.
const IO_LOAD: LoadConfig = LoadConfig {
    stack_size: 8 * 1024,
    heap_size: 32 * 1024,
    page_size: 4096,
};

/// Timer-slice length in modeled cycles for the measured arm.
const TIMER_INTERVAL: u64 = 2_048;

/// DMA payload bytes per request.
const DMA_LEN: u64 = 256;

fn fleet_sizes(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Test => &[10],
        Scale::Small => &[10, 100],
        Scale::Full => &[10, 100, 1000],
    }
}

fn kernel_mem(tenants: usize) -> u64 {
    64 * 1024 * 1024 + tenants as u64 * 256 * 1024
}

fn io_module(scale: Scale) -> Rc<Module> {
    let module = io_server(scale, 0).expect("io_server compiles");
    Rc::new(
        CaratCompiler::new(Variant::Full.options())
            .compile(module)
            .expect("io_server instruments")
            .module,
    )
}

/// Build an io fleet: `tenants` copies of the shared io_server module,
/// a 4 KiB shared DMA buffer mapped into the first few tenants'
/// `dmabuf` globals, pinned on behalf of tenant 0.
fn build_fleet(
    tenants: usize,
    scale: Scale,
    sched: SchedSource,
    pressure_every: u64,
    mapped: usize,
) -> (MultiVm, carat_kernel::SharedId, u64, u64) {
    let module = io_module(scale);
    let cfg = VmConfig {
        mode: Variant::Full.mode(),
        engine: engine_from_args(),
        load: IO_LOAD,
        ..VmConfig::default()
    };
    let mut mv = MultiVm::new(
        Vec::new(),
        MultiVmConfig {
            quantum: 256,
            sched,
            timer_interval: TIMER_INTERVAL,
            kernel_mem: kernel_mem(tenants),
            pressure_every,
            pressure_batch: 4,
            ..MultiVmConfig::default()
        },
    )
    .expect("empty fleet builds");
    let mut pids = Vec::with_capacity(tenants);
    for i in 0..tenants {
        pids.push(
            mv.spawn_shared(&format!("io{i}"), module.clone(), cfg.clone())
                .unwrap_or_else(|e| {
                    eprintln!("io_latency: admitting tenant {i}/{tenants} failed: {e}");
                    std::process::exit(2);
                }),
        );
    }
    let id = mv.shared_create(4096).expect("frames available");
    for &pid in pids.iter().take(mapped) {
        mv.shared_map(pid, id, 0).expect("maps dmabuf global");
    }
    let (base, len) = mv.pin_shared(pids[0], id).expect("pins the DMA buffer");
    (mv, id, base, len)
}

struct FleetResult {
    tenants: usize,
    dispatched: u64,
    cancelled: u64,
    lat_mean: f64,
    lat_p50: u64,
    lat_p99: u64,
    lat_max: u64,
    p99_slice_ns: u64,
    dma_completed: u64,
    dma_failed: u64,
    dma_bytes: u64,
    denied_moves: u64,
    denied_bytes: u64,
    pinned_never_moved: bool,
    /// Completions observed by the caller match the device's own books.
    dma_accounted: bool,
    latency_ok: bool,
}

/// The measured arm: timer-preemptive fleet with live DMA traffic
/// through the pinned buffer and a pressure pass every slice.
fn run_fleet(tenants: usize, scale: Scale) -> FleetResult {
    let (mut mv, id, base, len) = build_fleet(tenants, scale, SchedSource::Timer, 1, 4);
    let mut slice_ns: Vec<u64> = Vec::new();
    let mut pinned_never_moved = true;
    let (mut completed, mut failed) = (0u64, 0u64);
    loop {
        let t = Instant::now();
        let ran = mv.run_batch(1);
        if ran == 0 {
            break;
        }
        slice_ns.push(t.elapsed().as_nanos() as u64);
        // Request/response traffic: one inbound fill, one outbound
        // readback per slice, serviced as the device catches up.
        mv.dma_submit(base, DMA_LEN, DmaDir::DeviceToMem);
        mv.dma_submit(base, DMA_LEN, DmaDir::MemToDevice);
        for c in mv.dma_service(4) {
            if c.ok() {
                completed += 1;
            } else {
                failed += 1;
            }
        }
        // The pin invariant, checked every slice: the block the device
        // targets never relocates while pinned.
        pinned_never_moved &= mv.kernel.pins().len() == 1
            && mv.kernel.pins()[0].start == base
            && mv.kernel.pins()[0].len == len
            && mv.kernel.procs.shared(id).map(|s| s.base) == Some(base);
    }
    let timer = &mv.kernel.dev.timer;
    let s = timer.stats();
    let dma = mv.kernel.dev.dma.stats();
    let pin = mv.kernel.pin_stats();
    FleetResult {
        tenants,
        dispatched: s.dispatched,
        cancelled: s.cancelled,
        lat_mean: timer.mean_latency(),
        lat_p50: timer.latency_percentile(50.0),
        lat_p99: timer.latency_percentile(99.0),
        lat_max: s.latency_max,
        p99_slice_ns: percentile(&slice_ns, 99.0),
        dma_completed: dma.completed,
        dma_failed: dma.failed,
        dma_bytes: dma.bytes_in + dma.bytes_out,
        denied_moves: pin.denied_moves,
        denied_bytes: pin.denied_bytes,
        pinned_never_moved,
        dma_accounted: completed == dma.completed && failed == dma.failed,
        // Dispatch happens at the first safe boundary past the deadline;
        // even the worst tail must stay inside one timer interval.
        latency_ok: s.dispatched > 0 && s.latency_max < TIMER_INTERVAL,
    }
}

fn outcomes(reports: &[ProcReport]) -> Vec<(String, i64, carat_vm::PerfCounters)> {
    reports
        .iter()
        .map(|r| {
            let ProcOutcome::Finished(rr) = &r.outcome else {
                panic!("io_latency: {} did not finish: {:?}", r.name, r.outcome);
            };
            (r.name.clone(), rr.ret, rr.counters.clone())
        })
        .collect()
}

/// The divergence gate: quantum vs timer on a quiescent device (no DMA
/// traffic) with the buffer mapped into ONE tenant (cross-tenant shared
/// writes are genuinely schedule-dependent state — a different slice
/// interleaving legitimately changes what each reader observes), pin in
/// place. Guest counters must be bit-identical.
fn run_divergence(tenants: usize, scale: Scale) -> bool {
    let (q, _, _, _) = build_fleet(tenants, scale, SchedSource::Quantum, 0, 1);
    let (t, _, _, _) = build_fleet(tenants, scale, SchedSource::Timer, 0, 1);
    let q = outcomes(&q.run());
    let t = outcomes(&t.run());
    q == t
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_io.json".to_string());
    let cost = CostModel::default();
    println!(
        "io_latency: fleets of {:?} io_server tenants, scale {scale:?}, engine {}, \
         timer interval {TIMER_INTERVAL} cycles",
        fleet_sizes(scale),
        engine_from_args().name(),
    );
    println!();

    // Pin-cost curve: pure cost model, CARAT registry entry vs
    // traditional per-page walk+PTE pin.
    let pin_pages: &[u64] = &[1, 4, 16, 64, 256];
    let mut pin_rows = Vec::new();
    let mut pin_json = String::new();
    let mut carat_flat = true;
    let mut gap_every_size = true;
    for &pages in pin_pages {
        let c = cost.pin_cost_carat(pages);
        let t = cost.pin_cost_traditional(pages);
        carat_flat &= c == cost.pin_cost_carat(1);
        gap_every_size &= c < t;
        pin_rows.push(vec![
            pages.to_string(),
            c.to_string(),
            t.to_string(),
            format!("{:.1}x", t as f64 / c.max(1) as f64),
        ]);
        if !pin_json.is_empty() {
            pin_json.push_str(",\n");
        }
        pin_json.push_str(&format!(
            "    {{\"pages\": {pages}, \"carat\": {c}, \"traditional\": {t}}}"
        ));
    }
    print_table(&["pin pages", "carat cyc", "trad cyc", "gap"], &pin_rows);
    println!(
        "{}: CARAT pin cost flat in region size (registry entry, no pagewalk)",
        if carat_flat { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: CARAT pin undercuts traditional get_user_pages at every size",
        if gap_every_size { "PASS" } else { "FAIL" }
    );
    println!();

    let mut rows = Vec::new();
    let mut fleet_json = String::new();
    let mut latency_ok = true;
    let mut pinned_ok = true;
    let mut dma_ok = true;
    let mut divergence_ok = true;
    for &n in fleet_sizes(scale) {
        let r = run_fleet(n, scale);
        let diverge = run_divergence(n, scale);
        latency_ok &= r.latency_ok;
        pinned_ok &= r.pinned_never_moved;
        dma_ok &= r.dma_completed > 0 && r.dma_failed == 0 && r.dma_accounted;
        divergence_ok &= diverge;
        rows.push(vec![
            r.tenants.to_string(),
            r.dispatched.to_string(),
            format!("{:.1}", r.lat_mean),
            r.lat_p50.to_string(),
            r.lat_p99.to_string(),
            r.lat_max.to_string(),
            r.p99_slice_ns.to_string(),
            r.dma_completed.to_string(),
            r.denied_moves.to_string(),
            if diverge { "ok" } else { "DIVERGED" }.to_string(),
        ]);
        if !fleet_json.is_empty() {
            fleet_json.push_str(",\n");
        }
        fleet_json.push_str(&format!(
            "    {{\"tenants\": {n}, \
             \"interrupt_latency_cycles\": {{\"mean\": {:.2}, \"p50\": {}, \"p99\": {}, \"max\": {}}}, \
             \"dispatched\": {}, \"cancelled\": {}, \"p99_slice_ns\": {}, \
             \"dma\": {{\"completed\": {}, \"failed\": {}, \"bytes\": {}}}, \
             \"pin\": {{\"denied_moves\": {}, \"denied_bytes\": {}, \"never_moved\": {}}}, \
             \"divergence_ok\": {diverge}}}",
            r.lat_mean,
            r.lat_p50,
            r.lat_p99,
            r.lat_max,
            r.dispatched,
            r.cancelled,
            r.p99_slice_ns,
            r.dma_completed,
            r.dma_failed,
            r.dma_bytes,
            r.denied_moves,
            r.denied_bytes,
            r.pinned_never_moved,
        ));
    }
    print_table(
        &[
            "tenants",
            "irqs",
            "lat mean",
            "lat p50",
            "lat p99",
            "lat max",
            "p99 ns/slice",
            "dma done",
            "denied mv",
            "sched diff",
        ],
        &rows,
    );
    println!();
    println!(
        "{}: interrupt-to-dispatch latency bounded by one timer interval at every fleet size",
        if latency_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: the pinned DMA buffer never moved (compaction skipped or refused typed)",
        if pinned_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: all DMA traffic completed through the pinned buffer",
        if dma_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: quantum and timer scheduling agree bit-exactly per tenant",
        if divergence_ok { "PASS" } else { "FAIL" }
    );

    let pass = carat_flat && gap_every_size && latency_ok && pinned_ok && dma_ok && divergence_ok;
    let json = format!(
        "{{\n  \"benchmark\": \"io_latency\",\n  \"scale\": \"{scale:?}\",\n  \
         \"engine\": \"{eng}\",\n  \"timer_interval\": {TIMER_INTERVAL},\n  \
         \"pin_cost\": [\n{pin_json}\n  ],\n  \"fleets\": [\n{fleet_json}\n  ],\n  \
         \"carat_pin_flat_ok\": {carat_flat},\n  \"pin_gap_ok\": {gap_every_size},\n  \
         \"latency_ok\": {latency_ok},\n  \"pinned_never_moved_ok\": {pinned_ok},\n  \
         \"dma_ok\": {dma_ok},\n  \"divergence_ok\": {divergence_ok},\n  \"pass\": {pass}\n}}\n",
        eng = engine_from_args().name(),
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("\nwrote {out_path}");
    if !pass {
        std::process::exit(1);
    }
}
