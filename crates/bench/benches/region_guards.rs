//! Criterion version of Figure 4: guard-check latency vs region count for
//! the three mechanisms, random and strided access patterns.

use carat_runtime::{Access, GuardImpl, Perms, Region, RegionTable};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn table(n: u64) -> RegionTable {
    let mut t = RegionTable::new();
    t.set_regions(
        (0..n)
            .map(|i| Region {
                start: 0x100000 + i * 0x2000,
                len: 0x1000,
                perms: Perms::RW,
            })
            .collect(),
    );
    t
}

fn random_addrs(n: u64, count: usize) -> Vec<u64> {
    let mut state = 0x2545f4914f6cdd1du64;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            0x100000 + state % (n * 0x2000)
        })
        .collect()
}

fn bench_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_random");
    for &n in &[1u64, 16, 256, 4096] {
        let t = table(n);
        let addrs = random_addrs(n, 1024);
        for imp in [GuardImpl::IfTree, GuardImpl::BinarySearch, GuardImpl::Mpx] {
            g.bench_with_input(BenchmarkId::new(format!("{imp:?}"), n), &n, |b, _| {
                b.iter(|| {
                    let mut hits = 0u64;
                    for &a in &addrs {
                        hits += t.check(imp, black_box(a), 8, Access::Read).ok as u64;
                    }
                    hits
                })
            });
        }
    }
    g.finish();
}

fn bench_strided(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_strided");
    let n = 1024u64;
    let t = table(n);
    for &stride in &[8u64, 512, 16384] {
        let span = n * 0x2000;
        let addrs: Vec<u64> = (0..1024u64)
            .map(|i| 0x100000 + (i * stride) % span)
            .collect();
        g.bench_with_input(
            BenchmarkId::new("iftree_stride", stride),
            &stride,
            |b, _| {
                b.iter(|| {
                    let mut hits = 0u64;
                    for &a in &addrs {
                        hits += t.check_if_tree(black_box(a), 8, Access::Read).ok as u64;
                    }
                    hits
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_random, bench_strided);
criterion_main!(benches);
