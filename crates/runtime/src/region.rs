//! Kernel-supplied regions and the guard evaluators (paper §3, §4.2).
//!
//! The kernel writes an ordered array of `(start, len, perms)` regions into
//! the runtime's landing zone; a guard checks a prospective access against
//! it. Three implementations, matching the paper's comparisons:
//!
//! * [`RegionTable::check_binary_search`] — basic binary search;
//! * [`RegionTable::check_if_tree`] — a statically laid out search tree
//!   (implicit Eytzinger layout, the array analogue of compiled if-trees);
//! * [`RegionTable::check_mpx`] — single bounds-register check, valid only
//!   when one region covers the process ("dark capsule" layout).

/// Access permissions for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perms {
    /// Reads allowed.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
}

impl Perms {
    /// Read-only.
    pub const R: Perms = Perms {
        read: true,
        write: false,
    };
    /// Read+write.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
    };

    /// Whether these permissions allow `access`.
    pub fn allows(&self, access: Access) -> bool {
        match access {
            Access::Read => self.read,
            Access::Write => self.write,
        }
    }
}

/// The kind of access a guard validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Load.
    Read,
    /// Store (implies the region must be writable).
    Write,
}

/// One contiguous run of physical addresses with uniform permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
    /// Permissions.
    pub perms: Perms,
}

impl Region {
    /// Exclusive end address.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `[addr, addr+len)` lies fully inside this region.
    pub fn covers(&self, addr: u64, len: u64) -> bool {
        addr >= self.start && addr.saturating_add(len) <= self.end()
    }
}

/// Result of a guard check, carrying the probe count for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardCheck {
    /// Whether the access is allowed.
    pub ok: bool,
    /// Probe steps taken (compare/branch pairs in the software guards).
    pub probes: u64,
}

/// Guard mechanism selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardImpl {
    /// Basic binary search over the sorted region array.
    BinarySearch,
    /// Statically laid out search ("if-tree"), Eytzinger order.
    #[default]
    IfTree,
    /// Intel-MPX-style single bounds register (single region only;
    /// falls back to the if-tree when there are multiple regions).
    Mpx,
}

/// The ordered region array plus its Eytzinger-layout mirror.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    sorted: Vec<Region>,
    /// Eytzinger (BFS) layout of `sorted` for the if-tree guard.
    eytz: Vec<Region>,
    /// Maps eytzinger position -> sorted index, to locate neighbors.
    eytz_sorted_idx: Vec<usize>,
    /// Generation counter: bumped on every change so runtimes can detect
    /// stale caches after a kernel region change.
    pub generation: u64,
}

impl RegionTable {
    /// Empty table (no access allowed).
    pub fn new() -> RegionTable {
        RegionTable::default()
    }

    /// Replace the region set. Regions must be non-overlapping; they are
    /// sorted by start address here.
    pub fn set_regions(&mut self, mut regions: Vec<Region>) {
        regions.sort_by_key(|r| r.start);
        debug_assert!(
            regions.windows(2).all(|w| w[0].end() <= w[1].start),
            "regions must not overlap"
        );
        self.eytz = vec![
            Region {
                start: 0,
                len: 0,
                perms: Perms::R
            };
            regions.len()
        ];
        self.eytz_sorted_idx = vec![0; regions.len()];
        if !regions.is_empty() {
            let mut pos = 0usize;
            build_eytz(
                &regions,
                &mut self.eytz,
                &mut self.eytz_sorted_idx,
                0,
                &mut pos,
            );
        }
        self.sorted = regions;
        self.generation += 1;
    }

    /// Current regions, sorted by start.
    pub fn regions(&self) -> &[Region] {
        &self.sorted
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The region containing `addr`, if any. Binary search over the
    /// sorted array; used to seed last-hit guard caches with the region's
    /// bounds (pair it with [`RegionTable::generation`] to detect stale
    /// entries).
    pub fn containing(&self, addr: u64) -> Option<&Region> {
        let i = self.sorted.partition_point(|r| r.end() <= addr);
        self.sorted.get(i).filter(|r| addr >= r.start)
    }

    /// Dispatch on the configured guard implementation.
    pub fn check(&self, imp: GuardImpl, addr: u64, len: u64, access: Access) -> GuardCheck {
        match imp {
            GuardImpl::BinarySearch => self.check_binary_search(addr, len, access),
            GuardImpl::IfTree => self.check_if_tree(addr, len, access),
            GuardImpl::Mpx => self.check_mpx(addr, len, access),
        }
    }

    /// Basic binary search over the sorted array.
    pub fn check_binary_search(&self, addr: u64, len: u64, access: Access) -> GuardCheck {
        let mut lo = 0usize;
        let mut hi = self.sorted.len();
        let mut probes = 0;
        while lo < hi {
            probes += 1;
            let mid = (lo + hi) / 2;
            let r = &self.sorted[mid];
            if addr < r.start {
                hi = mid;
            } else if addr >= r.end() {
                lo = mid + 1;
            } else {
                return GuardCheck {
                    ok: r.covers(addr, len) && r.perms.allows(access),
                    probes,
                };
            }
        }
        GuardCheck { ok: false, probes }
    }

    /// Eytzinger-layout implicit search tree: the array analogue of a
    /// compiled if-tree (static branch layout, cache-friendly).
    pub fn check_if_tree(&self, addr: u64, len: u64, access: Access) -> GuardCheck {
        let n = self.eytz.len();
        let mut i = 0usize;
        let mut probes = 0;
        let mut candidate: Option<usize> = None;
        while i < n {
            probes += 1;
            let r = &self.eytz[i];
            if addr < r.start {
                i = 2 * i + 1;
            } else {
                candidate = Some(i);
                i = 2 * i + 2;
            }
        }
        match candidate {
            Some(i) => {
                let r = &self.eytz[i];
                GuardCheck {
                    ok: r.covers(addr, len) && r.perms.allows(access),
                    probes,
                }
            }
            None => GuardCheck { ok: false, probes },
        }
    }

    /// MPX-style single bounds register: constant-time when a single
    /// region covers the process.
    pub fn check_mpx(&self, addr: u64, len: u64, access: Access) -> GuardCheck {
        if self.sorted.len() == 1 {
            let r = &self.sorted[0];
            GuardCheck {
                ok: r.covers(addr, len) && r.perms.allows(access),
                probes: 1,
            }
        } else {
            // Hardware bounds registers hold one range; multi-region
            // processes fall back to the software tree.
            self.check_if_tree(addr, len, access)
        }
    }

    /// Check a full `[lo, hi)` range (merged range guards): every byte
    /// must be inside valid regions with the needed permission, allowing
    /// the range to span adjacent regions.
    pub fn check_range(&self, lo: u64, hi: u64, access: Access) -> GuardCheck {
        if hi <= lo {
            // Empty range (e.g. zero-trip loop): trivially fine.
            return GuardCheck {
                ok: true,
                probes: 1,
            };
        }
        let mut cursor = lo;
        let mut probes = 0;
        while cursor < hi {
            let c = self.check_binary_search(cursor, 1, access);
            probes += c.probes;
            if !c.ok {
                return GuardCheck { ok: false, probes };
            }
            // Advance to the end of the region containing `cursor`.
            let r = self
                .sorted
                .iter()
                .find(|r| r.covers(cursor, 1))
                .expect("check passed");
            cursor = r.end();
        }
        GuardCheck { ok: true, probes }
    }
}

fn build_eytz(
    sorted: &[Region],
    eytz: &mut [Region],
    idx: &mut [usize],
    k: usize,
    pos: &mut usize,
) {
    if k >= sorted.len() {
        return;
    }
    build_eytz(sorted, eytz, idx, 2 * k + 1, pos);
    eytz[k] = sorted[*pos];
    idx[k] = *pos;
    *pos += 1;
    build_eytz(sorted, eytz, idx, 2 * k + 2, pos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table(n: u64) -> RegionTable {
        // n regions of 0x1000 bytes with 0x1000 gaps: [0x10000, 0x11000) rw,
        // [0x12000, 0x13000) rw, ...
        let mut t = RegionTable::new();
        t.set_regions(
            (0..n)
                .map(|i| Region {
                    start: 0x10000 + i * 0x2000,
                    len: 0x1000,
                    perms: if i % 4 == 3 { Perms::R } else { Perms::RW },
                })
                .collect(),
        );
        t
    }

    #[test]
    fn hit_miss_and_permissions() {
        let t = table(8);
        for imp in [GuardImpl::BinarySearch, GuardImpl::IfTree, GuardImpl::Mpx] {
            assert!(t.check(imp, 0x10000, 8, Access::Read).ok, "{imp:?}");
            assert!(t.check(imp, 0x10ff8, 8, Access::Write).ok);
            assert!(!t.check(imp, 0x10ff9, 8, Access::Read).ok, "straddles end");
            assert!(!t.check(imp, 0x11000, 8, Access::Read).ok, "gap");
            assert!(!t.check(imp, 0x0, 8, Access::Read).ok);
            // Region 3 (start 0x16000) is read-only.
            assert!(t.check(imp, 0x16000, 8, Access::Read).ok);
            assert!(!t.check(imp, 0x16000, 8, Access::Write).ok);
        }
    }

    #[test]
    fn mpx_is_single_probe_for_single_region() {
        let t = table(1);
        let c = t.check_mpx(0x10008, 8, Access::Read);
        assert!(c.ok);
        assert_eq!(c.probes, 1);
    }

    #[test]
    fn probe_counts_grow_logarithmically() {
        let t16 = table(16);
        let t4096 = table(4096);
        let p16 = t16.check_binary_search(0x10000, 8, Access::Read).probes;
        let p4096 = t4096.check_binary_search(0x10000, 8, Access::Read).probes;
        assert!(p4096 <= p16 + 9, "log growth: {p16} -> {p4096}");
        assert!(p4096 > p16);
        let q = t4096.check_if_tree(0x10000, 8, Access::Read).probes;
        assert!(q <= 13, "if-tree probes bounded by depth: {q}");
    }

    #[test]
    fn range_check_spans_adjacent_regions() {
        let mut t = RegionTable::new();
        t.set_regions(vec![
            Region {
                start: 0x1000,
                len: 0x1000,
                perms: Perms::RW,
            },
            Region {
                start: 0x2000,
                len: 0x1000,
                perms: Perms::RW,
            },
        ]);
        assert!(t.check_range(0x1800, 0x2800, Access::Write).ok);
        assert!(!t.check_range(0x1800, 0x3001, Access::Write).ok);
        assert!(t.check_range(0x9000, 0x9000, Access::Read).ok, "empty");
    }

    #[test]
    fn containing_finds_exactly_the_covering_region() {
        let t = table(8);
        assert_eq!(t.containing(0x10000).map(|r| r.start), Some(0x10000));
        assert_eq!(t.containing(0x10fff).map(|r| r.start), Some(0x10000));
        assert!(t.containing(0x11000).is_none(), "exclusive end");
        assert!(t.containing(0x0).is_none(), "below all regions");
        assert_eq!(t.containing(0x16008).map(|r| r.start), Some(0x16000));
        assert!(t.containing(0x20000).is_none(), "above all regions");
    }

    #[test]
    fn generation_bumps_on_change() {
        let mut t = table(2);
        let g = t.generation;
        t.set_regions(vec![]);
        assert_eq!(t.generation, g + 1);
        assert!(!t.check_if_tree(0x10000, 8, Access::Read).ok);
    }

    proptest! {
        /// All three guard implementations agree on every query.
        #[test]
        fn implementations_agree(
            n in 1u64..64,
            addr in 0u64..0x50000,
            len in 1u64..64,
            write in proptest::bool::ANY,
        ) {
            let t = table(n);
            let access = if write { Access::Write } else { Access::Read };
            let a = t.check_binary_search(addr, len, access).ok;
            let b = t.check_if_tree(addr, len, access).ok;
            let c = t.check_mpx(addr, len, access).ok;
            prop_assert_eq!(a, b);
            prop_assert_eq!(b, c);
        }
    }
}
