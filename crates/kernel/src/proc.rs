//! The process table: per-process kernel state for multi-tenant
//! operation, organized as a slab for fleet-scale tenancy.
//!
//! CARAT's isolation story (paper §4.3) is that the kernel-maintained
//! *region set* of a process — not a page table — decides what it may
//! touch: every guard the compiler injected checks against the regions of
//! the currently running process, so an address outside them is caught in
//! user mode and surfaced to the kernel as a [`ProtectionFault`]. The
//! process table holds, per process:
//!
//! * its [`Pid`] and lifecycle state ([`ProcState`]);
//! * the admitted [`ProcessImage`](crate::ProcessImage) (the signing
//!   record — what the trust chain accepted at load time);
//! * its guard-region map (installed into the live
//!   [`RegionTable`](carat_runtime::RegionTable) on context switch);
//! * its baseline [`PageTable`] (traditional mode only);
//! * its runtime [`AllocationTable`], parked here while the process is
//!   descheduled and checked out by the scheduler while it runs;
//! * scheduling/fault accounting ([`ProcAccounting`]).
//!
//! The table is a *slab*: entries live in recyclable slots addressed by
//! the low half of a [`Pid`], with the high half carrying a per-slot
//! generation so a retired pid can never alias a successor spawned into
//! the same slot. A free list makes spawn/kill O(1), and an intrusive
//! doubly-linked run queue over slot indices makes
//! [`ProcTable::next_runnable`] O(1) and compaction-victim scans
//! O(runnable) rather than O(ever registered). Admission control
//! ([`TenantQuotas`], [`AdmissionError`]) bounds both the tenant count
//! and the resident capsule bytes the fleet may commit.
//!
//! Shared memory ([`SharedRegion`]) is a page-aligned block mapped into
//! the region set of several owners; each owner tracks it in its own
//! allocation table, so a kernel move of the block patches every owner's
//! escapes (see `SimKernel::move_shared`).

use crate::loader::ProcessImage;
use crate::pagetable::PageTable;
use carat_runtime::{AllocationTable, Perms, Region};
use std::error::Error;
use std::fmt;

/// Sentinel for "no slot" in the intrusive run-queue links.
const NIL: u32 = u32::MAX;

/// Process identifier: slab slot index in the low 32 bits, slot
/// generation in the high 32 bits. The generation is bumped every time a
/// slot is recycled, so a pid held across a kill can never name the
/// tenant that later reuses the slot — stale lookups return `None`
/// instead of someone else's process.
///
/// `Pid(n)` with a small literal keeps constructing a generation-0 pid,
/// which is what a fresh table assigns to its first tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.generation() == 0 {
            write!(f, "pid{}", self.index())
        } else {
            write!(f, "pid{}.g{}", self.index(), self.generation())
        }
    }
}

impl Pid {
    /// Build a pid from a slot index and a generation tag.
    pub fn new(index: usize, generation: u32) -> Pid {
        Pid(((generation as u64) << 32) | index as u64)
    }

    /// The slab slot this pid names.
    pub fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    /// The generation tag: which incarnation of the slot this pid names.
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Identifier of a shared memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SharedId(pub u32);

impl fmt::Display for SharedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shm{}", self.0)
    }
}

/// A memory access outside the owning process's region set — the typed
/// isolation violation. Never a panic: the guard fails in user mode and
/// the kernel converts it into this record (and keeps scheduling every
/// other process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionFault {
    /// The offending process.
    pub pid: Pid,
    /// The address it tried to touch.
    pub addr: u64,
    /// Access width in bytes.
    pub len: u64,
    /// Whether the access was a write.
    pub write: bool,
}

impl fmt::Display for ProtectionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protection fault: {} {} of {} bytes at {:#x} outside its regions",
            self.pid,
            if self.write { "write" } else { "read" },
            self.len,
            self.addr
        )
    }
}

impl Error for ProtectionFault {}

/// Lifecycle state of a process table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Eligible for scheduling.
    Runnable,
    /// `main` returned with this value.
    Exited(i64),
    /// Killed by an isolation violation.
    Faulted(ProtectionFault),
}

/// Admission quotas for the fleet: how many tenants may be live at once
/// and how many capsule bytes they may keep resident in total. The
/// defaults are unlimited — single-process flows and the classic
/// multi-tenant benches never hit them.
#[derive(Debug, Clone, Copy)]
pub struct TenantQuotas {
    /// Maximum live tenants.
    pub max_tenants: usize,
    /// Maximum total resident capsule bytes across all live tenants.
    pub max_resident_bytes: u64,
}

impl Default for TenantQuotas {
    fn default() -> TenantQuotas {
        TenantQuotas {
            max_tenants: usize::MAX,
            max_resident_bytes: u64::MAX,
        }
    }
}

/// Typed admission failure: the spawn was refused *before* the tenant
/// became visible to the scheduler. Over-commit is a kernel policy
/// decision, never a panic — the churn soak in `fleet_scaling` leans on
/// exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The live-tenant quota is exhausted.
    TenantLimit {
        /// The configured cap.
        limit: usize,
    },
    /// Admitting the capsule would over-commit resident memory.
    MemoryOverCommit {
        /// Capsule bytes the new tenant asked for.
        requested: u64,
        /// Bytes already resident.
        resident: u64,
        /// The configured cap.
        limit: u64,
    },
    /// The fleet is shedding load: frame utilization climbed past the
    /// scheduler's backpressure watermark, so new admissions are refused
    /// until the degradation ladder (compaction, page-out, capsule
    /// externalization) brings utilization back down. The last rung of
    /// graceful degradation — a typed refusal, never an allocator panic.
    Backpressure {
        /// Frame utilization (percent) when the spawn was refused.
        utilization_pct: u64,
        /// The watermark that tripped.
        watermark_pct: u64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::TenantLimit { limit } => {
                write!(f, "admission refused: tenant limit {limit} reached")
            }
            AdmissionError::MemoryOverCommit {
                requested,
                resident,
                limit,
            } => write!(
                f,
                "admission refused: {requested} capsule bytes over-commit \
                 resident memory ({resident} of {limit} in use)"
            ),
            AdmissionError::Backpressure {
                utilization_pct,
                watermark_pct,
            } => write!(
                f,
                "admission refused: backpressure at {utilization_pct}% frame \
                 utilization (watermark {watermark_pct}%)"
            ),
        }
    }
}

impl Error for AdmissionError {}

/// Kernel-side accounting for one process. These are *kernel* charges —
/// context-switch and compaction work done on the process's behalf — and
/// deliberately never flow into the process's own
/// `PerfCounters`: a time-sliced run must retire exactly the cycles a
/// sequential run would, with the scheduling overhead reported separately
/// (this is what the differential tests pin down).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcAccounting {
    /// Times this process was switched in.
    pub ctx_switches: u64,
    /// Kernel cycles spent switching this process in.
    pub ctx_switch_cycles: u64,
    /// TLB flushes paid on its behalf (traditional mode only; CARAT
    /// switches never flush — there is no translation state).
    pub tlb_flushes: u64,
    /// Isolation violations this process caused.
    pub protection_faults: u64,
    /// Ranges paged out of this process under memory pressure.
    pub pressure_page_outs: u64,
    /// CARAT moves executed against this process by the compaction pass.
    pub pressure_moves: u64,
    /// Kernel cycles spent compacting/paging this process's memory.
    pub compaction_cycles: u64,
    /// Times this tenant's capsule was externalized to the capsule device
    /// by the degradation ladder.
    pub externalizations: u64,
    /// Times its capsule was rehydrated from the device at schedule time.
    pub rehydrations: u64,
    /// DMA pins taken on this tenant's behalf.
    pub pins: u64,
    /// DMA unpins on its behalf.
    pub unpins: u64,
    /// Bytes it currently holds pinned (kill-time reap zeroes the pins
    /// themselves; the entry dies with the process).
    pub pinned_bytes: u64,
    /// Timer interrupts that preempted this tenant (timer scheduling).
    pub timer_preemptions: u64,
    /// Summed interrupt-to-dispatch latency of those preemptions, in
    /// modeled cycles — the deferral its masked windows imposed.
    pub preempt_latency_cycles: u64,
}

/// One process's kernel-side record.
#[derive(Debug)]
pub struct ProcEntry {
    /// Its identifier.
    pub pid: Pid,
    /// Human-readable name (workload name in the benches).
    pub name: String,
    /// Lifecycle state. Mutate through [`ProcTable::set_state`] so the
    /// run queue stays in sync; the queue also re-validates on pop, so a
    /// direct write is lazily corrected rather than fatal.
    pub state: ProcState,
    /// The admitted image — the record of what the trust chain accepted.
    /// The *live* image (globals patched by moves, stack rebased) travels
    /// with the VM; this copy is the admission-time snapshot.
    pub image: ProcessImage,
    /// Guard-region map while descheduled. Taken (left empty) while this
    /// process is current: the live copy is the kernel's master list.
    pub regions: Vec<Region>,
    /// Baseline page table while descheduled (traditional mode); swapped
    /// with the kernel's live one on context switch.
    pub pagetable: PageTable,
    /// The runtime allocation table, parked here while descheduled.
    /// `None` while the scheduler has it checked out into the running VM.
    pub table: Option<AllocationTable>,
    /// Scheduling/fault accounting.
    pub accounting: ProcAccounting,
    /// Move-destination recycler while descheduled: page ranges this
    /// process's moves vacated, reused for its future move destinations.
    /// Per-process (swapped with the kernel's live list on context
    /// switch) so one tenant's churn never changes another's placement —
    /// and so a dead tenant's fragments cannot alias frames the buddy
    /// has already re-issued.
    pub vacated: Vec<(u64, u64)>,
    /// Base addresses of whole buddy blocks this process obtained after
    /// admission (move/page-in/stack-growth destinations). Freed back to
    /// the buddy when the process is killed — the reap half of
    /// supervision.
    pub owned_blocks: Vec<u64>,
    /// Next unissued local swap-slot ordinal (per-process, so one
    /// tenant's page-outs never renumber another's poison addresses).
    pub next_swap_slot: u64,
    /// Recycled local swap-slot ordinals (freed by page-ins), reissued
    /// lowest-first so slot assignment stays deterministic.
    pub free_swap_slots: std::collections::BTreeSet<u64>,
}

/// A page-aligned block mapped into several processes' region sets.
#[derive(Debug, Clone)]
pub struct SharedRegion {
    /// Its identifier.
    pub id: SharedId,
    /// Current base address (updated when the kernel moves the block).
    pub base: u64,
    /// Length in bytes (page-aligned).
    pub len: u64,
    /// Processes that have it mapped.
    pub owners: Vec<Pid>,
}

/// One slab slot: the entry (if live), the generation its pids must
/// carry, and the intrusive run-queue links.
#[derive(Debug)]
struct Slot {
    generation: u32,
    entry: Option<ProcEntry>,
    /// Next slot in the run queue (`NIL` = none / not queued).
    next: u32,
    /// Previous slot in the run queue.
    prev: u32,
    /// Whether this slot is linked into the run queue.
    queued: bool,
}

impl Slot {
    fn vacant(generation: u32) -> Slot {
        Slot {
            generation,
            entry: None,
            next: NIL,
            prev: NIL,
            queued: false,
        }
    }
}

/// The kernel's process table: a generation-tagged slab with an intrusive
/// FIFO run queue.
#[derive(Debug)]
pub struct ProcTable {
    slots: Vec<Slot>,
    /// Recyclable slot indices (kill pushes, spawn pops).
    free: Vec<u32>,
    /// Run-queue head/tail (slot indices). The queue holds exactly the
    /// runnable tenants; [`ProcTable::next_runnable`] rotates it FIFO,
    /// which reproduces round-robin in pid order for a static fleet.
    rq_head: u32,
    rq_tail: u32,
    runnable: usize,
    live: usize,
    /// Capsule bytes resident across all live tenants (admission-charged).
    resident: u64,
    quotas: TenantQuotas,
    current: Option<Pid>,
    shared: Vec<SharedRegion>,
    /// Cross-process shared-region moves executed.
    pub shared_moves: u64,
    /// Kernel cycles spent in shared-region moves (world stop + patch +
    /// copy across every owner).
    pub shared_move_cycles: u64,
}

impl Default for ProcTable {
    fn default() -> ProcTable {
        ProcTable::new()
    }
}

impl ProcTable {
    /// An empty table with unlimited quotas.
    pub fn new() -> ProcTable {
        ProcTable {
            slots: Vec::new(),
            free: Vec::new(),
            rq_head: NIL,
            rq_tail: NIL,
            runnable: 0,
            live: 0,
            resident: 0,
            quotas: TenantQuotas::default(),
            current: None,
            shared: Vec::new(),
            shared_moves: 0,
            shared_move_cycles: 0,
        }
    }

    /// Number of live (spawned and not yet killed) processes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no process is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slab slots ever grown (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Tenants currently linked into the run queue.
    pub fn runnable_len(&self) -> usize {
        self.runnable
    }

    /// Capsule bytes resident across all live tenants.
    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }

    /// The admission quotas in force.
    pub fn quotas(&self) -> TenantQuotas {
        self.quotas
    }

    /// Replace the admission quotas (applies to future spawns only).
    pub fn set_quotas(&mut self, quotas: TenantQuotas) {
        self.quotas = quotas;
    }

    /// The currently installed process, if any.
    pub fn current(&self) -> Option<Pid> {
        self.current
    }

    pub(crate) fn set_current(&mut self, pid: Option<Pid>) {
        self.current = pid;
    }

    /// All live entries, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcEntry> {
        self.slots.iter().filter_map(|s| s.entry.as_ref())
    }

    /// Whether `pid` names a live process (its slot holds its generation).
    fn valid(&self, pid: Pid) -> bool {
        self.slots
            .get(pid.index())
            .is_some_and(|s| s.generation == pid.generation() && s.entry.is_some())
    }

    /// The entry for `pid`; `None` for a retired or never-issued pid (a
    /// recycled slot's generation no longer matches).
    pub fn get(&self, pid: Pid) -> Option<&ProcEntry> {
        let s = self.slots.get(pid.index())?;
        if s.generation != pid.generation() {
            return None;
        }
        s.entry.as_ref()
    }

    /// Mutable entry for `pid`, with the same staleness rules as
    /// [`ProcTable::get`].
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut ProcEntry> {
        let s = self.slots.get_mut(pid.index())?;
        if s.generation != pid.generation() {
            return None;
        }
        s.entry.as_mut()
    }

    /// Admission check for a capsule of `bytes`: would a spawn be
    /// accepted right now?
    ///
    /// # Errors
    ///
    /// The typed [`AdmissionError`] a spawn would fail with.
    pub fn admit(&self, bytes: u64) -> Result<(), AdmissionError> {
        if self.live >= self.quotas.max_tenants {
            return Err(AdmissionError::TenantLimit {
                limit: self.quotas.max_tenants,
            });
        }
        if self
            .resident
            .checked_add(bytes)
            .is_none_or(|total| total > self.quotas.max_resident_bytes)
        {
            return Err(AdmissionError::MemoryOverCommit {
                requested: bytes,
                resident: self.resident,
                limit: self.quotas.max_resident_bytes,
            });
        }
        Ok(())
    }

    /// Spawn a process into a free slot (recycling one if available):
    /// admission-check its capsule, assign a generation-tagged [`Pid`],
    /// charge its resident bytes, and enqueue it runnable.
    ///
    /// # Errors
    ///
    /// [`AdmissionError`] on over-commit; the table is unchanged.
    pub fn spawn(
        &mut self,
        name: String,
        image: ProcessImage,
        regions: Vec<Region>,
        pagetable: PageTable,
        table: Option<AllocationTable>,
    ) -> Result<Pid, AdmissionError> {
        let bytes = image.capsule_region().len;
        self.admit(bytes)?;
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot::vacant(0));
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[idx as usize].generation;
        let pid = Pid::new(idx as usize, generation);
        self.slots[idx as usize].entry = Some(ProcEntry {
            pid,
            name,
            state: ProcState::Runnable,
            image,
            regions,
            pagetable,
            table,
            accounting: ProcAccounting::default(),
            vacated: Vec::new(),
            owned_blocks: Vec::new(),
            next_swap_slot: 0,
            free_swap_slots: std::collections::BTreeSet::new(),
        });
        self.live += 1;
        self.resident += bytes;
        self.enqueue(idx);
        Ok(pid)
    }

    /// Kill `pid`: unlink it from the run queue, release its resident
    /// bytes, bump the slot generation (retiring every outstanding copy
    /// of the pid), and push the slot onto the free list. Returns the
    /// removed entry so the caller can release its capsule frames;
    /// `None` if the pid is already stale.
    pub fn kill(&mut self, pid: Pid) -> Option<ProcEntry> {
        if !self.valid(pid) {
            return None;
        }
        let idx = pid.index() as u32;
        self.dequeue(idx);
        let slot = &mut self.slots[pid.index()];
        // `valid` above proved the entry live.
        let entry = slot.entry.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        self.resident = self
            .resident
            .saturating_sub(entry.image.capsule_region().len);
        if self.current == Some(pid) {
            self.current = None;
        }
        for s in &mut self.shared {
            s.owners.retain(|&o| o != pid);
        }
        Some(entry)
    }

    /// Link slot `idx` at the run-queue tail (no-op if already queued).
    fn enqueue(&mut self, idx: u32) {
        if self.slots[idx as usize].queued {
            return;
        }
        let slot = &mut self.slots[idx as usize];
        slot.queued = true;
        slot.next = NIL;
        slot.prev = self.rq_tail;
        if self.rq_tail == NIL {
            self.rq_head = idx;
        } else {
            self.slots[self.rq_tail as usize].next = idx;
        }
        self.rq_tail = idx;
        self.runnable += 1;
    }

    /// Unlink slot `idx` from the run queue (no-op if not queued).
    fn dequeue(&mut self, idx: u32) {
        if !self.slots[idx as usize].queued {
            return;
        }
        let (prev, next) = {
            let s = &mut self.slots[idx as usize];
            s.queued = false;
            let pn = (s.prev, s.next);
            s.prev = NIL;
            s.next = NIL;
            pn
        };
        if prev == NIL {
            self.rq_head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.rq_tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.runnable -= 1;
    }

    /// Check the allocation table of `pid` out (scheduler: the process is
    /// about to run and the VM owns the table for the slice). Returns
    /// `None` if it is already checked out or the pid is stale.
    pub fn checkout_table(&mut self, pid: Pid) -> Option<AllocationTable> {
        self.get_mut(pid)?.table.take()
    }

    /// Check the allocation table of `pid` back in (the slice ended). A
    /// stale pid drops the table — the tenant was killed meanwhile.
    pub fn checkin_table(&mut self, pid: Pid, table: AllocationTable) {
        if let Some(e) = self.get_mut(pid) {
            e.table = Some(table);
        }
    }

    /// O(1) round-robin scheduling pick: pop the run-queue head, rotate
    /// it to the tail, and return it. For a static fleet this visits
    /// every runnable tenant in spawn (pid) order, exactly like the old
    /// linear scan — without ever touching the dead ones. A popped slot
    /// whose entry is no longer [`ProcState::Runnable`] (killed or state
    /// set behind the table's back) is lazily dropped from the queue.
    pub fn next_runnable(&mut self) -> Option<Pid> {
        while self.rq_head != NIL {
            let idx = self.rq_head;
            let runnable_pid = self.slots[idx as usize]
                .entry
                .as_ref()
                .filter(|e| matches!(e.state, ProcState::Runnable))
                .map(|e| e.pid);
            match runnable_pid {
                Some(pid) => {
                    self.dequeue(idx);
                    self.enqueue(idx);
                    return Some(pid);
                }
                None => self.dequeue(idx),
            }
        }
        None
    }

    /// Set the lifecycle state of `pid`, keeping the run queue in sync:
    /// a tenant leaving [`ProcState::Runnable`] is dequeued, one
    /// re-entering it is enqueued at the tail. Stale pids are ignored.
    pub fn set_state(&mut self, pid: Pid, state: ProcState) {
        if !self.valid(pid) {
            return;
        }
        let idx = pid.index() as u32;
        // `valid` above proved the entry live; a stale pid already
        // returned, so this is never reached with an empty slot.
        if let Some(e) = self.slots[pid.index()].entry.as_mut() {
            e.state = state;
        }
        if matches!(state, ProcState::Runnable) {
            self.enqueue(idx);
        } else {
            self.dequeue(idx);
        }
    }

    /// Record an isolation violation by `pid`: bumps its fault accounting,
    /// marks it [`ProcState::Faulted`] (dequeuing it), and returns the
    /// typed fault.
    pub fn record_protection_fault(
        &mut self,
        pid: Pid,
        addr: u64,
        len: u64,
        write: bool,
    ) -> ProtectionFault {
        let fault = ProtectionFault {
            pid,
            addr,
            len,
            write,
        };
        // A stale pid (tenant killed between the guard failing and the
        // fault being recorded) has nothing to account against; the typed
        // fault is still produced for the caller's report.
        if let Some(e) = self.get_mut(pid) {
            e.accounting.protection_faults += 1;
            self.set_state(pid, ProcState::Faulted(fault));
        }
        fault
    }

    /// All shared regions.
    pub fn shared_regions(&self) -> &[SharedRegion] {
        &self.shared
    }

    /// The shared region `id`.
    pub fn shared(&self, id: SharedId) -> Option<&SharedRegion> {
        self.shared.get(id.0 as usize)
    }

    pub(crate) fn shared_mut(&mut self, id: SharedId) -> &mut SharedRegion {
        &mut self.shared[id.0 as usize]
    }

    pub(crate) fn add_shared(&mut self, base: u64, len: u64) -> SharedId {
        let id = SharedId(self.shared.len() as u32);
        self.shared.push(SharedRegion {
            id,
            base,
            len,
            owners: Vec::new(),
        });
        id
    }

    /// Compaction victim pick under memory pressure: walk the run queue
    /// (O(runnable), never O(ever registered)) and pick the checked-in
    /// tenant whose allocation table carries the most live escapes — the
    /// candidate whose move buys the most patch coverage, read off the
    /// table's O(1) reverse-map count. Deterministic: ties resolve to the
    /// earliest queue position.
    pub fn pick_compaction_victim(&self) -> Option<Pid> {
        self.pick_compaction_victim_bounded(0).0
    }

    /// [`ProcTable::pick_compaction_victim`] with the walk bounded to
    /// the first `limit` run-queue entries (`0` = unbounded). Because
    /// [`ProcTable::next_runnable`] rotates the queue every slice, the
    /// bounded window is a moving clock hand over the runnable set —
    /// each pressure pass examines a different stretch, and every tenant
    /// is examined within `runnable / limit` passes. With `limit >=`
    /// the runnable count this is exactly the full walk. Returns the
    /// victim and the number of queue entries examined (the pressure
    /// pass's modeled scan charge).
    pub fn pick_compaction_victim_bounded(&self, limit: usize) -> (Option<Pid>, usize) {
        let mut best: Option<(Pid, usize)> = None;
        let mut examined = 0usize;
        let mut idx = self.rq_head;
        while idx != NIL {
            if limit != 0 && examined >= limit {
                break;
            }
            examined += 1;
            let slot = &self.slots[idx as usize];
            if let Some(e) = slot.entry.as_ref() {
                if matches!(e.state, ProcState::Runnable) {
                    if let Some(t) = e.table.as_ref() {
                        let score = t.live_escapes();
                        if best.is_none_or(|(_, b)| score > b) {
                            best = Some((e.pid, score));
                        }
                    }
                }
            }
            idx = slot.next;
        }
        (best.map(|(pid, _)| pid), examined)
    }
}

/// Replace `[src, src+len)` in a region list with a same-length RW region
/// at `dst` (the region-map half of a move), keeping the list sorted.
pub(crate) fn retarget_region(regions: &mut Vec<Region>, src: u64, len: u64, dst: u64) {
    let (lo, hi) = (src, src + len);
    let mut next = Vec::with_capacity(regions.len() + 2);
    for r in regions.drain(..) {
        let (rs, re) = (r.start, r.end());
        if re <= lo || rs >= hi {
            next.push(r);
            continue;
        }
        if rs < lo {
            next.push(Region {
                start: rs,
                len: lo - rs,
                perms: r.perms,
            });
        }
        if re > hi {
            next.push(Region {
                start: hi,
                len: re - hi,
                perms: r.perms,
            });
        }
    }
    next.push(Region {
        start: dst,
        len,
        perms: Perms::RW,
    });
    next.sort_by_key(|r| r.start);
    *regions = next;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spawn_named(t: &mut ProcTable, name: &str) -> Pid {
        t.spawn(
            name.to_string(),
            crate::loader::ProcessImage::empty_for_tests(),
            Vec::new(),
            PageTable::new(),
            Some(AllocationTable::new()),
        )
        .expect("within quota")
    }

    #[test]
    fn pid_packs_index_and_generation() {
        let p = Pid::new(7, 3);
        assert_eq!(p.index(), 7);
        assert_eq!(p.generation(), 3);
        assert_eq!(Pid(3).to_string(), "pid3");
        assert_eq!(Pid::new(3, 2).to_string(), "pid3.g2");
        assert_eq!(SharedId(1).to_string(), "shm1");
    }

    #[test]
    fn protection_fault_display_names_everything() {
        let f = ProtectionFault {
            pid: Pid(2),
            addr: 0x8000,
            len: 8,
            write: true,
        };
        let s = f.to_string();
        assert!(s.contains("pid2") && s.contains("write") && s.contains("0x8000"));
    }

    #[test]
    fn retarget_splits_and_relocates() {
        let mut regions = vec![Region {
            start: 0x1000,
            len: 0x3000,
            perms: Perms::RW,
        }];
        retarget_region(&mut regions, 0x2000, 0x1000, 0x9000);
        let starts: Vec<u64> = regions.iter().map(|r| r.start).collect();
        assert_eq!(starts, vec![0x1000, 0x3000, 0x9000]);
        assert_eq!(regions[0].len, 0x1000);
        assert_eq!(regions[2].len, 0x1000);
    }

    #[test]
    fn run_queue_round_robins_and_skips_dead() {
        let mut t = ProcTable::new();
        let pids: Vec<Pid> = (0..3)
            .map(|i| spawn_named(&mut t, &format!("p{i}")))
            .collect();
        assert_eq!(pids[0], Pid(0));
        assert_eq!(t.next_runnable(), Some(pids[0]));
        assert_eq!(t.next_runnable(), Some(pids[1]));
        assert_eq!(t.next_runnable(), Some(pids[2]));
        assert_eq!(t.next_runnable(), Some(pids[0]), "wraps");
        t.set_state(pids[1], ProcState::Exited(0));
        assert_eq!(t.next_runnable(), Some(pids[2]), "skips dead");
        t.set_state(pids[0], ProcState::Exited(0));
        t.set_state(pids[2], ProcState::Exited(0));
        assert_eq!(t.next_runnable(), None);
        assert_eq!(t.runnable_len(), 0);
    }

    #[test]
    fn fault_recording_kills_the_process() {
        let mut t = ProcTable::new();
        let pid = spawn_named(&mut t, "victim");
        let f = t.record_protection_fault(pid, 0x10, 8, false);
        assert_eq!(f.pid, pid);
        assert_eq!(t.get(pid).unwrap().accounting.protection_faults, 1);
        assert!(matches!(t.get(pid).unwrap().state, ProcState::Faulted(_)));
        assert_eq!(t.next_runnable(), None);
    }

    #[test]
    fn kill_recycles_slot_with_fresh_generation() {
        let mut t = ProcTable::new();
        let a = spawn_named(&mut t, "a");
        let b = spawn_named(&mut t, "b");
        assert_eq!(t.len(), 2);
        let dead = t.kill(a).expect("live");
        assert_eq!(dead.name, "a");
        assert_eq!(t.len(), 1);
        // Stale pid: every lookup is now None, never pid b's entry.
        assert!(t.get(a).is_none());
        assert!(t.kill(a).is_none());
        assert!(t.checkout_table(a).is_none());
        // The slot is recycled with a bumped generation.
        let c = spawn_named(&mut t, "c");
        assert_eq!(c.index(), a.index());
        assert_eq!(c.generation(), a.generation() + 1);
        assert_ne!(c, a);
        assert!(t.get(a).is_none(), "old pid never aliases the new tenant");
        assert_eq!(t.get(c).unwrap().name, "c");
        let _ = b;
    }

    #[test]
    fn quotas_gate_admission_with_typed_errors() {
        let mut t = ProcTable::new();
        t.set_quotas(TenantQuotas {
            max_tenants: 2,
            max_resident_bytes: u64::MAX,
        });
        let a = spawn_named(&mut t, "a");
        let _b = spawn_named(&mut t, "b");
        let err = t
            .spawn(
                "c".into(),
                crate::loader::ProcessImage::empty_for_tests(),
                Vec::new(),
                PageTable::new(),
                None,
            )
            .unwrap_err();
        assert_eq!(err, AdmissionError::TenantLimit { limit: 2 });
        // Killing one frees the quota.
        t.kill(a);
        let _c = spawn_named(&mut t, "c");
        // Byte quota: the test image's capsule is 0x3000 bytes.
        let mut t = ProcTable::new();
        t.set_quotas(TenantQuotas {
            max_tenants: usize::MAX,
            max_resident_bytes: 0x3000,
        });
        let _a = spawn_named(&mut t, "a");
        let err = t
            .spawn(
                "b".into(),
                crate::loader::ProcessImage::empty_for_tests(),
                Vec::new(),
                PageTable::new(),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, AdmissionError::MemoryOverCommit { .. }));
        assert_eq!(t.resident_bytes(), 0x3000);
    }

    proptest! {
        /// A pid handed out once never validates again after its tenant dies,
        /// no matter how many times the slot is recycled.
        #[test]
        fn generations_never_alias(ops in proptest::collection::vec((0u64..4, proptest::bool::ANY), 1..120)) {
            let mut t = ProcTable::new();
            let mut live: Vec<Pid> = Vec::new();
            let mut retired: Vec<Pid> = Vec::new();
            for (i, (slot, spawn)) in ops.iter().enumerate() {
                if *spawn || live.is_empty() {
                    let pid = spawn_named(&mut t, &format!("t{i}"));
                    prop_assert!(!retired.contains(&pid), "recycled slot reused a retired pid");
                    prop_assert!(!live.contains(&pid), "duplicate live pid");
                    live.push(pid);
                } else {
                    let victim = live.remove((*slot as usize) % live.len());
                    prop_assert!(t.kill(victim).is_some());
                    retired.push(victim);
                }
                for p in &retired {
                    prop_assert!(t.get(*p).is_none(), "stale {p} resolved after kill");
                    prop_assert!(t.kill(*p).is_none(), "stale {p} double-killed");
                }
                for p in &live {
                    prop_assert!(t.get(*p).is_some(), "live {p} lost");
                }
            }
            prop_assert_eq!(t.len(), live.len());
        }

        /// One rotation of the run queue visits every runnable tenant exactly
        /// once, regardless of which tenants were parked or killed first.
        #[test]
        fn round_robin_visits_all_runnable(n in 1usize..12, park_mask in 0u16..4096) {
            let mut t = ProcTable::new();
            let pids: Vec<Pid> = (0..n).map(|i| spawn_named(&mut t, &format!("p{i}"))).collect();
            let mut runnable: Vec<Pid> = Vec::new();
            for (i, p) in pids.iter().enumerate() {
                if park_mask & (1 << i) != 0 {
                    t.set_state(*p, ProcState::Exited(0));
                } else {
                    runnable.push(*p);
                }
            }
            prop_assert_eq!(t.runnable_len(), runnable.len());
            let mut seen = Vec::new();
            for _ in 0..runnable.len() {
                let next = t.next_runnable();
                prop_assert!(next.is_some(), "queue dried up early");
                let next = next.unwrap();
                prop_assert!(runnable.contains(&next), "scheduled a parked tenant");
                prop_assert!(!seen.contains(&next), "revisited {} within one rotation", next);
                seen.push(next);
            }
            // The rotation wraps: the next pick is the first one again.
            if let Some(first) = seen.first() {
                prop_assert_eq!(t.next_runnable(), Some(*first));
            } else {
                prop_assert_eq!(t.next_runnable(), None);
            }
        }

        /// checkout_table/checkin_table stay balanced under random spawn,
        /// kill, and checkout interleavings: a table checked out is always
        /// returned by exactly one checkin, stale pids never yield a table,
        /// and killing a tenant mid-checkout doesn't corrupt the slab.
        #[test]
        fn checkout_checkin_balance(ops in proptest::collection::vec((0u64..5, 0u64..8), 1..120)) {
            let mut t = ProcTable::new();
            let mut live: Vec<Pid> = Vec::new();
            let mut out: Vec<(Pid, AllocationTable)> = Vec::new();
            let mut retired: Vec<Pid> = Vec::new();
            for (i, (op, slot)) in ops.iter().enumerate() {
                match op {
                    0 | 1 => {
                        live.push(spawn_named(&mut t, &format!("t{i}")));
                    }
                    2 if !live.is_empty() => {
                        let pid = live[(*slot as usize) % live.len()];
                        if let Some(table) = t.checkout_table(pid) {
                            prop_assert!(
                                !out.iter().any(|(p, _)| *p == pid),
                                "double checkout of {pid}"
                            );
                            out.push((pid, table));
                        } else {
                            prop_assert!(
                                out.iter().any(|(p, _)| *p == pid),
                                "{pid} live but table neither resident nor checked out"
                            );
                        }
                    }
                    3 if !out.is_empty() => {
                        let (pid, table) = out.remove((*slot as usize) % out.len());
                        t.checkin_table(pid, table);
                    }
                    4 if !live.is_empty() => {
                        let pid = live.remove((*slot as usize) % live.len());
                        prop_assert!(t.kill(pid).is_some());
                        retired.push(pid);
                        out.retain(|(p, _)| *p != pid);
                    }
                    _ => {}
                }
                for p in &retired {
                    prop_assert!(t.checkout_table(*p).is_none(), "stale {p} yielded a table");
                }
            }
            // Drain: every outstanding table checks back in, after which every
            // live tenant's table is resident and checks out exactly once.
            for (pid, table) in out.drain(..) {
                t.checkin_table(pid, table);
            }
            for p in &live {
                let table = t.checkout_table(*p);
                prop_assert!(table.is_some(), "live {p} lost its table");
                t.checkin_table(*p, table.unwrap());
            }
        }
    }

    #[test]
    fn victim_pick_prefers_most_escapes_over_runnable_only() {
        let mut t = ProcTable::new();
        let a = spawn_named(&mut t, "a");
        let b = spawn_named(&mut t, "b");
        let mut table = AllocationTable::new();
        table.track_alloc(0x1000, 64, carat_runtime::AllocKind::Heap);
        table.track_escape(0x2000);
        table.flush_escapes(|_| 0x1010);
        t.checkout_table(b);
        t.checkin_table(b, table);
        assert_eq!(t.pick_compaction_victim(), Some(b));
        t.set_state(b, ProcState::Exited(0));
        assert_eq!(t.pick_compaction_victim(), Some(a), "dead tenants skipped");
    }
}
