//! A tiny, dependency-free, deterministic subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this local crate
//! stands in for the real `proptest`. It implements exactly the surface
//! this workspace uses — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, integer-range / bool / `Just` / tuple / vec / string
//! pattern strategies, and `ProptestConfig::with_cases` — with a
//! deterministic per-test RNG instead of shrinking. Failures report the
//! case number so a run can be reproduced by re-running the test.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::Rng;

    /// Generates values of `Self::Value` from an [`Rng`].
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next() % span) as $t)
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next() as $t; // full-width range
                    }
                    lo.wrapping_add((rng.next() % span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform choice among boxed strategies of one value type
    /// (the engine behind [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from the alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let i = (rng.next() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String patterns: a subset of proptest's regex strategies supporting
    /// literals, escapes, char classes `[a-z\n]` and repetitions `{lo,hi}`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut Rng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pat: &str, rng: &mut Rng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a char class or a (possibly escaped) literal.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = read_char(&chars, &mut i);
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = read_char(&chars, &mut i);
                        for c in lo..=hi {
                            set.push(c);
                        }
                    } else {
                        set.push(lo);
                    }
                }
                i += 1; // closing ']'
                set
            } else {
                vec![read_char(&chars, &mut i)]
            };
            // Optional repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("repetition bound"),
                        b.trim().parse::<usize>().expect("repetition bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + (rng.next() as usize) % (hi - lo + 1);
            for _ in 0..n {
                out.push(alphabet[(rng.next() % alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn read_char(chars: &[char], i: &mut usize) -> char {
        let c = chars[*i];
        *i += 1;
        if c != '\\' {
            return c;
        }
        let esc = chars[*i];
        *i += 1;
        match esc {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other, // \\, \], \-, \[ …
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Element count for [`vec`]: an exact count or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::core::ops::Range<usize>> for SizeRange {
        fn from(r: ::core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.size.lo + (rng.next() as usize) % (self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Strategy for an unbiased boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.next() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! The (non-shrinking) test runner: config, RNG, and failure type.

    use std::fmt;

    /// Run configuration. Only `cases` is honored.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A failed property (assertion message or explicit failure).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fail the current case with a reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic xorshift64* generator, seeded per (test, case).
    #[derive(Clone, Debug)]
    pub struct Rng(u64);

    impl Rng {
        /// The RNG for case `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> Rng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            Rng(h | 1)
        }

        /// Next raw 64-bit value.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, Rng, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each function runs `cases` times with freshly
/// generated inputs; `prop_assert*` failures abort that case with context.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::Rng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "property '{}' failed at case {}: {}",
                        stringify!($name),
                        case,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "{}: `{:?}` == `{:?}`",
            ::std::format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($s) as _,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_picks_an_arm(s in prop_oneof![Just("a"), Just("b")]) {
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn string_pattern_charset(s in "[a-c]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = Rng::for_case("t", 7);
        let mut b = Rng::for_case("t", 7);
        assert_eq!(a.next(), b.next());
        let mut c = Rng::for_case("t", 8);
        assert_ne!(a.next(), c.next());
    }
}
