//! Table 2 — page (4KB) allocation and movement rates under the
//! traditional model: static footprint, initial pages, demand allocations,
//! moves, simulated execution time, and the derived rates.

use carat_bench::{print_table, run_simple, scale_from_args, selected_workloads, Variant, FREQ_HZ};

fn main() {
    let scale = scale_from_args();
    println!("Table 2: Page (4KB) Allocation and Movement Rates ({scale:?} scale)\n");
    let mut rows = Vec::new();
    let mut alloc_rates = Vec::new();
    for w in selected_workloads() {
        let r = run_simple(&w, scale, Variant::Traditional);
        let secs = r.counters.seconds(FREQ_HZ);
        let alloc_rate = r.page_allocs as f64 / secs.max(1e-9);
        let move_rate = r.page_moves as f64 / secs.max(1e-9);
        alloc_rates.push(alloc_rate);
        rows.push(vec![
            w.name.to_string(),
            format!("{}", r.static_footprint.div_ceil(4096)),
            format!("{}", r.initial_pages),
            format!("{}", r.page_allocs.saturating_sub(r.initial_pages)),
            format!("{}", r.page_moves),
            format!("{:.4}s", secs),
            format!("{:.0}/s", alloc_rate),
            if move_rate < 1.0 {
                "< 1/s".to_string()
            } else {
                format!("{move_rate:.0}/s")
            },
        ]);
    }
    let geo = carat_bench::geomean(&alloc_rates);
    rows.push(vec![
        "Geo. mean".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{geo:.0}/s"),
        "< 1/s".into(),
    ]);
    print_table(
        &[
            "benchmark",
            "Static FP pgs",
            "Initial",
            "Page Allocs",
            "Moves",
            "Exec Time",
            "Alloc Rate",
            "Move Rate",
        ],
        &rows,
    );
}
