//! Table 1 — effectiveness of the CARAT-specific compiler optimizations:
//! fraction of injected guards statically remaining, untouched, and
//! optimized by each of Opt 1 (hoisting), Opt 2 (merging), Opt 3 (AC/DC).
//!
//! A second section ablates the *decode-time* guard optimizations of the
//! threaded engine tier on the loop-heavy workloads: `none` (all guards
//! execute), `elide` (proof-elided guards dropped, no replacement check),
//! and `elide+hoist` (one widened range check per elided loop guard at
//! the preheader). Builds are `GuardsNaive` — no compile-time guard
//! optimization — so the decode-time proofs carry the whole burden, and
//! each config's guard counters reconcile against the `none` row.

use carat_bench::{
    compile, mean, print_table, scale_from_args, selected_workloads, Variant, LOOP_HEAVY,
};
use carat_core::{CaratCompiler, CompileOptions, OptPreset};
use carat_ir::Module;
use carat_vm::{Engine, RunResult, ThreadedOpts, Vm, VmConfig};
use carat_workloads::Scale;

/// Run one loop-heavy workload on the threaded engine with the given
/// decode-time toggles.
fn run_threaded(module: Module, opts: ThreadedOpts) -> RunResult {
    let cfg = VmConfig {
        engine: Engine::Threaded,
        threaded: opts,
        ..VmConfig::default()
    };
    Vm::new(module, cfg).expect("load").run().expect("run")
}

/// The decode-time ablation over the loop-heavy subset.
fn threaded_ablation(scale: Scale) {
    println!("\nThreaded-tier guard ablation (GuardsNaive builds, loop-heavy subset)\n");
    let configs = [
        (
            "none",
            ThreadedOpts {
                elide: false,
                hoist: false,
            },
        ),
        (
            "elide",
            ThreadedOpts {
                elide: true,
                hoist: false,
            },
        ),
        (
            "elide+hoist",
            ThreadedOpts {
                elide: true,
                hoist: true,
            },
        ),
    ];
    let mut rows = Vec::new();
    for w in selected_workloads() {
        if !LOOP_HEAVY.contains(&w.name) {
            continue;
        }
        let results: Vec<RunResult> = configs
            .iter()
            .map(|(_, opts)| run_threaded(compile(&w, scale, Variant::GuardsNaive), *opts))
            .collect();
        let [none, elide, full] = results.as_slice() else {
            unreachable!()
        };
        // Same program, same semantics, and every elided guard accounted:
        // config `none` executes each guard the others elide.
        for r in [elide, full] {
            assert_eq!(none.ret, r.ret, "{}: ablation changed the result", w.name);
            assert_eq!(none.output, r.output, "{}: ablation changed output", w.name);
            assert_eq!(
                none.counters.guards_executed,
                r.counters.guards_executed + r.counters.guards_elided - r.counters.guards_hoisted,
                "{}: guard accounting does not reconcile",
                w.name
            );
        }
        assert!(
            full.counters.guards_elided > 0,
            "{}: loop-heavy workload with no proof-elided guards",
            w.name
        );
        let gc = |r: &RunResult| r.counters.guard_cycles as f64;
        rows.push(vec![
            w.name.to_string(),
            format!("{}", none.counters.guards_executed),
            format!("{}", full.counters.guards_executed),
            format!("{}", full.counters.guards_elided),
            format!("{}", full.counters.guards_hoisted),
            format!("{:.3}", gc(elide) / gc(none).max(1.0)),
            format!("{:.3}", gc(full) / gc(none).max(1.0)),
        ]);
    }
    print_table(
        &[
            "benchmark",
            "guards (none)",
            "guards (e+h)",
            "elided",
            "hoisted",
            "gcyc elide/none",
            "gcyc e+h/none",
        ],
        &rows,
    );
    println!("\nguards-elided-by-proof > 0 verified on every loop-heavy workload");
}

fn main() {
    let scale = scale_from_args();
    println!("Table 1: Effectiveness of Compiler Optimizations ({scale:?} scale)\n");
    let mut rows = Vec::new();
    let mut cols: [Vec<f64>; 5] = Default::default();
    for w in selected_workloads() {
        let module = w.module(scale).expect("workload compiles");
        let out = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
            .compile(module)
            .expect("carat compiles");
        let c = out.census;
        let vals = [
            c.remaining_fraction(),
            c.untouched_fraction(),
            c.hoisted_fraction(),
            c.merged_fraction(),
            c.eliminated_fraction(),
        ];
        for (col, v) in cols.iter_mut().zip(vals) {
            col.push(v);
        }
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", vals[0]),
            format!("{:.3}", vals[1]),
            format!("{:.3}", vals[2]),
            format!("{:.3}", vals[3]),
            format!("{:.3}", vals[4]),
            format!("{}", c.total),
        ]);
    }
    rows.push(vec![
        "Arith. Mean".into(),
        format!("{:.3}", mean(&cols[0])),
        format!("{:.3}", mean(&cols[1])),
        format!("{:.3}", mean(&cols[2])),
        format!("{:.3}", mean(&cols[3])),
        format!("{:.3}", mean(&cols[4])),
        String::new(),
    ]);
    print_table(
        &[
            "benchmark",
            "Opt. Guards",
            "Untouched",
            "Opt. 1",
            "Opt. 2",
            "Opt. 3",
            "total",
        ],
        &rows,
    );

    threaded_ablation(scale);
}
