//! Supervision policy suite: restart-on-recoverable with exponential
//! backoff, the max-restart circuit breaker, respawn-from-image after
//! capsule corruption, and admission backpressure.
//!
//! Everything here is driven through the public `MultiVm` surface with
//! seeded fault plans — the same machinery the chaos bench storms use —
//! so the assertions double as executable documentation of the
//! supervisor's contract: deterministic verdicts, slice-exact backoff,
//! and a ledger (`events`, `restarts`, `quarantines`, `backoff_cycles`)
//! that always adds up.

use carat_core::{CaratCompiler, CompileOptions};
use carat_ir::Module;
use carat_kernel::{AdmissionError, FaultPlan, FaultPoint};
use carat_vm::{
    MultiVm, MultiVmConfig, ProcOutcome, ProcSpec, SupervisorConfig, TenantExit, Verdict, VmConfig,
    VmError,
};

/// Fifty small allocations summed: touches the malloc intrinsic (the
/// `TenantOom` injection site) on every incarnation, and finishes with
/// a known return value.
const ALLOC_SRC: &str = "
    int main() {
        int s = 0;
        for (int i = 0; i < 50; i += 1) {
            int* p = (int*) malloc(sizeof(int));
            *p = i;
            s += *p;
        }
        return s;
    }
";

/// sum(0..50) — the return value every healthy incarnation produces.
const ALLOC_RET: i64 = 1225;

fn workload() -> Module {
    let module = carat_frontend::compile_cm("supervised", ALLOC_SRC).expect("compiles");
    CaratCompiler::new(CompileOptions::default())
        .compile(module)
        .expect("instruments")
        .module
}

fn spec(plan: Option<FaultPlan>) -> ProcSpec {
    ProcSpec {
        name: "lineage".to_string(),
        module: workload(),
        cfg: VmConfig {
            fault_plan: plan,
            ..VmConfig::default()
        },
    }
}

fn supervised_cfg() -> MultiVmConfig {
    MultiVmConfig {
        supervisor: Some(SupervisorConfig::default()),
        ..MultiVmConfig::default()
    }
}

#[test]
fn recoverable_exit_restarts_with_slice_exact_backoff() {
    // One injected malloc failure kills the first incarnation; the
    // supervisor schedules a respawn one slice out (attempt 0 ⇒ 2^0)
    // and the successor runs to completion from the admission image.
    let plan = FaultPlan::new().arm(FaultPoint::TenantOom, 1);
    let mut mv = MultiVm::new(vec![spec(Some(plan))], supervised_cfg()).expect("admits");
    mv.run_batch(u64::MAX);

    let sup = mv.supervisor().expect("supervision configured");
    assert_eq!(sup.restarts, 1);
    assert_eq!(sup.quarantines, 0);
    let base = SupervisorConfig::default().backoff_base_cycles;
    assert_eq!(sup.backoff_cycles, base);

    let death = &sup.events[0];
    assert!(matches!(death.exit, TenantExit::Recoverable(_)));
    let Verdict::Restarting {
        attempt,
        due_slice,
        backoff_cycles,
    } = death.verdict
    else {
        panic!(
            "first verdict must schedule a restart, got {:?}",
            death.verdict
        );
    };
    assert_eq!(attempt, 0);
    assert_eq!(backoff_cycles, base);
    assert_eq!(due_slice, death.slice + 1, "attempt 0 backs off 2^0 slices");
    let (successor, rejoined_at) = death.respawned_as.expect("respawn admitted");
    assert_ne!(successor, death.pid, "a respawn is a fresh pid");
    assert!(rejoined_at >= due_slice, "no respawn before its backoff");

    // The ancestor's report carries the typed error; the successor's
    // carries the full healthy result.
    let reports = mv.run();
    let errors = reports
        .iter()
        .filter(|r| matches!(r.outcome, ProcOutcome::Error(VmError::OutOfMemory)))
        .count();
    let finished: Vec<i64> = reports
        .iter()
        .filter_map(|r| match &r.outcome {
            ProcOutcome::Finished(rr) => Some(rr.ret),
            _ => None,
        })
        .collect();
    assert_eq!(errors, 1);
    assert_eq!(finished, vec![ALLOC_RET]);
}

#[test]
fn circuit_breaker_quarantines_a_flapping_lineage() {
    // A persistent malloc-failure condition kills every incarnation.
    // The lineage gets exactly `max_restarts` geometrically backed-off
    // respawns, then the breaker trips and quarantines it for good.
    let plan = FaultPlan::new().arm_persistent(FaultPoint::TenantOom, 1);
    let mut mv = MultiVm::new(vec![spec(Some(plan))], supervised_cfg()).expect("admits");
    mv.run_batch(u64::MAX);

    let cfg = SupervisorConfig::default();
    let sup = mv.supervisor().expect("supervision configured");
    assert_eq!(sup.restarts, u64::from(cfg.max_restarts));
    assert_eq!(sup.quarantines, 1);
    // Geometric series: base * (2^0 + 2^1 + … + 2^(max-1)).
    let expected: u64 = (0..cfg.max_restarts)
        .map(|k| cfg.backoff_base_cycles << k)
        .sum();
    assert_eq!(sup.backoff_cycles, expected);

    // One death event per incarnation, each backing off twice as far,
    // and the last one quarantined.
    assert_eq!(sup.events.len() as u32, cfg.max_restarts + 1);
    for (k, ev) in sup.events.iter().enumerate() {
        let k = k as u32;
        if k < cfg.max_restarts {
            let Verdict::Restarting {
                attempt,
                due_slice,
                backoff_cycles,
            } = ev.verdict
            else {
                panic!("death {k} must restart, got {:?}", ev.verdict);
            };
            assert_eq!(attempt, k);
            assert_eq!(backoff_cycles, cfg.backoff_base_cycles << k);
            assert_eq!(due_slice, ev.slice + (1 << k));
            assert!(ev.respawned_as.is_some(), "scheduled respawns are admitted");
        } else {
            assert_eq!(ev.verdict, Verdict::Quarantined);
            assert!(ev.respawned_as.is_none());
        }
    }
    assert!(!sup.has_pending(), "quarantine leaves nothing pending");

    // Every incarnation reported the same typed error; none finished.
    let reports = mv.run();
    assert_eq!(reports.len() as u32, cfg.max_restarts + 1);
    for r in &reports {
        assert!(
            matches!(r.outcome, ProcOutcome::Error(VmError::OutOfMemory)),
            "[{}] unexpected outcome {:?}",
            r.name,
            r.outcome
        );
    }
}

#[test]
fn corrupt_capsule_respawns_lineage_from_image() {
    // Externalize the tenant into the checksummed capsule device, then
    // arm the device read to fail verification. Rehydrate-on-schedule
    // surfaces `CapsuleCorrupt`; the execution state is lost, but the
    // supervisor respawns the lineage from its admission image and the
    // successor still produces the workload's result.
    let mut mv = MultiVm::new(vec![], supervised_cfg()).expect("empty fleet");
    let pid = mv.spawn(spec(None)).expect("admits");
    mv.externalize_tenant(pid)
        .expect("device accepts the capsule");
    mv.install_fault_plan(FaultPlan::new().arm(FaultPoint::CapsuleCorrupt, 1));
    mv.run_batch(u64::MAX);

    let sup = mv.supervisor().expect("supervision configured");
    let death = sup
        .events
        .iter()
        .find(|e| matches!(e.exit, TenantExit::CapsuleCorrupt { .. }))
        .expect("corruption observed");
    assert!(
        matches!(death.verdict, Verdict::Restarting { .. }),
        "capsule corruption is recoverable via respawn-from-image"
    );
    assert!(death.respawned_as.is_some());

    let reports = mv.run();
    let finished: Vec<i64> = reports
        .iter()
        .filter_map(|r| match &r.outcome {
            ProcOutcome::Finished(rr) => Some(rr.ret),
            _ => None,
        })
        .collect();
    assert_eq!(finished, vec![ALLOC_RET]);
}

#[test]
fn backpressure_watermark_refuses_admission() {
    // Rung 4 of the degradation ladder: past the watermark the fleet
    // sheds load at the door with a typed refusal — before any frame
    // is committed.
    let cfg = MultiVmConfig {
        backpressure_watermark: 0,
        ..supervised_cfg()
    };
    let mut mv = MultiVm::new(vec![], cfg).expect("an empty fleet admits nothing");
    match mv.spawn(spec(None)) {
        Err(VmError::Admission(AdmissionError::Backpressure { watermark_pct, .. })) => {
            assert_eq!(watermark_pct, 0);
        }
        other => panic!("expected a backpressure refusal, got {other:?}"),
    }
}

#[test]
fn unsupervised_fleet_keeps_terminal_outcomes_in_place() {
    // Without a policy installed, the pre-supervision behavior holds:
    // the typed error stays in the tenant's report, no respawn happens,
    // and there is no supervisor ledger at all.
    let plan = FaultPlan::new().arm(FaultPoint::TenantOom, 1);
    let mut mv = MultiVm::new(vec![spec(Some(plan))], MultiVmConfig::default()).expect("admits");
    mv.run_batch(u64::MAX);
    assert!(mv.supervisor().is_none());
    let reports = mv.run();
    assert_eq!(reports.len(), 1);
    assert!(matches!(
        reports[0].outcome,
        ProcOutcome::Error(VmError::OutOfMemory)
    ));
}
