//! Alias analysis.
//!
//! The CARAT prototype combines 15 memory alias analyses with LLVM's alias
//! chaining ("best-of-N"). We reproduce the architecture: several
//! independent analyses behind one [`AliasAnalysis`] trait, combined by
//! [`ChainedAlias`], which returns the most precise answer any member
//! gives. The members implemented are the ones that matter for CARAT's
//! guard optimizations on our IR:
//!
//! * [`BaseObjectAlias`] — resolves each pointer to its base allocation
//!   (alloca / global / malloc / argument) and reports `NoAlias` for
//!   provably distinct bases.
//! * [`OffsetAlias`] — for pointers with the same base, compares constant
//!   byte offsets and access extents.
//! * [`TypeBasedAlias`] — distinct scalar access types of different sizes
//!   at identical SSA addresses cannot fully overlap.

use carat_ir::{Const, Function, Inst, ValueId};

/// The three-way alias verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasResult {
    /// The accesses cannot overlap.
    No,
    /// The accesses may overlap.
    May,
    /// The accesses definitely overlap exactly.
    Must,
}

/// A memory location: a pointer value plus an access size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLoc {
    /// The address operand.
    pub ptr: ValueId,
    /// Access extent in bytes.
    pub size: u64,
}

/// An alias analysis answers queries about two locations in one function.
pub trait AliasAnalysis {
    /// May/must/no-alias verdict for `a` vs `b` in `f`.
    fn alias(&self, f: &Function, a: MemLoc, b: MemLoc) -> AliasResult;
}

/// The base object a pointer is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseObject {
    /// A stack allocation (the alloca's value id).
    Alloca(ValueId),
    /// A global variable.
    Global(carat_ir::GlobalId),
    /// A heap allocation (the malloc call's value id).
    Malloc(ValueId),
    /// A formal parameter (points to caller-owned memory).
    Arg(u32),
    /// A pointer loaded from memory or otherwise untraceable.
    Unknown,
}

/// Resolve `ptr` to `(base, constant byte offset)` if the offset is
/// statically known, else `(base, None)`.
pub fn trace_base(f: &Function, ptr: ValueId) -> (BaseObject, Option<i64>) {
    let mut cur = ptr;
    let mut offset: Option<i64> = Some(0);
    loop {
        match f.inst(cur) {
            None => {
                // Argument.
                if let carat_ir::ValueDef::Arg { index, .. } = f.def(cur) {
                    return (BaseObject::Arg(*index), offset);
                }
                return (BaseObject::Unknown, None);
            }
            Some(Inst::Alloca(_)) => return (BaseObject::Alloca(cur), offset),
            Some(Inst::Const(Const::GlobalAddr(g))) => return (BaseObject::Global(*g), offset),
            Some(Inst::CallIntrinsic { intr, .. }) if *intr == carat_ir::Intrinsic::Malloc => {
                return (BaseObject::Malloc(cur), offset)
            }
            Some(Inst::PtrAdd { base, index, elem }) => {
                offset = match (offset, const_i64(f, *index)) {
                    (Some(o), Some(i)) => o.checked_add(i.wrapping_mul(elem.stride() as i64)),
                    _ => None,
                };
                cur = *base;
            }
            Some(Inst::FieldAddr {
                base,
                struct_ty,
                field,
            }) => {
                offset = offset.map(|o| o + struct_ty.field_offset(*field as usize) as i64);
                cur = *base;
            }
            Some(Inst::Select { .. }) | Some(Inst::Phi { .. }) => {
                return (BaseObject::Unknown, None)
            }
            Some(_) => return (BaseObject::Unknown, None),
        }
    }
}

fn const_i64(f: &Function, v: ValueId) -> Option<i64> {
    match f.inst(v) {
        Some(Inst::Const(Const::Int(x, _))) => Some(*x),
        Some(Inst::Cast { value, .. }) => const_i64(f, *value),
        _ => None,
    }
}

/// Distinct base objects cannot alias.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaseObjectAlias;

impl AliasAnalysis for BaseObjectAlias {
    fn alias(&self, f: &Function, a: MemLoc, b: MemLoc) -> AliasResult {
        let (ba, _) = trace_base(f, a.ptr);
        let (bb, _) = trace_base(f, b.ptr);
        match (ba, bb) {
            (BaseObject::Unknown, _) | (_, BaseObject::Unknown) => AliasResult::May,
            // Two distinct concrete allocations never overlap. Arguments may
            // alias anything except provably-local objects.
            (BaseObject::Arg(_), BaseObject::Alloca(_))
            | (BaseObject::Alloca(_), BaseObject::Arg(_)) => AliasResult::No,
            // A heap block allocated inside this function is fresh, so no
            // incoming argument can already point into it.
            (BaseObject::Arg(_), BaseObject::Malloc(_))
            | (BaseObject::Malloc(_), BaseObject::Arg(_)) => AliasResult::No,
            // An argument may well point at a global.
            (BaseObject::Arg(_), BaseObject::Global(_))
            | (BaseObject::Global(_), BaseObject::Arg(_)) => AliasResult::May,
            // Two arguments may point at the same caller object.
            (BaseObject::Arg(_), BaseObject::Arg(_)) => AliasResult::May,
            (x, y) if x == y => AliasResult::May,
            _ => AliasResult::No,
        }
    }
}

/// Same base, constant offsets: compare extents.
#[derive(Debug, Clone, Copy, Default)]
pub struct OffsetAlias;

impl AliasAnalysis for OffsetAlias {
    fn alias(&self, f: &Function, a: MemLoc, b: MemLoc) -> AliasResult {
        let (ba, oa) = trace_base(f, a.ptr);
        let (bb, ob) = trace_base(f, b.ptr);
        if ba == BaseObject::Unknown || ba != bb {
            return AliasResult::May;
        }
        match (oa, ob) {
            (Some(x), Some(y)) => {
                let (ax, bx) = (x, x + a.size as i64);
                let (ay, by) = (y, y + b.size as i64);
                if bx <= ay || by <= ax {
                    AliasResult::No
                } else if ax == ay && bx == by {
                    AliasResult::Must
                } else {
                    AliasResult::May
                }
            }
            _ => AliasResult::May,
        }
    }
}

/// Identical SSA pointers with identical sizes must alias; differing sizes
/// at the same pointer partially overlap (`May`).
#[derive(Debug, Clone, Copy, Default)]
pub struct TypeBasedAlias;

impl AliasAnalysis for TypeBasedAlias {
    fn alias(&self, _f: &Function, a: MemLoc, b: MemLoc) -> AliasResult {
        if a.ptr == b.ptr {
            if a.size == b.size {
                AliasResult::Must
            } else {
                AliasResult::May
            }
        } else {
            AliasResult::May
        }
    }
}

/// Best-of-N chaining over member analyses, mirroring LLVM's alias chaining
/// as used by the CARAT prototype.
pub struct ChainedAlias {
    members: Vec<Box<dyn AliasAnalysis>>,
}

impl std::fmt::Debug for ChainedAlias {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChainedAlias({} members)", self.members.len())
    }
}

impl Default for ChainedAlias {
    fn default() -> ChainedAlias {
        ChainedAlias::new()
    }
}

impl ChainedAlias {
    /// The standard chain: base-object, offset, and type-based analyses.
    pub fn new() -> ChainedAlias {
        ChainedAlias {
            members: vec![
                Box::new(BaseObjectAlias),
                Box::new(OffsetAlias),
                Box::new(TypeBasedAlias),
            ],
        }
    }

    /// A chain with custom members (for ablation studies).
    pub fn with_members(members: Vec<Box<dyn AliasAnalysis>>) -> ChainedAlias {
        ChainedAlias { members }
    }

    /// The standard chain plus a per-function Steensgaard points-to
    /// analysis (computed once here), which sees through phis and selects
    /// that the syntactic base tracer punts on.
    pub fn for_function(f: &Function) -> ChainedAlias {
        let mut c = ChainedAlias::new();
        c.members
            .push(Box::new(crate::steensgaard::Steensgaard::compute(f)));
        c
    }
}

impl AliasAnalysis for ChainedAlias {
    fn alias(&self, f: &Function, a: MemLoc, b: MemLoc) -> AliasResult {
        let mut best = AliasResult::May;
        for m in &self.members {
            match m.alias(f, a, b) {
                AliasResult::No => return AliasResult::No,
                AliasResult::Must => best = AliasResult::Must,
                AliasResult::May => {}
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{GlobalInit, ModuleBuilder, Type};

    /// Two allocas, a global, derived pointers with constant offsets.
    fn setup() -> (carat_ir::Module, Vec<ValueId>) {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", Type::Array(Box::new(Type::I64), 8), GlobalInit::Zero);
        let f = mb.declare("f", vec![Type::Ptr], None);
        let mut ids = Vec::new();
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let a1 = b.alloca(Type::Array(Box::new(Type::I64), 4));
            let a2 = b.alloca(Type::I64);
            let ga = b.global_addr(g);
            let two = b.const_i64(2);
            let a1_2 = b.ptr_add(a1, two, Type::I64); // a1 + 16
            let three = b.const_i64(3);
            let a1_3 = b.ptr_add(a1, three, Type::I64); // a1 + 24
            let size = b.const_i64(32);
            let h = b.malloc(size);
            ids.extend([a1, a2, ga, a1_2, a1_3, h, b.arg(0)]);
            b.ret(None);
        }
        (mb.finish(), ids)
    }

    fn loc(v: ValueId) -> MemLoc {
        MemLoc { ptr: v, size: 8 }
    }

    #[test]
    fn distinct_allocas_do_not_alias() {
        let (m, ids) = setup();
        let f = m.func(m.func_by_name("f").unwrap());
        let aa = ChainedAlias::new();
        assert_eq!(aa.alias(f, loc(ids[0]), loc(ids[1])), AliasResult::No);
        assert_eq!(aa.alias(f, loc(ids[0]), loc(ids[2])), AliasResult::No);
        assert_eq!(aa.alias(f, loc(ids[0]), loc(ids[5])), AliasResult::No);
    }

    #[test]
    fn same_base_disjoint_offsets_do_not_alias() {
        let (m, ids) = setup();
        let f = m.func(m.func_by_name("f").unwrap());
        let aa = ChainedAlias::new();
        // a1+16..24 vs a1+24..32
        assert_eq!(aa.alias(f, loc(ids[3]), loc(ids[4])), AliasResult::No);
        // a1+16..24 vs a1+0..8? base itself
        assert_eq!(aa.alias(f, loc(ids[0]), loc(ids[3])), AliasResult::No);
    }

    #[test]
    fn identical_pointer_must_alias() {
        let (m, ids) = setup();
        let f = m.func(m.func_by_name("f").unwrap());
        let aa = ChainedAlias::new();
        assert_eq!(aa.alias(f, loc(ids[3]), loc(ids[3])), AliasResult::Must);
    }

    #[test]
    fn argument_vs_alloca_no_alias_but_arg_vs_global_may() {
        let (m, ids) = setup();
        let f = m.func(m.func_by_name("f").unwrap());
        let aa = ChainedAlias::new();
        let arg = ids[6];
        assert_eq!(aa.alias(f, loc(arg), loc(ids[0])), AliasResult::No);
        assert_eq!(aa.alias(f, loc(arg), loc(ids[2])), AliasResult::May);
        // Fresh heap memory cannot be reachable from an incoming argument.
        assert_eq!(aa.alias(f, loc(arg), loc(ids[5])), AliasResult::No);
    }

    #[test]
    fn trace_base_accumulates_offsets() {
        let (m, ids) = setup();
        let f = m.func(m.func_by_name("f").unwrap());
        let (b, off) = trace_base(f, ids[4]);
        assert_eq!(b, BaseObject::Alloca(ids[0]));
        assert_eq!(off, Some(24));
    }
}
