//! Allocation and escape tracking injection (paper §4.1.2).
//!
//! * after every `malloc` — `carat.track.alloc(result, size)`;
//! * before every `free` — `carat.track.free(ptr)`;
//! * after every `alloca` (optionally) — `carat.track.alloc(slot, size)`;
//! * after every store of a *pointer-typed* value — `carat.track.escape(dst)`,
//!   informing the runtime that a pointer now lives at address `dst`.
//!
//! Static allocations (globals) are recorded by the kernel loader at load
//! time, not by instrumentation.

use carat_ir::{Const, FuncId, Function, Inst, IntTy, Intrinsic, Module, Type, ValueId};

/// What to instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackingConfig {
    /// Track heap allocations (`malloc`/`free`).
    pub heap: bool,
    /// Track stack allocations (`alloca`).
    pub stack: bool,
    /// Track pointer escapes (stores of pointers).
    pub escapes: bool,
}

impl Default for TrackingConfig {
    fn default() -> TrackingConfig {
        TrackingConfig {
            heap: true,
            stack: true,
            escapes: true,
        }
    }
}

/// Counts of tracking callbacks inserted into one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackingCounts {
    /// `track.alloc` after mallocs.
    pub heap_allocs: usize,
    /// `track.free` before frees.
    pub frees: usize,
    /// `track.alloc` after allocas.
    pub stack_allocs: usize,
    /// `track.escape` after pointer stores.
    pub escapes: usize,
}

impl TrackingCounts {
    /// Total callbacks inserted.
    pub fn total(&self) -> usize {
        self.heap_allocs + self.frees + self.stack_allocs + self.escapes
    }
}

/// Inject tracking callbacks into every function of `module`.
pub fn inject_tracking(module: &mut Module, cfg: TrackingConfig) -> Vec<TrackingCounts> {
    let fids: Vec<FuncId> = module.func_ids().collect();
    let mut out = Vec::with_capacity(fids.len());
    for fid in fids {
        out.push(inject_into_function(module.func_mut(fid), cfg));
    }
    out
}

enum Site {
    MallocAfter { call: ValueId, size: ValueId },
    FreeBefore { call: ValueId, ptr: ValueId },
    AllocaAfter { slot: ValueId, size: u64 },
    EscapeAfter { store: ValueId, dst: ValueId },
}

fn inject_into_function(f: &mut Function, cfg: TrackingConfig) -> TrackingCounts {
    let mut counts = TrackingCounts::default();
    let mut sites = Vec::new();
    for b in f.block_ids().collect::<Vec<_>>() {
        for &v in &f.block(b).insts {
            match f.inst(v) {
                Some(Inst::CallIntrinsic { intr, args }) => match intr {
                    Intrinsic::Malloc if cfg.heap => sites.push(Site::MallocAfter {
                        call: v,
                        size: args[0],
                    }),
                    Intrinsic::Free if cfg.heap => sites.push(Site::FreeBefore {
                        call: v,
                        ptr: args[0],
                    }),
                    _ => {}
                },
                Some(Inst::Alloca(ty)) if cfg.stack => sites.push(Site::AllocaAfter {
                    slot: v,
                    size: ty.size(),
                }),
                Some(Inst::Store { ty, addr, .. }) if cfg.escapes && *ty == Type::Ptr => sites
                    .push(Site::EscapeAfter {
                        store: v,
                        dst: *addr,
                    }),
                _ => {}
            }
        }
    }
    for site in sites {
        match site {
            Site::MallocAfter { call, size } => {
                insert_after(
                    f,
                    call,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::TrackAlloc,
                        args: vec![call, size],
                    },
                );
                counts.heap_allocs += 1;
            }
            Site::FreeBefore { call, ptr } => {
                f.insert_before(
                    call,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::TrackFree,
                        args: vec![ptr],
                    },
                );
                counts.frees += 1;
            }
            Site::AllocaAfter { slot, size } => {
                let sz = insert_after(f, slot, Inst::Const(Const::Int(size as i64, IntTy::I64)));
                insert_after(
                    f,
                    sz,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::TrackAlloc,
                        args: vec![slot, sz],
                    },
                );
                counts.stack_allocs += 1;
            }
            Site::EscapeAfter { store, dst } => {
                insert_after(
                    f,
                    store,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::TrackEscape,
                        args: vec![dst],
                    },
                );
                counts.escapes += 1;
            }
        }
    }
    counts
}

/// Insert `inst` immediately after `after` within its block.
fn insert_after(f: &mut Function, after: ValueId, inst: Inst) -> ValueId {
    let b = f
        .block_of(after)
        .expect("insertion anchor must be an instruction");
    let pos = f
        .block(b)
        .insts
        .iter()
        .position(|&v| v == after)
        .expect("anchor present in its block");
    f.insert_at(b, pos + 1, inst)
}

/// Count tracking intrinsics currently present in `module`.
pub fn count_tracking(module: &Module) -> usize {
    module
        .func_ids()
        .map(|fid| {
            module
                .func(fid)
                .insts_in_layout_order()
                .filter(
                    |(_, _, i)| matches!(i, Inst::CallIntrinsic { intr, .. } if intr.is_track()),
                )
                .count()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{verify_module, ModuleBuilder};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let size = b.const_i64(128);
            let p = b.malloc(size);
            let slot = b.alloca(Type::Ptr);
            b.store(Type::Ptr, slot, p); // pointer escape
            let x = b.const_i64(1);
            b.store(Type::I64, p, x); // not an escape
            b.free(p);
            b.ret(Some(x));
        }
        mb.finish()
    }

    #[test]
    fn injects_all_callback_kinds() {
        let mut m = sample();
        let counts = inject_tracking(&mut m, TrackingConfig::default());
        let c = counts[0];
        assert_eq!(c.heap_allocs, 1);
        assert_eq!(c.frees, 1);
        assert_eq!(c.stack_allocs, 1);
        assert_eq!(c.escapes, 1, "only the pointer store escapes");
        assert_eq!(count_tracking(&m), 4);
        verify_module(&m).expect("instrumented module verifies");
    }

    #[test]
    fn track_alloc_follows_malloc() {
        let mut m = sample();
        inject_tracking(&mut m, TrackingConfig::default());
        let f = m.func(m.func_by_name("main").unwrap());
        let insts: Vec<_> = f
            .block(f.entry())
            .insts
            .iter()
            .map(|&v| f.inst(v).unwrap().clone())
            .collect();
        let malloc_pos = insts
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::Malloc,
                        ..
                    }
                )
            })
            .unwrap();
        assert!(matches!(
            &insts[malloc_pos + 1],
            Inst::CallIntrinsic {
                intr: Intrinsic::TrackAlloc,
                ..
            }
        ));
    }

    #[test]
    fn track_free_precedes_free() {
        let mut m = sample();
        inject_tracking(&mut m, TrackingConfig::default());
        let f = m.func(m.func_by_name("main").unwrap());
        let insts: Vec<_> = f
            .block(f.entry())
            .insts
            .iter()
            .map(|&v| f.inst(v).unwrap().clone())
            .collect();
        let free_pos = insts
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::Free,
                        ..
                    }
                )
            })
            .unwrap();
        assert!(matches!(
            &insts[free_pos - 1],
            Inst::CallIntrinsic {
                intr: Intrinsic::TrackFree,
                ..
            }
        ));
    }

    #[test]
    fn stack_tracking_can_be_disabled() {
        let mut m = sample();
        let counts = inject_tracking(
            &mut m,
            TrackingConfig {
                heap: true,
                stack: false,
                escapes: true,
            },
        );
        assert_eq!(counts[0].stack_allocs, 0);
        assert_eq!(count_tracking(&m), 3);
    }
}
