//! CARAT-specific guard optimizations (paper §4.1.1).
//!
//! * **Opt 1** — [`hoist`]: hoist guards with loop-invariant addresses out
//!   of loops (recursively, to the outermost loop possible), including call
//!   guards out of alloca-free loops.
//! * **Opt 2** — [`merge`]: replace per-iteration guards over affine
//!   induction-variable addresses with one range guard in the preheader,
//!   and merge statically adjacent same-block guards.
//! * **Opt 3** — [`redundancy`]: AC/DC — eliminate guards whose pointer
//!   definition was already validated on every path.

pub mod gvn;
pub mod hoist;
pub mod merge;
pub mod redundancy;

use carat_ir::ValueId;
use std::collections::HashMap;
use std::ops::AddAssign;

/// How a guard ended up after the optimization pipeline (Table 1 classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardClass {
    /// Still at its original position.
    Untouched,
    /// Hoisted out of at least one loop (Opt 1).
    Hoisted,
    /// Folded into a range guard (Opt 2).
    Merged,
    /// Eliminated as redundant (Opt 3).
    Eliminated,
}

/// Classification of every originally-injected guard in one function.
#[derive(Debug, Clone, Default)]
pub struct GuardClasses {
    map: HashMap<ValueId, GuardClass>,
}

impl GuardClasses {
    /// Record the original guard set; everything starts untouched.
    pub fn with_original(guards: &[ValueId]) -> GuardClasses {
        GuardClasses {
            map: guards.iter().map(|&g| (g, GuardClass::Untouched)).collect(),
        }
    }

    /// Mark `g` as affected by `class`. Later marks override earlier ones;
    /// guards introduced by the optimizer itself (e.g. range guards) are
    /// ignored, keeping the census over *original* guards only.
    pub fn mark(&mut self, g: ValueId, class: GuardClass) {
        if let Some(slot) = self.map.get_mut(&g) {
            *slot = class;
        }
    }

    /// The class of original guard `g`, if it is one.
    pub fn class_of(&self, g: ValueId) -> Option<GuardClass> {
        self.map.get(&g).copied()
    }

    /// Summarize into counts.
    pub fn census(&self) -> GuardCensus {
        let mut c = GuardCensus::default();
        for &cls in self.map.values() {
            c.total += 1;
            match cls {
                GuardClass::Untouched => c.untouched += 1,
                GuardClass::Hoisted => c.hoisted += 1,
                GuardClass::Merged => c.merged += 1,
                GuardClass::Eliminated => c.eliminated += 1,
            }
        }
        c
    }
}

/// Aggregated guard optimization counts — the raw material of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardCensus {
    /// Originally injected guards.
    pub total: usize,
    /// Never moved or removed.
    pub untouched: usize,
    /// Hoisted out of loops (Opt 1); still present statically.
    pub hoisted: usize,
    /// Folded into range guards (Opt 2); the replacements remain.
    pub merged: usize,
    /// Removed outright (Opt 3).
    pub eliminated: usize,
}

impl GuardCensus {
    /// Fraction of original guards statically remaining ("Opt. Guards").
    pub fn remaining_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.eliminated as f64 / self.total as f64
    }

    /// Fraction untouched ("Untouched Guards").
    pub fn untouched_fraction(&self) -> f64 {
        self.frac(self.untouched)
    }

    /// Fraction hoisted ("Opt. 1").
    pub fn hoisted_fraction(&self) -> f64 {
        self.frac(self.hoisted)
    }

    /// Fraction merged ("Opt. 2").
    pub fn merged_fraction(&self) -> f64 {
        self.frac(self.merged)
    }

    /// Fraction eliminated ("Opt. 3").
    pub fn eliminated_fraction(&self) -> f64 {
        self.frac(self.eliminated)
    }

    fn frac(&self, n: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 / self.total as f64
        }
    }
}

impl AddAssign for GuardCensus {
    fn add_assign(&mut self, o: GuardCensus) {
        self.total += o.total;
        self.untouched += o.untouched;
        self.hoisted += o.hoisted;
        self.merged += o.merged;
        self.eliminated += o.eliminated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_fractions() {
        let guards: Vec<ValueId> = (0..10).map(ValueId).collect();
        let mut cls = GuardClasses::with_original(&guards);
        cls.mark(ValueId(0), GuardClass::Hoisted);
        cls.mark(ValueId(1), GuardClass::Merged);
        cls.mark(ValueId(2), GuardClass::Eliminated);
        cls.mark(ValueId(3), GuardClass::Eliminated);
        let c = cls.census();
        assert_eq!(c.total, 10);
        assert_eq!(c.untouched, 6);
        assert!((c.remaining_fraction() - 0.8).abs() < 1e-9);
        assert!((c.eliminated_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn marks_ignore_foreign_guards() {
        let mut cls = GuardClasses::with_original(&[ValueId(1)]);
        cls.mark(ValueId(99), GuardClass::Eliminated);
        assert_eq!(cls.census().eliminated, 0);
    }

    #[test]
    fn add_assign_aggregates() {
        let mut a = GuardCensus {
            total: 5,
            untouched: 3,
            hoisted: 1,
            merged: 1,
            eliminated: 0,
        };
        a += GuardCensus {
            total: 5,
            untouched: 1,
            hoisted: 0,
            merged: 0,
            eliminated: 4,
        };
        assert_eq!(a.total, 10);
        assert_eq!(a.eliminated, 4);
        assert!((a.remaining_fraction() - 0.6).abs() < 1e-9);
    }
}
