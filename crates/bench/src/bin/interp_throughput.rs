//! Host-side interpreter throughput: wall-clock ns per retired IR
//! instruction and MIPS for the pre-decoded execution engine, with the
//! retained reference interpreter as the comparison point, across the
//! whole workload suite.
//!
//! Unlike every other experiment (which reports *simulated* cycles), this
//! one measures the *host* cost of simulation itself — the number the
//! decoded-engine refactor exists to improve. Workloads are compiled
//! uninstrumented (`Variant::Baseline`) so the timing isolates the
//! interpreter loop rather than the guard/tracking runtime it calls into.
//!
//! Usage: `interp_throughput [--scale test|small|full] [--only a,b]
//! [--reference] [--out PATH]`. `--reference` times only the reference
//! engine (for A/B runs); the default times both and reports the
//! speedup. Results are also written as JSON (default `BENCH_interp.json`).

use std::time::Instant;

use carat_bench::{compile, print_table, scale_from_args, selected_workloads, Variant};
use carat_ir::Module;
use carat_vm::{Engine, Vm, VmConfig};

/// Wall-clock one run; returns (elapsed ns, instructions retired).
fn time_run(module: Module, engine: Engine) -> (f64, u64) {
    let cfg = VmConfig {
        engine,
        ..VmConfig::default()
    };
    let vm = Vm::new(module, cfg).expect("load");
    let start = Instant::now();
    let r = vm.run().expect("run");
    let ns = start.elapsed().as_nanos() as f64;
    (ns, r.counters.instructions)
}

/// Best-of-N for both engines, reps interleaved so a noisy stretch of
/// host time degrades both measurements instead of biasing one.
fn best_of_pair(module: &Module, reps: usize, reference_only: bool) -> (f64, f64, u64) {
    let mut best_ref = f64::INFINITY;
    let mut best_dec = f64::INFINITY;
    let mut insts = 0;
    for _ in 0..reps {
        let (ns, n) = time_run(module.clone(), Engine::Reference);
        best_ref = best_ref.min(ns);
        insts = n;
        if reference_only {
            continue;
        }
        let (ns, n) = time_run(module.clone(), Engine::Decoded);
        best_dec = best_dec.min(ns);
        assert_eq!(insts, n, "engines disagree on instruction count");
    }
    if reference_only {
        best_dec = f64::NAN;
    }
    (best_ref, best_dec, insts)
}

struct Row {
    name: String,
    insts: u64,
    decoded_ns_per_inst: f64,
    decoded_mips: f64,
    reference_ns_per_inst: f64,
    reference_mips: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reference_only = args.iter().any(|a| a == "--reference");
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_interp.json".to_string());
    let scale = scale_from_args();
    let reps = 7;

    println!("Interpreter throughput ({scale:?} scale, best of {reps})\n");
    let mut rows: Vec<Row> = Vec::new();
    let selected = selected_workloads();
    if selected.is_empty() {
        eprintln!("error: --only matched no workloads");
        std::process::exit(2);
    }
    for w in selected {
        let m = compile(&w, scale, Variant::Baseline);
        let (ref_ns, dec_ns, insts) = best_of_pair(&m, reps, reference_only);
        let per = |ns: f64| ns / insts.max(1) as f64;
        let mips = |ns: f64| insts as f64 / (ns / 1e9) / 1e6;
        rows.push(Row {
            name: w.name.to_string(),
            insts,
            decoded_ns_per_inst: per(dec_ns),
            decoded_mips: mips(dec_ns),
            reference_ns_per_inst: per(ref_ns),
            reference_mips: mips(ref_ns),
        });
    }

    let mut table = Vec::new();
    let mut speedups = Vec::new();
    let mut at_least_2x = 0usize;
    for r in &rows {
        let speedup = r.decoded_mips / r.reference_mips;
        if speedup >= 2.0 {
            at_least_2x += 1;
        }
        speedups.push(speedup);
        let dec = |x: f64, suffix: &str| {
            if x.is_nan() {
                "-".to_string()
            } else if suffix.is_empty() {
                format!("{x:.1}")
            } else {
                format!("{x:.2}{suffix}")
            }
        };
        table.push(vec![
            r.name.clone(),
            format!("{}", r.insts),
            format!("{:.1}", r.reference_ns_per_inst),
            format!("{:.1}", r.reference_mips),
            dec(r.decoded_ns_per_inst, ""),
            dec(r.decoded_mips, ""),
            dec(speedup, "x"),
        ]);
    }
    print_table(
        &[
            "workload", "IR insts", "ref ns/i", "ref MIPS", "dec ns/i", "dec MIPS", "speedup",
        ],
        &table,
    );
    if !reference_only {
        println!(
            "\nGeomean speedup {:.2}x; >=2x on {}/{} workloads",
            carat_bench::geomean(&speedups),
            at_least_2x,
            rows.len()
        );
    }

    if reference_only {
        // A/B helper mode: no decoded numbers, so nothing to report —
        // and NaN fields would corrupt the JSON artifact.
        return;
    }
    // Hand-rolled JSON: no serde in the dependency closure.
    let mut json = String::from("{\n  \"scale\": \"");
    json.push_str(&format!("{scale:?}"));
    json.push_str("\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ir_instructions\": {}, \
             \"reference_ns_per_inst\": {:.3}, \"reference_mips\": {:.3}, \
             \"decoded_ns_per_inst\": {:.3}, \"decoded_mips\": {:.3}, \
             \"speedup\": {:.3}}}{}\n",
            r.name,
            r.insts,
            r.reference_ns_per_inst,
            r.reference_mips,
            r.decoded_ns_per_inst,
            r.decoded_mips,
            r.decoded_mips / r.reference_mips,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"geomean_speedup\": {:.3},\n  \"workloads_at_2x\": {}\n}}\n",
        carat_bench::geomean(&speedups),
        at_least_2x
    ));
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");
}
