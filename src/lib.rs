//! # carat-suite — facade over the CARAT reproduction
//!
//! A from-scratch Rust reproduction of *"CARAT: A Case for Virtual Memory
//! through Compiler- and Runtime-Based Address Translation"* (PLDI 2020).
//! Each subsystem lives in its own crate, re-exported here:
//!
//! * [`ir`] — the typed SSA IR ("LLVM bitcode" stand-in);
//! * [`analysis`] — dominators, loops, alias analysis, dataflow, SCEV;
//! * [`frontend`] — the Cm (C-subset) language;
//! * [`core`] — the CARAT compiler passes: guards, tracking, Opt 1/2/3,
//!   code signing;
//! * [`runtime`] — allocation table, escape map, region guards, the
//!   pointer-patching move engine;
//! * [`kernel`] — the simulated kernel: physical memory, loader, page
//!   mover, paging baseline;
//! * [`vm`] — the interpreter + cycle/TLB cost model;
//! * [`workloads`] — the benchmark suite.
//!
//! See `README.md` for a tour and `DESIGN.md` for the experiment index.
//!
//! ```
//! use carat_suite::frontend::compile_cm;
//! use carat_suite::core::{CaratCompiler, CompileOptions};
//! use carat_suite::vm::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile_cm("hello", "int main() { return 41 + 1; }")?;
//! let compiled = CaratCompiler::new(CompileOptions::default()).compile(module)?;
//! let result = Vm::new(compiled.module, VmConfig::default())?.run()?;
//! assert_eq!(result.ret, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use carat_analysis as analysis;
pub use carat_core as core;
pub use carat_frontend as frontend;
pub use carat_ir as ir;
pub use carat_kernel as kernel;
pub use carat_runtime as runtime;
pub use carat_vm as vm;
pub use carat_workloads as workloads;
