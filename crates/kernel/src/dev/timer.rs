//! CLINT-style timer device.
//!
//! Modeled after the RISC-V core-local interruptor: software writes a
//! deadline into `mtimecmp`, and the device raises a timer interrupt the
//! moment the cycle counter (`mtime`) reaches it. Here `mtime` is the
//! tenant's modeled cycle counter, so "the interrupt fires" means the
//! slice loop observes `cycles >= deadline` at its next safe point.
//!
//! The interesting measurement is **interrupt-to-dispatch latency**: the
//! interrupt is *raised* exactly at the deadline, but the scheduler can
//! only *dispatch* it once the tenant leaves its signals-masked windows
//! (pending escape processing, a fused instruction pair mid-flight). The
//! gap — in modeled cycles — is recorded per preemption, with a bounded
//! reservoir of samples for tail percentiles.

/// Cap on retained latency samples; beyond this the reservoir keeps
/// every k-th sample so long soaks stay bounded without losing the tail
/// shape entirely.
const SAMPLE_CAP: usize = 8192;

/// Aggregate timer statistics (monotone over the device's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStats {
    /// Deadlines armed.
    pub armed: u64,
    /// Interrupts dispatched (deadline reached and scheduler acted).
    pub dispatched: u64,
    /// Deadlines cancelled before firing (tenant finished or faulted).
    pub cancelled: u64,
    /// Sum of interrupt-to-dispatch latencies, in modeled cycles.
    pub latency_cycles: u64,
    /// Worst single interrupt-to-dispatch latency observed.
    pub latency_max: u64,
}

/// The timer device: one `mtimecmp` comparator plus latency accounting.
#[derive(Debug, Default)]
pub struct ClintTimer {
    /// Armed deadline in modeled cycles, `None` when disarmed.
    mtimecmp: Option<u64>,
    /// Lifetime stats.
    stats: TimerStats,
    /// Bounded reservoir of per-dispatch latencies for percentiles.
    samples: Vec<u64>,
    /// Decimation stride once the reservoir is full (keep every k-th).
    stride: u64,
    /// Dispatches seen since the last retained sample.
    since_kept: u64,
}

impl ClintTimer {
    /// A disarmed timer with empty stats.
    pub fn new() -> ClintTimer {
        ClintTimer {
            stride: 1,
            ..ClintTimer::default()
        }
    }

    /// Arm the comparator: the interrupt is pending once the tenant's
    /// cycle counter reaches `deadline`. Re-arming overwrites any
    /// previously armed deadline (CLINT semantics: one comparator).
    pub fn arm(&mut self, deadline: u64) {
        self.mtimecmp = Some(deadline);
        self.stats.armed += 1;
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<u64> {
        self.mtimecmp
    }

    /// Has the armed deadline been reached at cycle `now`?
    pub fn pending(&self, now: u64) -> bool {
        self.mtimecmp.is_some_and(|d| now >= d)
    }

    /// The scheduler acted on the interrupt at cycle `now`: record the
    /// interrupt-to-dispatch latency (`now - deadline`; the deferral the
    /// tenant's masked windows imposed) and disarm. Returns the latency.
    ///
    /// Calling this with no armed deadline is a scheduler bug in the
    /// making, but is tolerated as a zero-latency dispatch so chaos
    /// paths that race cancellation stay total.
    pub fn dispatch(&mut self, now: u64) -> u64 {
        let latency = match self.mtimecmp.take() {
            Some(d) => now.saturating_sub(d),
            None => 0,
        };
        self.stats.dispatched += 1;
        self.stats.latency_cycles += latency;
        self.stats.latency_max = self.stats.latency_max.max(latency);
        self.since_kept += 1;
        if self.since_kept >= self.stride {
            self.since_kept = 0;
            if self.samples.len() >= SAMPLE_CAP {
                // Decimate: keep every other retained sample and double
                // the stride, preserving a uniform thinning of history.
                let mut i = 0;
                self.samples.retain(|_| {
                    i += 1;
                    i % 2 == 0
                });
                self.stride *= 2;
            }
            self.samples.push(latency);
        }
        latency
    }

    /// Disarm without dispatching (tenant finished, faulted, or was
    /// killed before the deadline).
    pub fn cancel(&mut self) {
        if self.mtimecmp.take().is_some() {
            self.stats.cancelled += 1;
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> TimerStats {
        self.stats
    }

    /// Mean interrupt-to-dispatch latency in modeled cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.stats.dispatched == 0 {
            0.0
        } else {
            self.stats.latency_cycles as f64 / self.stats.dispatched as f64
        }
    }

    /// The `pct`-th percentile (0–100) of retained dispatch latencies.
    pub fn latency_percentile(&self, pct: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        let rank = ((pct / 100.0) * (s.len() - 1) as f64).round() as usize;
        s[rank.min(s.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_pending_dispatch_roundtrip() {
        let mut t = ClintTimer::new();
        assert!(!t.pending(u64::MAX), "disarmed timer never pends");
        t.arm(1000);
        assert!(!t.pending(999));
        assert!(t.pending(1000));
        let lat = t.dispatch(1040);
        assert_eq!(lat, 40);
        assert_eq!(t.deadline(), None, "dispatch disarms");
        let s = t.stats();
        assert_eq!((s.armed, s.dispatched, s.latency_cycles), (1, 1, 40));
        assert_eq!(s.latency_max, 40);
    }

    #[test]
    fn cancel_counts_once_and_disarms() {
        let mut t = ClintTimer::new();
        t.arm(10);
        t.cancel();
        t.cancel(); // no-op when disarmed
        assert_eq!(t.stats().cancelled, 1);
        assert!(!t.pending(u64::MAX));
    }

    #[test]
    fn rearm_overwrites() {
        let mut t = ClintTimer::new();
        t.arm(100);
        t.arm(50);
        assert_eq!(t.deadline(), Some(50));
        assert!(t.pending(60));
    }

    #[test]
    fn percentiles_track_tail() {
        let mut t = ClintTimer::new();
        for i in 0..100 {
            t.arm(0);
            t.dispatch(i); // latencies 0..100
        }
        assert_eq!(t.latency_percentile(0.0), 0);
        assert_eq!(t.latency_percentile(100.0), 99);
        let p99 = t.latency_percentile(99.0);
        assert!(p99 >= 95, "p99 of 0..100 should be near the top: {p99}");
        assert!((t.mean_latency() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn reservoir_stays_bounded() {
        let mut t = ClintTimer::new();
        for i in 0..(SAMPLE_CAP as u64 * 4) {
            t.arm(0);
            t.dispatch(i);
        }
        assert!(t.samples.len() <= SAMPLE_CAP + 1);
        assert_eq!(t.stats().dispatched, SAMPLE_CAP as u64 * 4);
        // Tail still visible after decimation.
        assert!(t.latency_percentile(100.0) > SAMPLE_CAP as u64 * 3);
    }
}
