//! AC/DC — *Address Checking for Data Custody* dataflow analysis.
//!
//! The paper's Opt 3: an available-expressions analysis where the
//! "expressions" are pointer definitions. `GEN[i]` is the pointer def whose
//! address instruction `i` validates (a guard, or a guarded access);
//! `KILL[i]` is the set of defs whose validation may no longer hold after
//! `i`. With SSA values a def is never overwritten, so kills arise only
//! from operations that can shrink the valid-region set: deallocation
//! (`free`) and calls into code that may free or remap (conservatively, all
//! user calls). At a join, availability is the *intersection* of the
//! predecessors (the def must be validated on every path).
//!
//! A memory instruction whose pointer def is available at its program point
//! needs no guard.

use crate::bitset::BitSet;
use crate::cfg::Cfg;
use carat_ir::{BlockId, Function, Inst, Intrinsic, ValueId};

/// Result of the AC/DC availability analysis.
#[derive(Debug, Clone)]
pub struct Availability {
    /// `IN[b]`: defs available at the head of each block.
    block_in: Vec<BitSet>,
    nvalues: usize,
}

/// What an instruction contributes to availability.
fn gen_of(inst: &Inst) -> Option<ValueId> {
    match inst {
        // Executing a guarded access (or an explicit guard) validates the
        // address def it uses.
        Inst::Load { addr, .. } | Inst::Store { addr, .. } => Some(*addr),
        Inst::CallIntrinsic {
            intr: Intrinsic::GuardLoad | Intrinsic::GuardStore,
            args,
        } => args.first().copied(),
        _ => None,
    }
}

/// Whether an instruction invalidates previously validated defs.
fn kills_all(inst: &Inst) -> bool {
    match inst {
        // A user call may free memory or trigger a region change.
        Inst::Call { .. } => true,
        Inst::CallIntrinsic { intr, .. } => matches!(intr, Intrinsic::Free),
        _ => false,
    }
}

impl Availability {
    /// Run the forward must-analysis to fixpoint.
    pub fn compute(f: &Function, cfg: &Cfg) -> Availability {
        let n = f.num_values();
        let nb = f.num_blocks();
        // Block transfer functions: (kills_all_flag, gen set in order).
        // We summarize each block by applying its instructions in order to
        // an input set.
        let entry = f.entry();
        let mut block_in: Vec<BitSet> = (0..nb)
            .map(|i| {
                if BlockId(i as u32) == entry {
                    BitSet::new(n)
                } else {
                    BitSet::full(n)
                }
            })
            .collect();
        let mut block_out: Vec<BitSet> = vec![BitSet::full(n); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                // IN = intersection of predecessor OUTs (entry: empty).
                let mut inp = if b == entry {
                    BitSet::new(n)
                } else {
                    let mut it = cfg.preds[b.index()].iter();
                    match it.next() {
                        None => BitSet::new(n),
                        Some(&p0) => {
                            let mut s = block_out[p0.index()].clone();
                            for &p in it {
                                s.intersect_with(&block_out[p.index()]);
                            }
                            s
                        }
                    }
                };
                if inp != block_in[b.index()] {
                    block_in[b.index()] = inp.clone();
                    changed = true;
                }
                // Apply block body.
                for &v in &f.block(b).insts {
                    if let Some(inst) = f.inst(v) {
                        if kills_all(inst) {
                            inp.clear();
                        }
                        if let Some(g) = gen_of(inst) {
                            inp.insert(g.index());
                        }
                    }
                }
                if inp != block_out[b.index()] {
                    block_out[b.index()] = inp;
                    changed = true;
                }
            }
        }
        Availability {
            block_in,
            nvalues: n,
        }
    }

    /// Availability set at the head of `b`.
    pub fn at_block_head(&self, b: BlockId) -> &BitSet {
        &self.block_in[b.index()]
    }

    /// Walk block `b` and report, for each instruction, whether the given
    /// pointer def is available *just before* it. Returns the set of
    /// instruction positions (indices into the block's inst list) whose
    /// `addr_of` def was already validated.
    pub fn available_positions(
        &self,
        f: &Function,
        b: BlockId,
        addr_of: impl Fn(&Inst) -> Option<ValueId>,
    ) -> Vec<usize> {
        let mut cur = self.block_in[b.index()].clone();
        let mut out = Vec::new();
        for (i, &v) in f.block(b).insts.iter().enumerate() {
            let Some(inst) = f.inst(v) else { continue };
            if let Some(a) = addr_of(inst) {
                if cur.contains(a.index()) {
                    out.push(i);
                }
            }
            if kills_all(inst) {
                cur.clear();
            }
            if let Some(g) = gen_of(inst) {
                cur.insert(g.index());
            }
        }
        debug_assert!(cur.capacity() == self.nvalues);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{ModuleBuilder, Pred, Type};

    /// Two consecutive accesses to the same pointer: the second is covered.
    #[test]
    fn second_access_to_same_def_is_available() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let p = b.arg(0);
            let x = b.load(Type::I64, p);
            let y = b.load(Type::I64, p);
            let s = b.add(x, y);
            b.ret(Some(s));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let avail = Availability::compute(f, &cfg);
        let pos = avail.available_positions(f, f.entry(), |i| match i {
            Inst::Load { addr, .. } => Some(*addr),
            _ => None,
        });
        // Block layout: [load, load, add, ret]; only the second load (pos 1)
        // sees the def already validated.
        assert_eq!(pos, vec![1]);
    }

    /// Availability must hold on *all* paths into a join.
    #[test]
    fn join_requires_validation_on_every_path() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I1], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let t = b.block("t");
            let fl = b.block("f");
            let j = b.block("join");
            b.switch_to(e);
            b.br(b.arg(1), t, fl);
            b.switch_to(t);
            let _ = b.load(Type::I64, b.arg(0)); // validates arg0 on this path only
            b.jmp(j);
            b.switch_to(fl);
            b.jmp(j);
            b.switch_to(j);
            let x = b.load(Type::I64, b.arg(0));
            b.ret(Some(x));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let avail = Availability::compute(f, &cfg);
        let join = BlockId(3);
        assert!(
            !avail.at_block_head(join).contains(f.arg(0).index()),
            "one unvalidated path means not available"
        );
    }

    /// A diamond where BOTH arms validate makes the join covered.
    #[test]
    fn join_covered_when_both_paths_validate() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I1], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let t = b.block("t");
            let fl = b.block("f");
            let j = b.block("join");
            b.switch_to(e);
            b.br(b.arg(1), t, fl);
            b.switch_to(t);
            let _ = b.load(Type::I64, b.arg(0));
            b.jmp(j);
            b.switch_to(fl);
            let _ = b.load(Type::I64, b.arg(0));
            b.jmp(j);
            b.switch_to(j);
            let x = b.load(Type::I64, b.arg(0));
            b.ret(Some(x));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let avail = Availability::compute(f, &cfg);
        assert!(avail.at_block_head(BlockId(3)).contains(f.arg(0).index()));
    }

    /// free() kills availability.
    #[test]
    fn free_kills_availability() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let p = b.arg(0);
            let _ = b.load(Type::I64, p);
            b.free(p);
            let x = b.load(Type::I64, p); // use-after-free: must be re-guarded
            b.ret(Some(x));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let avail = Availability::compute(f, &cfg);
        let pos = avail.available_positions(f, f.entry(), |i| match i {
            Inst::Load { addr, .. } => Some(*addr),
            _ => None,
        });
        assert!(pos.is_empty(), "free invalidates the earlier validation");
    }

    /// Loop: availability generated in the body covers later iterations
    /// once established on all paths into the header... but the entry path
    /// has no validation, so the header stays uncovered; within one body
    /// block, the second access is covered.
    #[test]
    fn loop_header_intersects_entry_path() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I64], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h = b.block("header");
            let body = b.block("body");
            let x = b.block("exit");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let v0 = b.load(Type::I64, b.arg(0));
            b.store(Type::I64, b.arg(0), v0);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(None);
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let avail = Availability::compute(f, &cfg);
        // Header head: entry path provides nothing.
        assert!(!avail.at_block_head(BlockId(1)).contains(f.arg(0).index()));
        // In the body, the store at position 1 follows the load of the same
        // def: available.
        let pos = avail.available_positions(f, BlockId(2), |i| match i {
            Inst::Store { addr, .. } => Some(*addr),
            _ => None,
        });
        assert_eq!(pos, vec![1]);
    }
}
