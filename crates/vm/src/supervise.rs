//! Tenant supervision: typed exit verdicts, restart policies with
//! exponential backoff, and the circuit breaker that turns a flapping
//! tenant into a quarantined one.
//!
//! The supervisor is the fleet's graceful-degradation brain. [`MultiVm`]
//! (the muscle) reports every terminal tenant outcome here as a typed
//! [`TenantExit`]; the supervisor decides — retire, restart after a
//! backoff, or quarantine — and logs the decision as a
//! [`SupervisionEvent`]. Restarts are *scheduled*, not immediate: a
//! lineage on its `k`-th restart waits `2^k` fleet slices (and is
//! charged `backoff_base_cycles << k` modeled cycles), so a tenant
//! dying in a tight loop backs off geometrically instead of consuming
//! the scheduler. After [`SupervisorConfig::max_restarts`] the circuit
//! breaker trips: the lineage is quarantined permanently and its
//! frames, quota, and capsule slot are reaped.
//!
//! Everything here is deterministic: verdicts are pure functions of the
//! exit and the lineage's restart count, and backoff is measured in
//! fleet slices, so a seeded chaos run replays bit-identically.
//!
//! Supervision time is deliberately *preemption-agnostic*: a "fleet
//! slice" is one scheduling turn regardless of what bounded it — the
//! historical instruction quantum ([`SchedSource::Quantum`]) or a
//! timer-interrupt cycle deadline ([`SchedSource::Timer`]). Nothing in
//! this module assumes a slice retired a fixed instruction count, so
//! backoff schedules replay identically under either scheduler.
//!
//! [`SchedSource::Quantum`]: crate::SchedSource::Quantum
//! [`SchedSource::Timer`]: crate::SchedSource::Timer
//!
//! [`MultiVm`]: crate::MultiVm

use std::fmt;
use std::rc::Rc;

use crate::machine::{VmConfig, VmError};
use carat_ir::Module;
use carat_kernel::{KernelError, Pid, ProtectionFault};

/// Restart-policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Restarts allowed per tenant lineage before the circuit breaker
    /// trips and the lineage is quarantined permanently.
    pub max_restarts: u32,
    /// Base restart backoff in modeled cycles: the `k`-th restart of a
    /// lineage is charged `backoff_base_cycles << k` and becomes due
    /// `2^k` fleet slices after the death.
    pub backoff_base_cycles: u64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: 3,
            backoff_base_cycles: 10_000,
        }
    }
}

/// Typed verdict on how a tenant left the fleet.
///
/// This is the supervision-layer view of a [`ProcOutcome`]: the
/// recoverable/fatal split is made explicit, because it drives the
/// restart-vs-quarantine decision. Error payloads are carried as their
/// rendered form — the full typed error stays with the tenant's
/// [`ProcReport`].
///
/// [`ProcOutcome`]: crate::ProcOutcome
/// [`ProcReport`]: crate::ProcReport
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantExit {
    /// `main` returned this value; normal retirement.
    Finished(i64),
    /// Killed by an isolation violation — a program bug, never
    /// restarted (it would fault again deterministically).
    Fault(ProtectionFault),
    /// A recoverable failure (transient OOM, an injected kernel fault
    /// that rolled back): eligible for restart.
    Recoverable(String),
    /// A non-recoverable failure (trap, step limit, unrecoverable
    /// kernel error): quarantined.
    Fatal(String),
    /// Its externalized capsule failed the checksum on rehydrate. The
    /// execution state is lost but the spawn image is not — recoverable
    /// via respawn-from-image.
    CapsuleCorrupt {
        /// The capsule device slot that failed verification.
        slot: u64,
    },
}

impl TenantExit {
    /// Map a VM error onto the supervision taxonomy.
    pub(crate) fn classify(e: &VmError) -> TenantExit {
        if let VmError::Kernel(KernelError::CapsuleCorrupt { slot }) = e {
            return TenantExit::CapsuleCorrupt { slot: *slot };
        }
        let recoverable = matches!(e, VmError::OutOfMemory)
            || matches!(e, VmError::Kernel(k) if k.is_recoverable());
        if recoverable {
            TenantExit::Recoverable(e.to_string())
        } else {
            TenantExit::Fatal(e.to_string())
        }
    }

    /// Whether this exit is eligible for a supervised restart.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            TenantExit::Recoverable(_) | TenantExit::CapsuleCorrupt { .. }
        )
    }
}

impl fmt::Display for TenantExit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantExit::Finished(ret) => write!(f, "finished({ret})"),
            TenantExit::Fault(p) => write!(f, "{p}"),
            TenantExit::Recoverable(m) => write!(f, "recoverable: {m}"),
            TenantExit::Fatal(m) => write!(f, "fatal: {m}"),
            TenantExit::CapsuleCorrupt { slot } => {
                write!(f, "capsule corrupt in device slot {slot}")
            }
        }
    }
}

/// What the supervisor decided to do about one [`TenantExit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Normal retirement; nothing to do.
    Retired,
    /// Permanently killed: an unrecoverable exit, or the circuit
    /// breaker tripped. Frames, quota, and capsule slot are reaped.
    Quarantined,
    /// A restart is scheduled.
    Restarting {
        /// Which restart of this lineage this is (0-based).
        attempt: u32,
        /// Fleet slice at which the respawn becomes due.
        due_slice: u64,
        /// Modeled cycles of backoff charged for this restart.
        backoff_cycles: u64,
    },
}

/// One supervision decision, in fleet-slice time.
#[derive(Debug)]
pub struct SupervisionEvent {
    /// Fleet slice at which the exit was observed.
    pub slice: u64,
    /// The tenant that exited.
    pub pid: Pid,
    /// Its name.
    pub name: String,
    /// How it exited.
    pub exit: TenantExit,
    /// What the supervisor decided.
    pub verdict: Verdict,
    /// Backfilled when a scheduled restart is admitted: the successor
    /// pid and the fleet slice it rejoined at. `None` for non-restart
    /// verdicts, or when the respawn itself was refused.
    pub respawned_as: Option<(Pid, u64)>,
}

/// A scheduled respawn waiting for its backoff to elapse.
pub(crate) struct PendingRestart {
    /// Index of the death event in [`Supervisor::events`], for
    /// backfilling `respawned_as`.
    pub(crate) event_idx: usize,
    /// The ancestor pid (for the give-up event if admission refuses).
    pub(crate) pid: Pid,
    /// Respawn-from-image spec: same name, module, and config the
    /// lineage was first admitted with.
    pub(crate) name: String,
    pub(crate) module: Rc<Module>,
    pub(crate) cfg: VmConfig,
    /// Restart count the successor starts with (ancestor's + 1), so
    /// the circuit breaker counts across respawns.
    pub(crate) attempt: u32,
    /// Fleet slice at which the respawn becomes due.
    pub(crate) due_slice: u64,
}

/// The fleet's restart/quarantine policy engine and decision log.
pub struct Supervisor {
    pub(crate) cfg: SupervisorConfig,
    /// Every decision taken, in slice order — the chaos bench's
    /// recovery-latency source.
    pub events: Vec<SupervisionEvent>,
    pub(crate) pending: Vec<PendingRestart>,
    /// Restarts scheduled so far.
    pub restarts: u64,
    /// Lineages permanently quarantined so far.
    pub quarantines: u64,
    /// Total modeled backoff cycles charged across all restarts.
    pub backoff_cycles: u64,
}

impl Supervisor {
    pub(crate) fn new(cfg: SupervisorConfig) -> Supervisor {
        Supervisor {
            cfg,
            events: Vec::new(),
            pending: Vec::new(),
            restarts: 0,
            quarantines: 0,
            backoff_cycles: 0,
        }
    }

    /// Decide and log. `attempt` is the restarts already consumed by
    /// this lineage; shifts are clamped so a hostile config cannot
    /// overflow.
    pub(crate) fn decide(
        &mut self,
        slice: u64,
        pid: Pid,
        name: &str,
        exit: TenantExit,
        attempt: u32,
    ) -> Verdict {
        let verdict = if matches!(exit, TenantExit::Finished(_)) {
            Verdict::Retired
        } else if exit.is_recoverable() && attempt < self.cfg.max_restarts {
            let k = attempt.min(32);
            let backoff_cycles = self.cfg.backoff_base_cycles << k;
            self.restarts += 1;
            self.backoff_cycles += backoff_cycles;
            Verdict::Restarting {
                attempt,
                due_slice: slice + (1u64 << k),
                backoff_cycles,
            }
        } else {
            self.quarantines += 1;
            Verdict::Quarantined
        };
        self.events.push(SupervisionEvent {
            slice,
            pid,
            name: name.to_string(),
            exit,
            verdict,
            respawned_as: None,
        });
        verdict
    }

    /// Whether any respawn is still waiting for its backoff.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Drain every pending restart whose backoff has elapsed at `slice`.
    pub(crate) fn take_due(&mut self, slice: u64) -> Vec<PendingRestart> {
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].due_slice <= slice {
                due.push(self.pending.remove(i));
            } else {
                i += 1;
            }
        }
        due
    }

    /// The earliest slice at which a pending respawn becomes due.
    pub fn next_due_slice(&self) -> Option<u64> {
        self.pending.iter().map(|p| p.due_slice).min()
    }
}
