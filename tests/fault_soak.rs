//! Fault-injection soak: every armed run either completes with counters
//! identical to its fault-free reference, or dies with a clean typed
//! error — and in *both* cases the machine passes a structural integrity
//! audit. Never a panic, never silent divergence.
//!
//! Faults are injected at the kernel's five [`FaultPoint`]s (destination
//! OOM, mid-move interruption, world-stop stalls, swap-read failures,
//! signature corruption) by deterministic seeded schedules, across the
//! workload × mode matrix.

use std::collections::HashMap;

use carat_suite::core::{CaratCompiler, CompileOptions, SigningKey};
use carat_suite::frontend::compile_cm;
use carat_suite::ir::Module;
use carat_suite::kernel::{FaultPlan, FaultPoint, LoadConfig, Pid};
use carat_suite::vm::{
    Mode, MoveDriverConfig, MultiVm, MultiVmConfig, PerfCounters, ProcOutcome, ProcReport,
    ProcSpec, RunResult, SupervisorConfig, SwapDriverConfig, Vm, VmConfig, VmError,
};

/// Pointer-chasing list traversal: every node holds an escape, so moves
/// and swaps do real patching work.
const LIST_SRC: &str = "
    struct node { int v; struct node* n; };
    int main() {
        struct node* head = (struct node*) null;
        for (int i = 0; i < 250; i += 1) {
            struct node* x = (struct node*) malloc(sizeof(struct node));
            x->v = i; x->n = head; head = x;
        }
        int got = 0;
        for (int pass = 0; pass < 8; pass += 1) {
            struct node* c = head;
            got = 0;
            while (c != null) { got += c->v; c = c->n; }
        }
        return got;
    }
";

/// Array-of-pointers indirection: a dense block of escape cells.
const CELLS_SRC: &str = "
    int main() {
        int n = 1500;
        int* a = (int*) malloc(n * sizeof(int));
        int** cells = (int**) malloc(n * sizeof(int*));
        for (int i = 0; i < n; i += 1) { a[i] = i; cells[i] = &a[i]; }
        int s = 0;
        for (int pass = 0; pass < 4; pass += 1) {
            for (int i = 0; i < n; i += 1) { s += *cells[i]; }
        }
        free(a); free(cells);
        return s % 1000000;
    }
";

fn build(name: &str, src: &str) -> Module {
    let module = compile_cm(name, src).expect("frontend");
    CaratCompiler::new(CompileOptions::default())
        .compile(module)
        .expect("carat")
        .module
}

/// Aggressive move + swap injection so kernel fault points are actually
/// reached (Traditional mode tracks nothing, so its drivers are inert —
/// which the soak also verifies: fault plans must not perturb it).
fn cfg(mode: Mode) -> VmConfig {
    VmConfig {
        mode,
        move_driver: Some(MoveDriverConfig {
            period_cycles: 25_000,
            max_moves: 40,
        }),
        swap_driver: Some(SwapDriverConfig {
            period_cycles: 60_000,
            max_swaps: 15,
        }),
        ..VmConfig::default()
    }
}

fn reference(module: &Module, mode: Mode) -> RunResult {
    Vm::new(module.clone(), cfg(mode))
        .expect("loads")
        .run()
        .expect("fault-free reference run completes")
}

/// The soak invariant, per run.
fn soak_one(tag: &str, module: &Module, mode: Mode, plan: FaultPlan, reference: &RunResult) {
    let config = VmConfig {
        fault_plan: Some(plan.clone()),
        ..cfg(mode)
    };
    let (result, report) = Vm::new(module.clone(), config)
        .expect("loads")
        .run_checked();
    // Whatever happened, the machine must audit clean.
    assert!(
        report.ok(),
        "[{tag}] integrity violated under {plan:?}: {:?}",
        report.violations
    );
    match result {
        Ok(r) => {
            assert_eq!(r.ret, reference.ret, "[{tag}] silent divergence: ret");
            assert_eq!(
                r.counters, reference.counters,
                "[{tag}] silent divergence: counters differ from fault-free run"
            );
        }
        Err(VmError::Kernel(e)) => {
            assert!(
                e.is_recoverable(),
                "[{tag}] injected fault escalated to a fatal kernel error: {e}"
            );
        }
        Err(other) => panic!("[{tag}] non-kernel failure under {plan:?}: {other}"),
    }
}

/// Explicit single-point schedules: each fault point, at its first (and
/// for moves also second) opportunity.
fn explicit_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("journal-only", FaultPlan::new()),
        (
            "oom@1",
            FaultPlan::new().arm_persistent(FaultPoint::MoveDstAlloc, 1),
        ),
        (
            "oom@3",
            FaultPlan::new().arm_persistent(FaultPoint::MoveDstAlloc, 3),
        ),
        ("midmove@1", FaultPlan::new().arm(FaultPoint::MidMove, 1)),
        ("midmove@2", FaultPlan::new().arm(FaultPoint::MidMove, 2)),
        (
            "stall@1",
            FaultPlan::new().arm(FaultPoint::WorldStopStall, 1),
        ),
        ("swapread@1", FaultPlan::new().arm(FaultPoint::SwapRead, 1)),
        (
            "combined",
            FaultPlan::new()
                .arm(FaultPoint::MidMove, 1)
                .arm(FaultPoint::SwapRead, 2),
        ),
    ]
}

#[test]
fn carat_survives_explicit_fault_schedule_on_list() {
    let module = build("soak_list", LIST_SRC);
    let reference = reference(&module, Mode::Carat);
    assert!(reference.counters.moves > 0, "drivers actually move pages");
    for (tag, plan) in explicit_plans() {
        soak_one(tag, &module, Mode::Carat, plan, &reference);
    }
}

#[test]
fn carat_survives_explicit_fault_schedule_on_cells() {
    let module = build("soak_cells", CELLS_SRC);
    let reference = reference(&module, Mode::Carat);
    assert!(
        reference.counters.swap_outs > 0,
        "drivers actually swap pages"
    );
    for (tag, plan) in explicit_plans() {
        soak_one(tag, &module, Mode::Carat, plan, &reference);
    }
}

#[test]
fn carat_survives_seeded_fault_schedules() {
    let module = build("soak_list", LIST_SRC);
    let reference = reference(&module, Mode::Carat);
    for seed in 1..=6u64 {
        let plan = FaultPlan::from_seed(seed);
        soak_one(
            &format!("seed{seed}"),
            &module,
            Mode::Carat,
            plan,
            &reference,
        );
    }
}

#[test]
fn traditional_mode_is_unperturbed_by_fault_plans() {
    // The traditional baseline tracks nothing and never moves pages, so
    // no kernel fault point is reachable: every armed run must complete
    // bit-identically to the fault-free one.
    let module = build("soak_cells", CELLS_SRC);
    let reference = reference(&module, Mode::Traditional);
    for seed in 1..=3u64 {
        let plan = FaultPlan::from_seed(seed);
        soak_one(
            &format!("trad-seed{seed}"),
            &module,
            Mode::Traditional,
            plan,
            &reference,
        );
    }
}

#[test]
fn corrupted_signed_image_is_rejected_at_load() {
    let key = SigningKey::from_passphrase("carat-cc", "fault-soak");
    let module = compile_cm("signed_soak", "int main() { return 7; }").unwrap();
    let compiled = CaratCompiler::new(CompileOptions {
        signing: Some(key.clone()),
        ..CompileOptions::default()
    })
    .compile(module)
    .unwrap();
    let signed = compiled.signed.expect("signed");
    let config = VmConfig {
        fault_plan: Some(FaultPlan::new().arm(FaultPoint::SignatureCorrupt, 1)),
        ..VmConfig::default()
    };
    let err = Vm::load_signed(&signed, vec![key.clone()], config).unwrap_err();
    assert!(
        matches!(err, VmError::Load(_)),
        "in-flight corruption must fail signature verification, got {err}"
    );
    // The image itself is intact: a fault-free load runs it.
    let r = Vm::load_signed(&signed, vec![key], VmConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r.ret, 7);
}

// ---------------------------------------------------------------------------
// Fleet soak: the same invariant under a shared-kernel [`MultiVm`].
//
// A fault plan armed on the fleet's shared kernel fires against whichever
// tenant's slice reaches the nth occurrence. Per tenant, the solo invariant
// carries over unchanged: either it finishes bit-identical to the same pid
// in a fault-free reference fleet, or it dies with a clean typed recoverable
// error — and bystander tenants must never notice either way.
// ---------------------------------------------------------------------------

/// A deterministic four-tenant mix: two pointer-chasing lists and two
/// escape-dense cell arrays, all in CARAT mode with aggressive drivers.
fn fleet_specs() -> Vec<ProcSpec> {
    let list = build("soak_list", LIST_SRC);
    let cells = build("soak_cells", CELLS_SRC);
    vec![
        ("list-0", &list),
        ("cells-1", &cells),
        ("list-2", &list),
        ("cells-3", &cells),
    ]
    .into_iter()
    .map(|(name, module)| ProcSpec {
        name: name.to_string(),
        module: module.clone(),
        cfg: VmConfig {
            // A default-sized load rounds to 64 MiB of buddy arena;
            // four of those fill the kernel exactly, leaving the move
            // and swap drivers nothing to allocate from. Size the fleet
            // like the fleet bench does: small loads, real headroom.
            load: LoadConfig {
                stack_size: 64 * 1024,
                heap_size: 256 * 1024,
                page_size: 4096,
            },
            ..cfg(Mode::Carat)
        },
    })
    .collect()
}

fn fleet_cfg(supervised: bool) -> MultiVmConfig {
    MultiVmConfig {
        supervisor: supervised.then(SupervisorConfig::default),
        // Private move-destination pools: a tenant's relocation
        // addresses must not depend on its neighbors' allocation
        // history, or the bystander bit-identity gate below could not
        // hold when a storm reshapes the fleet around a survivor.
        tenant_pool_pages: 256,
        ..MultiVmConfig::default()
    }
}

/// Reference facts from a fault-free fleet run: per-pid counters (load
/// addresses are deterministic, so original admissions match pid-for-pid)
/// and per-name return values (address-independent, so they also bind
/// supervised respawns).
struct FleetReference {
    by_pid: HashMap<Pid, (i64, PerfCounters)>,
    ret_by_name: HashMap<String, i64>,
}

fn fleet_reference(supervised: bool) -> FleetReference {
    let reports = MultiVm::new(fleet_specs(), fleet_cfg(supervised))
        .expect("admits")
        .run();
    let mut by_pid = HashMap::new();
    let mut ret_by_name = HashMap::new();
    for r in reports {
        let ProcOutcome::Finished(rr) = &r.outcome else {
            panic!("fault-free fleet reference: {} did not finish", r.name);
        };
        by_pid.insert(r.pid, (rr.ret, rr.counters.clone()));
        ret_by_name.insert(r.name, rr.ret);
    }
    FleetReference {
        by_pid,
        ret_by_name,
    }
}

/// The fleet soak invariant, per tenant report.
fn check_fleet_report(
    tag: &str,
    report: &ProcReport,
    reference: &FleetReference,
    armed: &[FaultPoint],
) {
    match &report.outcome {
        ProcOutcome::Finished(rr) => {
            if let Some((ret, counters)) = reference.by_pid.get(&report.pid) {
                // An original admission: bystander gate — bit-identical
                // to the fault-free fleet.
                assert_eq!(
                    rr.ret, *ret,
                    "[{tag}] {} ({}): ret diverged",
                    report.name, report.pid
                );
                assert_eq!(
                    &rr.counters, counters,
                    "[{tag}] {} ({}): bystander counters diverged from the fault-free fleet",
                    report.name, report.pid
                );
            } else {
                // A supervised respawn (fresh pid generation): its load
                // addresses differ, but the program's result must not.
                let want = reference.ret_by_name[&report.name];
                assert_eq!(
                    rr.ret, want,
                    "[{tag}] respawn {} ({}): wrong result",
                    report.name, report.pid
                );
            }
        }
        ProcOutcome::Fault(f) => {
            panic!(
                "[{tag}] {}: injected kernel fault escalated to an isolation fault: {f}",
                report.name
            )
        }
        ProcOutcome::Error(VmError::OutOfMemory) => {
            assert!(
                armed.contains(&FaultPoint::TenantOom),
                "[{tag}] {}: out-of-memory without an armed tenant-oom point",
                report.name
            );
        }
        ProcOutcome::Error(VmError::Kernel(e)) => {
            assert!(
                e.is_recoverable(),
                "[{tag}] {}: injected fault escalated to a fatal kernel error: {e}",
                report.name
            );
        }
        ProcOutcome::Error(other) => {
            panic!("[{tag}] {}: non-kernel failure: {other}", report.name)
        }
    }
}

fn fleet_soak(tag: &str, plan: FaultPlan, supervised: bool, reference: &FleetReference) {
    let armed = plan.armed_points();
    let mut mv = MultiVm::new(fleet_specs(), fleet_cfg(supervised)).expect("admits");
    mv.install_fault_plan(plan);
    let reports = mv.run();
    assert!(
        reports.len() >= 4,
        "[{tag}] every admission is accounted for (got {})",
        reports.len()
    );
    for report in &reports {
        check_fleet_report(tag, report, reference, &armed);
    }
}

#[test]
fn fleet_survives_explicit_fault_schedules() {
    let reference = fleet_reference(false);
    assert_eq!(reference.by_pid.len(), 4);
    for (tag, plan) in explicit_plans() {
        fleet_soak(tag, plan, false, &reference);
    }
}

#[test]
fn fleet_survives_seeded_chaos_storms_under_supervision() {
    // Chaos seeds arm the full fault-point set — including the capsule
    // and per-tenant points — and the supervisor restarts recoverable
    // deaths, so finished respawns appear alongside original pids.
    let reference = fleet_reference(true);
    for seed in 1..=6u64 {
        fleet_soak(
            &format!("chaos-seed{seed}"),
            FaultPlan::from_seed_chaos(seed),
            true,
            &reference,
        );
    }
}

#[test]
fn supervised_fleet_bookkeeping_is_consistent() {
    // Under a storm the supervisor's ledger must add up: every event is
    // a retire, a scheduled restart, or a quarantine, and the counters
    // match the event log exactly.
    let mut mv = MultiVm::new(fleet_specs(), fleet_cfg(true)).expect("admits");
    mv.install_fault_plan(FaultPlan::from_seed_chaos(3));
    mv.run_batch(u64::MAX);
    let sup = mv.supervisor().expect("supervision configured");
    let restarting = sup
        .events
        .iter()
        .filter(|e| matches!(e.verdict, carat_suite::vm::Verdict::Restarting { .. }))
        .count() as u64;
    let quarantined = sup
        .events
        .iter()
        .filter(|e| matches!(e.verdict, carat_suite::vm::Verdict::Quarantined))
        .count() as u64;
    assert_eq!(sup.restarts, restarting);
    assert_eq!(sup.quarantines, quarantined);
    assert!(
        !sup.has_pending(),
        "a drained fleet leaves no respawn waiting"
    );
}
