//! Figure 3 — run-time overhead of guard injection, normalized to the
//! uninstrumented baseline. `general` = generic optimizations only (3a);
//! `carat` = CARAT-specific optimizations (3b). Each mode reports both the
//! software range guard and the MPX-modeled guard.

use carat_bench::{
    arg_after_binary, compile, geomean, print_table, run, run_simple, scale_from_args,
    selected_workloads, Variant,
};
use carat_runtime::GuardImpl;

fn main() {
    let scale = scale_from_args();
    let mode = arg_after_binary("carat");
    let variant = match mode.as_str() {
        "general" => Variant::GuardsGeneral,
        "none" => Variant::GuardsNaive,
        _ => Variant::GuardsCarat,
    };
    println!(
        "Figure 3{}: guard overhead with {} optimizations ({scale:?} scale)\n",
        if variant == Variant::GuardsGeneral {
            "a"
        } else {
            "b"
        },
        mode
    );
    let mut rows = Vec::new();
    let (mut mpxs, mut ranges) = (Vec::new(), Vec::new());
    for w in selected_workloads() {
        let base = run_simple(&w, scale, Variant::Baseline);
        let m = compile(&w, scale, variant);
        let mpx = run(m.clone(), variant, GuardImpl::Mpx, None).expect("mpx run");
        let rng = run(m, variant, GuardImpl::BinarySearch, None).expect("range run");
        let o_mpx = mpx.counters.normalized_to(&base.counters);
        let o_rng = rng.counters.normalized_to(&base.counters);
        mpxs.push(o_mpx);
        ranges.push(o_rng);
        rows.push(vec![
            w.name.to_string(),
            "1.000".into(),
            format!("{o_mpx:.3}"),
            format!("{o_rng:.3}"),
            format!("{}", mpx.counters.guards_executed),
        ]);
    }
    rows.push(vec![
        "Geo. Mean".into(),
        "1.000".into(),
        format!("{:.3}", geomean(&mpxs)),
        format!("{:.3}", geomean(&ranges)),
        String::new(),
    ]);
    print_table(
        &[
            "benchmark",
            "Baseline",
            "MPX Guard",
            "Range Guard",
            "guards exec",
        ],
        &rows,
    );
}
