//! # carat-ir — the CARAT compiler's intermediate representation
//!
//! An LLVM-like, typed, SSA-form IR that the whole reproduction is built on:
//! the Cm front end lowers to it, the CARAT passes instrument and optimize
//! it, the VM interprets it, and the kernel loader consumes its textual
//! serialization ("bitcode") after signature validation.
//!
//! The IR deliberately exposes exactly the surface the CARAT paper's
//! transformations need: *memory instructions* ([`Inst::Load`],
//! [`Inst::Store`], [`Inst::Alloca`]), *call instructions* ([`Inst::Call`]),
//! address computation ([`Inst::PtrAdd`], [`Inst::FieldAddr`]), and the
//! CARAT intrinsics ([`Intrinsic`]) injected by the instrumentation passes.
//!
//! ## Example
//!
//! ```
//! use carat_ir::{ModuleBuilder, Type, verify_module, print_module, parse_module};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new("demo");
//! let f = mb.declare("main", vec![], Some(Type::I64));
//! {
//!     let mut b = mb.define(f);
//!     let entry = b.block("entry");
//!     b.switch_to(entry);
//!     let forty_two = b.const_i64(42);
//!     b.ret(Some(forty_two));
//! }
//! let module = mb.finish();
//! verify_module(&module)?;
//! let text = print_module(&module);
//! let reparsed = parse_module(&text)?;
//! assert_eq!(print_module(&reparsed), text);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod func;
mod inst;
mod module;
mod parse;
mod print;
mod types;
mod verify;

pub use builder::{FuncBuilder, ModuleBuilder};
pub use func::{Block, Function, ValueDef};
pub use inst::{
    BinOp, BlockId, CastKind, Const, FuncId, GlobalId, Inst, Intrinsic, Opcode, Pred, ValueId,
};
pub use module::{Global, GlobalInit, Module};
pub use parse::{parse_module, ParseError};
pub use print::{module_bytes, print_module};
pub use types::{round_up, IntTy, Type};
pub use verify::{verify_func, verify_module, VerifyError};
