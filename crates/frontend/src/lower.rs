//! Lowering from the Cm AST to CARAT IR, with on-the-fly SSA construction
//! (the algorithm of Braun et al., "Simple and Efficient Construction of
//! Static Single Assignment Form").
//!
//! Scalar locals whose address is never taken become SSA values — which is
//! what lets the CARAT guard optimizations (loop-invariance, scalar
//! evolution) see through frontend-generated code. Address-taken locals,
//! arrays and structs live in allocas.

use crate::ast::*;
use carat_ir::{
    BinOp, BlockId, CastKind, FuncBuilder, FuncId, GlobalId, GlobalInit, Inst, Intrinsic, Module,
    ModuleBuilder, Pred, Type, ValueId,
};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Lowering / type-checking failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// 1-based source line.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at line {}: {}", self.line, self.message)
    }
}

impl Error for LowerError {}

type Result<T> = std::result::Result<T, LowerError>;

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T> {
    Err(LowerError {
        line,
        message: msg.into(),
    })
}

/// Compile a parsed program into an IR module named `name`.
///
/// # Errors
///
/// Type errors, unknown identifiers, and unsupported constructs produce a
/// [`LowerError`] with the offending source line.
pub fn lower_program(name: &str, prog: &Program) -> Result<Module> {
    // Struct table (order matters for recursive references through Ptr).
    let mut structs: HashMap<String, Vec<(CmType, String)>> = HashMap::new();
    for s in &prog.structs {
        structs.insert(s.name.clone(), s.fields.clone());
    }
    let ctx_structs = structs;

    let mut mb = ModuleBuilder::new(name);
    // Globals.
    let mut globals: HashMap<String, (GlobalId, CmType)> = HashMap::new();
    for g in &prog.globals {
        let ir_ty = ir_type(&g.ty, &ctx_structs, g.line)?;
        let init = match &g.init {
            None => GlobalInit::Zero,
            Some(lits) => global_init(&g.ty, lits, g.line)?,
        };
        let gid = mb.global(g.name.clone(), ir_ty, init);
        globals.insert(g.name.clone(), (gid, g.ty.clone()));
    }
    // Function signatures.
    let mut funcs: HashMap<String, (FuncId, Vec<CmType>, CmType)> = HashMap::new();
    for f in &prog.funcs {
        let params: Vec<Type> = f
            .params
            .iter()
            .map(|(t, _)| ir_type(t, &ctx_structs, f.line))
            .collect::<Result<_>>()?;
        let ret = match &f.ret {
            CmType::Void => None,
            t => Some(ir_type(t, &ctx_structs, f.line)?),
        };
        let fid = mb.declare(f.name.clone(), params, ret);
        funcs.insert(
            f.name.clone(),
            (
                fid,
                f.params.iter().map(|(t, _)| t.clone()).collect(),
                f.ret.clone(),
            ),
        );
    }
    let ctx = Ctx {
        structs: ctx_structs,
        globals,
        funcs,
    };
    // Bodies.
    for f in &prog.funcs {
        let fid = ctx.funcs[&f.name].0;
        {
            let mut fl = FnLower::new(&ctx, mb.define(fid), f)?;
            fl.lower_body()?;
        }
        cleanup_trivial_phis(mb_func(&mut mb, fid));
    }
    let module = mb.finish();
    carat_ir::verify_module(&module).map_err(|e| LowerError {
        line: 0,
        message: format!("internal: lowered module failed verification: {e}"),
    })?;
    Ok(module)
}

fn mb_func(mb: &mut ModuleBuilder, fid: FuncId) -> &mut carat_ir::Function {
    mb.func_mut(fid)
}

/// The Cm compilation context shared by all function lowerings.
struct Ctx {
    structs: HashMap<String, Vec<(CmType, String)>>,
    globals: HashMap<String, (GlobalId, CmType)>,
    funcs: HashMap<String, (FuncId, Vec<CmType>, CmType)>,
}

impl Ctx {
    fn struct_fields(&self, name: &str, line: usize) -> Result<&Vec<(CmType, String)>> {
        self.structs.get(name).ok_or_else(|| LowerError {
            line,
            message: format!("unknown struct `{name}`"),
        })
    }
}

/// Map a Cm type to its IR type.
fn ir_type(
    t: &CmType,
    structs: &HashMap<String, Vec<(CmType, String)>>,
    line: usize,
) -> Result<Type> {
    Ok(match t {
        CmType::Int => Type::I64,
        CmType::Char => Type::I8,
        CmType::Bool => Type::I1,
        CmType::Double => Type::F64,
        CmType::Ptr(_) => Type::Ptr,
        CmType::Void => return err(line, "void has no IR representation"),
        CmType::Struct(name) => {
            let fields = structs.get(name).ok_or_else(|| LowerError {
                line,
                message: format!("unknown struct `{name}`"),
            })?;
            Type::Struct(
                fields
                    .iter()
                    .map(|(ft, _)| ir_type(ft, structs, line))
                    .collect::<Result<_>>()?,
            )
        }
        CmType::Array(elem, n) => Type::Array(Box::new(ir_type(elem, structs, line)?), *n),
    })
}

fn global_init(ty: &CmType, lits: &[GlobalLit], line: usize) -> Result<GlobalInit> {
    let elem = match ty {
        CmType::Array(e, _) => e.as_ref(),
        other => other,
    };
    match elem {
        CmType::Int => Ok(GlobalInit::I64s(
            lits.iter()
                .map(|l| match l {
                    GlobalLit::Int(v) => Ok(*v),
                    GlobalLit::Float(_) => err(line, "float literal in int initializer"),
                })
                .collect::<Result<_>>()?,
        )),
        CmType::Double => Ok(GlobalInit::F64s(
            lits.iter()
                .map(|l| match l {
                    GlobalLit::Float(v) => Ok(*v),
                    GlobalLit::Int(v) => Ok(*v as f64),
                })
                .collect::<Result<_>>()?,
        )),
        other => err(
            line,
            format!("initializers unsupported for {other:?} globals"),
        ),
    }
}

/// How a variable is stored.
#[derive(Debug, Clone)]
enum Storage {
    /// SSA variable slot.
    Ssa(u32),
    /// Stack slot (alloca result).
    Stack(ValueId),
}

#[derive(Debug, Clone)]
struct Variable {
    storage: Storage,
    ty: CmType,
}

/// A value with its Cm type.
#[derive(Debug, Clone)]
struct TV {
    v: ValueId,
    ty: CmType,
}

/// An assignable place.
enum Place {
    Ssa(u32, CmType),
    Mem(ValueId, CmType),
}

struct FnLower<'c, 'm> {
    ctx: &'c Ctx,
    b: FuncBuilder<'m>,
    def: &'c FuncDef,
    scopes: Vec<HashMap<String, Variable>>,
    addr_taken: HashSet<String>,
    // SSA construction state.
    var_types: Vec<CmType>,
    current_def: HashMap<(u32, BlockId), ValueId>,
    incomplete: HashMap<BlockId, Vec<(u32, ValueId)>>,
    sealed: HashSet<BlockId>,
    // Loop targets: (break_to, continue_to).
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl<'c, 'm> FnLower<'c, 'm> {
    fn new(ctx: &'c Ctx, mut b: FuncBuilder<'m>, def: &'c FuncDef) -> Result<FnLower<'c, 'm>> {
        let entry = b.block("entry");
        b.switch_to(entry);
        let mut fl = FnLower {
            ctx,
            b,
            def,
            scopes: vec![HashMap::new()],
            addr_taken: collect_addr_taken(&def.body),
            var_types: Vec::new(),
            current_def: HashMap::new(),
            incomplete: HashMap::new(),
            sealed: HashSet::new(),
            loop_stack: Vec::new(),
        };
        fl.sealed.insert(entry);
        // Bind parameters.
        for (i, (pty, pname)) in def.params.iter().enumerate() {
            let arg = fl.b.arg(i);
            if fl.addr_taken.contains(pname) {
                let ir = ir_type(pty, &fl.ctx.structs, def.line)?;
                let slot = fl.b.alloca(ir.clone());
                fl.b.store(ir, slot, arg);
                fl.declare_var(
                    pname.clone(),
                    Variable {
                        storage: Storage::Stack(slot),
                        ty: pty.clone(),
                    },
                );
            } else {
                let var = fl.new_ssa_var(pty.clone());
                let blk = fl.b.current();
                fl.write_var(var, blk, arg);
                fl.declare_var(
                    pname.clone(),
                    Variable {
                        storage: Storage::Ssa(var),
                        ty: pty.clone(),
                    },
                );
            }
        }
        Ok(fl)
    }

    fn lower_body(&mut self) -> Result<()> {
        let body = self.def.body.clone();
        self.stmts(&body)?;
        // Fall off the end: implicit return.
        if !self.b.is_terminated() {
            match &self.def.ret {
                CmType::Void => self.b.ret(None),
                CmType::Int | CmType::Char | CmType::Bool => {
                    let z = self.zero_of(&self.def.ret.clone());
                    self.b.ret(Some(z));
                }
                CmType::Double => {
                    let z = self.b.const_f64(0.0);
                    self.b.ret(Some(z));
                }
                _ => {
                    let z = self.b.null();
                    self.b.ret(Some(z));
                }
            }
        }
        Ok(())
    }

    // ---- variables & SSA ------------------------------------------------

    fn new_ssa_var(&mut self, ty: CmType) -> u32 {
        self.var_types.push(ty);
        (self.var_types.len() - 1) as u32
    }

    fn declare_var(&mut self, name: String, v: Variable) {
        self.scopes.last_mut().expect("scope").insert(name, v);
    }

    fn lookup(&self, name: &str, line: usize) -> Result<Variable> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(v.clone());
            }
        }
        err(line, format!("unknown variable `{name}`"))
    }

    fn write_var(&mut self, var: u32, block: BlockId, val: ValueId) {
        self.current_def.insert((var, block), val);
    }

    fn read_var(&mut self, var: u32, block: BlockId) -> ValueId {
        if let Some(&v) = self.current_def.get(&(var, block)) {
            return v;
        }
        let val = if !self.sealed.contains(&block) {
            // Incomplete CFG: placeholder phi filled at seal time.
            let phi = self.insert_phi(block, &self.var_types[var as usize].clone());
            self.incomplete.entry(block).or_default().push((var, phi));
            phi
        } else {
            let preds = self.b.func().predecessors()[block.index()].clone();
            match preds.len() {
                0 => self.zero_of(&self.var_types[var as usize].clone()),
                1 => self.read_var(var, preds[0]),
                _ => {
                    // Break cycles with a self-referencing placeholder.
                    let phi = self.insert_phi(block, &self.var_types[var as usize].clone());
                    self.write_var(var, block, phi);
                    for p in preds {
                        let v = self.read_var(var, p);
                        if let Some(Inst::Phi { incomings, .. }) = self.b.func_mut_inst(phi) {
                            incomings.push((p, v));
                        }
                    }
                    phi
                }
            }
        };
        self.write_var(var, block, val);
        val
    }

    fn seal_block(&mut self, block: BlockId) {
        if !self.sealed.insert(block) {
            return;
        }
        if let Some(pending) = self.incomplete.remove(&block) {
            let preds = self.b.func().predecessors()[block.index()].clone();
            for (var, phi) in pending {
                for &p in &preds {
                    let v = self.read_var(var, p);
                    if let Some(Inst::Phi { incomings, .. }) = self.b.func_mut_inst(phi) {
                        incomings.push((p, v));
                    }
                }
            }
        }
    }

    /// Insert an empty phi at the head of `block` (after existing phis).
    fn insert_phi(&mut self, block: BlockId, ty: &CmType) -> ValueId {
        let ir = scalar_ir(ty);
        let pos = self
            .b
            .func()
            .block(block)
            .insts
            .iter()
            .take_while(|&&v| matches!(self.b.func().inst(v), Some(Inst::Phi { .. })))
            .count();
        self.b.insert_phi_at(block, pos, ir)
    }

    fn zero_of(&mut self, ty: &CmType) -> ValueId {
        match ty {
            CmType::Int => self.b.const_i64(0),
            CmType::Char => self.b.const_i8(0),
            CmType::Bool => self.b.const_bool(false),
            CmType::Double => self.b.const_f64(0.0),
            _ => self.b.null(),
        }
    }

    // ---- statements -----------------------------------------------------

    fn stmts(&mut self, list: &[Stmt]) -> Result<()> {
        for s in list {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn in_scope(&mut self, f: impl FnOnce(&mut Self) -> Result<()>) -> Result<()> {
        self.scopes.push(HashMap::new());
        let r = f(self);
        self.scopes.pop();
        r
    }

    /// If the current block already ended, open a dead block so lowering
    /// can continue (code after `return`).
    fn ensure_open(&mut self) {
        if self.b.is_terminated() {
            let dead = self.b.block("dead");
            self.sealed.insert(dead);
            self.b.switch_to(dead);
        }
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        self.ensure_open();
        match s {
            Stmt::Decl {
                ty,
                name,
                init,
                line,
            } => self.lower_decl(ty, name, init.as_ref(), *line),
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::Block(body) => self.in_scope(|fl| fl.stmts(body)),
            Stmt::Return(e, line) => {
                match (&self.def.ret, e) {
                    (CmType::Void, None) => self.b.ret(None),
                    (CmType::Void, Some(_)) => {
                        return err(*line, "returning a value from a void function")
                    }
                    (_, None) => return err(*line, "missing return value"),
                    (rt, Some(e)) => {
                        let rt = rt.clone();
                        let tv = self.expr(e)?;
                        let v = self.convert(tv, &rt, *line)?;
                        self.b.ret(Some(v.v));
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => self.lower_if(cond, then_body, else_body),
            Stmt::While { cond, body } => self.lower_while(cond, body),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => self.in_scope(|fl| {
                if let Some(i) = init {
                    fl.stmt(i)?;
                }
                fl.lower_loop(cond.as_ref(), step.as_ref(), body)
            }),
            Stmt::Break(line) => {
                let (brk, _) = *self.loop_stack.last().ok_or_else(|| LowerError {
                    line: *line,
                    message: "break outside loop".into(),
                })?;
                self.b.jmp(brk);
                Ok(())
            }
            Stmt::Continue(line) => {
                let (_, cont) = *self.loop_stack.last().ok_or_else(|| LowerError {
                    line: *line,
                    message: "continue outside loop".into(),
                })?;
                self.b.jmp(cont);
                Ok(())
            }
        }
    }

    fn lower_decl(
        &mut self,
        ty: &CmType,
        name: &str,
        init: Option<&Expr>,
        line: usize,
    ) -> Result<()> {
        let needs_stack =
            self.addr_taken.contains(name) || matches!(ty, CmType::Array(..) | CmType::Struct(_));
        if needs_stack {
            let ir = ir_type(ty, &self.ctx.structs, line)?;
            let slot = self.b.alloca(ir.clone());
            if let Some(e) = init {
                if ir.is_scalar() {
                    let tv = self.expr(e)?;
                    let cv = self.convert(tv, ty, line)?;
                    self.b.store(ir, slot, cv.v);
                } else {
                    return err(line, "aggregate initializers are not supported");
                }
            }
            self.declare_var(
                name.to_string(),
                Variable {
                    storage: Storage::Stack(slot),
                    ty: ty.clone(),
                },
            );
        } else {
            let var = self.new_ssa_var(ty.clone());
            let val = match init {
                Some(e) => {
                    let tv = self.expr(e)?;
                    self.convert(tv, ty, line)?.v
                }
                None => self.zero_of(ty),
            };
            let blk = self.b.current();
            self.write_var(var, blk, val);
            self.declare_var(
                name.to_string(),
                Variable {
                    storage: Storage::Ssa(var),
                    ty: ty.clone(),
                },
            );
        }
        Ok(())
    }

    fn lower_if(&mut self, cond: &Expr, then_body: &[Stmt], else_body: &[Stmt]) -> Result<()> {
        let c = self.cond_bool(cond)?;
        let then_bb = self.b.block("if.then");
        let else_bb = self.b.block("if.else");
        let join = self.b.block("if.join");
        self.b.br(c, then_bb, else_bb);
        self.sealed.insert(then_bb);
        self.sealed.insert(else_bb);

        self.b.switch_to(then_bb);
        self.in_scope(|fl| fl.stmts(then_body))?;
        if !self.b.is_terminated() {
            self.b.jmp(join);
        }
        self.b.switch_to(else_bb);
        self.in_scope(|fl| fl.stmts(else_body))?;
        if !self.b.is_terminated() {
            self.b.jmp(join);
        }
        self.seal_block(join);
        self.b.switch_to(join);
        // A join with no predecessors (both arms returned) stays as a dead
        // block; terminate it so verification passes.
        if self.b.func().predecessors()[join.index()].is_empty() {
            self.b.push(Inst::Unreachable);
            let dead = self.b.block("dead");
            self.sealed.insert(dead);
            self.b.switch_to(dead);
        }
        Ok(())
    }

    fn lower_while(&mut self, cond: &Expr, body: &[Stmt]) -> Result<()> {
        self.lower_loop(Some(cond), None, body)
    }

    /// Shared loop shape for `while` and `for`.
    fn lower_loop(
        &mut self,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &[Stmt],
    ) -> Result<()> {
        let header = self.b.block("loop.header");
        let body_bb = self.b.block("loop.body");
        let step_bb = self.b.block("loop.step");
        let exit = self.b.block("loop.exit");
        self.b.jmp(header);

        // Header: unsealed until every latch is known.
        self.b.switch_to(header);
        let c = match cond {
            Some(e) => self.cond_bool(e)?,
            None => self.b.const_bool(true),
        };
        self.b.br(c, body_bb, exit);
        self.sealed.insert(body_bb);

        self.loop_stack.push((exit, step_bb));
        self.b.switch_to(body_bb);
        self.in_scope(|fl| fl.stmts(body))?;
        if !self.b.is_terminated() {
            self.b.jmp(step_bb);
        }
        self.loop_stack.pop();

        // Step block: preds now final (body fallthrough + continues).
        self.seal_block(step_bb);
        self.b.switch_to(step_bb);
        if self.b.func().predecessors()[step_bb.index()].is_empty() {
            // Body always breaks/returns: the step is dead.
            self.b.push(Inst::Unreachable);
        } else {
            if let Some(e) = step {
                self.expr(e)?;
            }
            self.b.jmp(header);
        }
        self.seal_block(header);
        self.seal_block(exit);
        self.b.switch_to(exit);
        Ok(())
    }

    fn cond_bool(&mut self, e: &Expr) -> Result<ValueId> {
        let tv = self.expr(e)?;
        self.coerce_bool(tv, e.line)
    }

    fn coerce_bool(&mut self, tv: TV, line: usize) -> Result<ValueId> {
        Ok(match &tv.ty {
            CmType::Bool => tv.v,
            CmType::Int | CmType::Char => {
                let z = self.zero_of(&tv.ty);
                self.b.icmp(Pred::Ne, tv.v, z)
            }
            CmType::Double => {
                let z = self.b.const_f64(0.0);
                self.b.fcmp(Pred::Ne, tv.v, z)
            }
            CmType::Ptr(_) => {
                let z = self.b.null();
                self.b.icmp(Pred::Ne, tv.v, z)
            }
            other => return err(line, format!("cannot use {other:?} as a condition")),
        })
    }

    // ---- places ---------------------------------------------------------

    fn place(&mut self, e: &Expr) -> Result<Place> {
        match &e.kind {
            ExprKind::Var(name) => {
                let var = self.lookup(name, e.line);
                match var {
                    Ok(v) => Ok(match v.storage {
                        Storage::Ssa(slot) => Place::Ssa(slot, v.ty),
                        Storage::Stack(addr) => Place::Mem(addr, v.ty),
                    }),
                    Err(_) => {
                        // Global?
                        let (gid, gty) = self
                            .ctx
                            .globals
                            .get(name)
                            .ok_or_else(|| LowerError {
                                line: e.line,
                                message: format!("unknown variable `{name}`"),
                            })?
                            .clone();
                        let addr = self.b.global_addr(gid);
                        Ok(Place::Mem(addr, gty))
                    }
                }
            }
            ExprKind::Deref(inner) => {
                let tv = self.expr(inner)?;
                match tv.ty.clone() {
                    CmType::Ptr(p) => Ok(Place::Mem(tv.v, *p)),
                    other => err(e.line, format!("cannot dereference {other:?}")),
                }
            }
            ExprKind::Index(base, idx) => {
                let base_tv = self.expr(base)?;
                let elem = match base_tv.ty.clone() {
                    CmType::Ptr(p) => *p,
                    other => return err(e.line, format!("cannot index {other:?}")),
                };
                let idx_tv = self.expr(idx)?;
                let i = self.convert(idx_tv, &CmType::Int, e.line)?;
                let ir_elem = ir_type(&elem, &self.ctx.structs, e.line)?;
                let addr = self.b.ptr_add(base_tv.v, i.v, ir_elem);
                Ok(Place::Mem(addr, elem))
            }
            ExprKind::Field { base, field, arrow } => {
                let (base_addr, sname) = if *arrow {
                    let tv = self.expr(base)?;
                    match tv.ty.clone() {
                        CmType::Ptr(inner) => match *inner {
                            CmType::Struct(n) => (tv.v, n),
                            other => {
                                return err(e.line, format!("`->` on non-struct pointer {other:?}"))
                            }
                        },
                        other => return err(e.line, format!("`->` on {other:?}")),
                    }
                } else {
                    match self.place(base)? {
                        Place::Mem(addr, CmType::Struct(n)) => (addr, n),
                        Place::Mem(_, other) => {
                            return err(e.line, format!("`.` on non-struct {other:?}"))
                        }
                        Place::Ssa(..) => {
                            return err(
                                e.line,
                                "`.` on a register variable (structs live in memory)",
                            )
                        }
                    }
                };
                let fields = self.ctx.struct_fields(&sname, e.line)?.clone();
                let idx = fields
                    .iter()
                    .position(|(_, fname)| fname == field)
                    .ok_or_else(|| LowerError {
                        line: e.line,
                        message: format!("struct `{sname}` has no field `{field}`"),
                    })?;
                let st_ir = ir_type(&CmType::Struct(sname), &self.ctx.structs, e.line)?;
                let addr = self.b.field_addr(base_addr, st_ir, idx as u32);
                Ok(Place::Mem(addr, fields[idx].0.clone()))
            }
            _ => err(e.line, "expression is not assignable"),
        }
    }

    /// Read a place as an rvalue (loads from memory; arrays decay).
    fn load_place(&mut self, p: Place, line: usize) -> Result<TV> {
        match p {
            Place::Ssa(var, ty) => {
                let blk = self.b.current();
                let v = self.read_var(var, blk);
                Ok(TV { v, ty })
            }
            Place::Mem(addr, ty) => match &ty {
                CmType::Array(elem, _) => Ok(TV {
                    v: addr,
                    ty: CmType::ptr((**elem).clone()),
                }),
                CmType::Struct(_) => Ok(TV { v: addr, ty }),
                scalar => {
                    let ir = ir_type(scalar, &self.ctx.structs, line)?;
                    let v = self.b.load(ir, addr);
                    Ok(TV { v, ty })
                }
            },
        }
    }

    fn store_place(&mut self, p: &Place, val: TV, line: usize) -> Result<TV> {
        match p {
            Place::Ssa(var, ty) => {
                let cv = self.convert(val, ty, line)?;
                let blk = self.b.current();
                self.write_var(*var, blk, cv.v);
                Ok(cv)
            }
            Place::Mem(addr, ty) => {
                let cv = self.convert(val, ty, line)?;
                let ir = ir_type(ty, &self.ctx.structs, line)?;
                if !ir.is_scalar() {
                    return err(line, "cannot assign aggregates");
                }
                self.b.store(ir, *addr, cv.v);
                Ok(cv)
            }
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<TV> {
        let line = e.line;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(TV {
                v: self.b.const_i64(*v),
                ty: CmType::Int,
            }),
            ExprKind::FloatLit(v) => Ok(TV {
                v: self.b.const_f64(*v),
                ty: CmType::Double,
            }),
            ExprKind::CharLit(v) => Ok(TV {
                v: self.b.const_i8(*v),
                ty: CmType::Char,
            }),
            ExprKind::BoolLit(v) => Ok(TV {
                v: self.b.const_bool(*v),
                ty: CmType::Bool,
            }),
            ExprKind::NullLit => Ok(TV {
                v: self.b.null(),
                ty: CmType::ptr(CmType::Void),
            }),
            ExprKind::Var(_)
            | ExprKind::Deref(_)
            | ExprKind::Index(..)
            | ExprKind::Field { .. } => {
                let p = self.place(e)?;
                self.load_place(p, line)
            }
            ExprKind::AddrOf(inner) => match self.place(inner)? {
                Place::Mem(addr, ty) => Ok(TV {
                    v: addr,
                    ty: CmType::ptr(ty),
                }),
                Place::Ssa(..) => err(line, "cannot take the address of a register variable"),
            },
            ExprKind::Unary(op, inner) => self.lower_unary(*op, inner, line),
            ExprKind::Binary(op, l, r) => {
                let lt = self.expr(l)?;
                let rt = self.expr(r)?;
                self.lower_binary(*op, lt, rt, line)
            }
            ExprKind::LogicalAnd(l, r) => self.lower_logical(l, r, true, line),
            ExprKind::LogicalOr(l, r) => self.lower_logical(l, r, false, line),
            ExprKind::Assign { target, op, value } => {
                let rhs = self.expr(value)?;
                let p = self.place(target)?;
                let final_val = match op {
                    None => rhs,
                    Some(binop) => {
                        let cur = match &p {
                            Place::Ssa(var, ty) => {
                                let blk = self.b.current();
                                TV {
                                    v: self.read_var(*var, blk),
                                    ty: ty.clone(),
                                }
                            }
                            Place::Mem(addr, ty) => {
                                let ir = ir_type(ty, &self.ctx.structs, line)?;
                                TV {
                                    v: self.b.load(ir, *addr),
                                    ty: ty.clone(),
                                }
                            }
                        };
                        self.lower_binary(*binop, cur, rhs, line)?
                    }
                };
                self.store_place(&p, final_val, line)
            }
            ExprKind::Call { name, args } => self.lower_call(name, args, line),
            ExprKind::Cast(ty, inner) => {
                let tv = self.expr(inner)?;
                self.convert_explicit(tv, ty, line)
            }
            ExprKind::Sizeof(ty) => {
                let ir = ir_type(ty, &self.ctx.structs, line)?;
                Ok(TV {
                    v: self.b.const_i64(ir.size() as i64),
                    ty: CmType::Int,
                })
            }
        }
    }

    fn lower_unary(&mut self, op: UnOp, inner: &Expr, line: usize) -> Result<TV> {
        let tv = self.expr(inner)?;
        match op {
            UnOp::Neg => match &tv.ty {
                CmType::Double => {
                    let z = self.b.const_f64(0.0);
                    Ok(TV {
                        v: self.b.bin(BinOp::Fsub, z, tv.v),
                        ty: CmType::Double,
                    })
                }
                t if t.is_intlike() => {
                    let wide = self.convert(tv, &CmType::Int, line)?;
                    let z = self.b.const_i64(0);
                    Ok(TV {
                        v: self.b.sub(z, wide.v),
                        ty: CmType::Int,
                    })
                }
                other => err(line, format!("cannot negate {other:?}")),
            },
            UnOp::Not => {
                let b = self.coerce_bool(tv, line)?;
                let t = self.b.const_bool(true);
                Ok(TV {
                    v: self.b.bin(BinOp::Xor, b, t),
                    ty: CmType::Bool,
                })
            }
            UnOp::BitNot => {
                let wide = self.convert(tv, &CmType::Int, line)?;
                let m1 = self.b.const_i64(-1);
                Ok(TV {
                    v: self.b.bin(BinOp::Xor, wide.v, m1),
                    ty: CmType::Int,
                })
            }
        }
    }

    fn lower_binary(&mut self, op: BinOpKind, l: TV, r: TV, line: usize) -> Result<TV> {
        // Pointer arithmetic.
        if l.ty.is_ptr() && r.ty.is_intlike() && matches!(op, BinOpKind::Add | BinOpKind::Sub) {
            let elem = match &l.ty {
                CmType::Ptr(p) => (**p).clone(),
                _ => unreachable!(),
            };
            let ir_elem = match &elem {
                CmType::Void => Type::I8,
                t => ir_type(t, &self.ctx.structs, line)?,
            };
            let mut idx = self.convert(r, &CmType::Int, line)?;
            if op == BinOpKind::Sub {
                let z = self.b.const_i64(0);
                idx = TV {
                    v: self.b.sub(z, idx.v),
                    ty: CmType::Int,
                };
            }
            return Ok(TV {
                v: self.b.ptr_add(l.v, idx.v, ir_elem),
                ty: l.ty,
            });
        }
        if l.ty.is_ptr() && r.ty.is_ptr() {
            match op {
                BinOpKind::Sub => {
                    let li = self.b.cast(CastKind::PtrToInt, l.v, Type::I64);
                    let ri = self.b.cast(CastKind::PtrToInt, r.v, Type::I64);
                    let diff = self.b.sub(li, ri);
                    let elem_sz = match &l.ty {
                        CmType::Ptr(p) => match p.as_ref() {
                            CmType::Void => 1,
                            t => ir_type(t, &self.ctx.structs, line)?.stride(),
                        },
                        _ => unreachable!(),
                    };
                    let sz = self.b.const_i64(elem_sz as i64);
                    return Ok(TV {
                        v: self.b.bin(BinOp::Sdiv, diff, sz),
                        ty: CmType::Int,
                    });
                }
                op if op.is_comparison() => {
                    let pred = cmp_pred(op);
                    return Ok(TV {
                        v: self.b.icmp(pred, l.v, r.v),
                        ty: CmType::Bool,
                    });
                }
                _ => return err(line, "invalid pointer operation"),
            }
        }
        if !(l.ty.is_arith() && r.ty.is_arith()) {
            // Allow ptr == null through convert.
            if op.is_comparison() && l.ty.is_ptr() && r.ty.is_ptr() {
                let pred = cmp_pred(op);
                return Ok(TV {
                    v: self.b.icmp(pred, l.v, r.v),
                    ty: CmType::Bool,
                });
            }
            return err(
                line,
                format!("invalid operands to binary op: {:?} and {:?}", l.ty, r.ty),
            );
        }
        // Usual arithmetic conversions.
        let float = matches!(l.ty, CmType::Double) || matches!(r.ty, CmType::Double);
        if float {
            let lf = self.convert(l, &CmType::Double, line)?;
            let rf = self.convert(r, &CmType::Double, line)?;
            if op.is_comparison() {
                return Ok(TV {
                    v: self.b.fcmp(cmp_pred(op), lf.v, rf.v),
                    ty: CmType::Bool,
                });
            }
            let bin = match op {
                BinOpKind::Add => BinOp::Fadd,
                BinOpKind::Sub => BinOp::Fsub,
                BinOpKind::Mul => BinOp::Fmul,
                BinOpKind::Div => BinOp::Fdiv,
                other => return err(line, format!("{other:?} not defined for doubles")),
            };
            return Ok(TV {
                v: self.b.bin(bin, lf.v, rf.v),
                ty: CmType::Double,
            });
        }
        let li = self.convert(l, &CmType::Int, line)?;
        let ri = self.convert(r, &CmType::Int, line)?;
        if op.is_comparison() {
            return Ok(TV {
                v: self.b.icmp(cmp_pred(op), li.v, ri.v),
                ty: CmType::Bool,
            });
        }
        let bin = match op {
            BinOpKind::Add => BinOp::Add,
            BinOpKind::Sub => BinOp::Sub,
            BinOpKind::Mul => BinOp::Mul,
            BinOpKind::Div => BinOp::Sdiv,
            BinOpKind::Rem => BinOp::Srem,
            BinOpKind::And => BinOp::And,
            BinOpKind::Or => BinOp::Or,
            BinOpKind::Xor => BinOp::Xor,
            BinOpKind::Shl => BinOp::Shl,
            BinOpKind::Shr => BinOp::Ashr,
            _ => unreachable!("comparisons handled"),
        };
        Ok(TV {
            v: self.b.bin(bin, li.v, ri.v),
            ty: CmType::Int,
        })
    }

    fn lower_logical(&mut self, l: &Expr, r: &Expr, is_and: bool, line: usize) -> Result<TV> {
        let tmp = self.new_ssa_var(CmType::Bool);
        let lv = self.cond_bool(l)?;
        let cur = self.b.current();
        self.write_var(tmp, cur, lv);
        let rhs_bb = self.b.block(if is_and { "and.rhs" } else { "or.rhs" });
        let join = self.b.block("logical.join");
        if is_and {
            self.b.br(lv, rhs_bb, join);
        } else {
            self.b.br(lv, join, rhs_bb);
        }
        self.sealed.insert(rhs_bb);
        self.b.switch_to(rhs_bb);
        let rv = self.cond_bool(r)?;
        let rcur = self.b.current();
        self.write_var(tmp, rcur, rv);
        self.b.jmp(join);
        self.seal_block(join);
        self.b.switch_to(join);
        let v = self.read_var(tmp, join);
        let _ = line;
        Ok(TV {
            v,
            ty: CmType::Bool,
        })
    }

    fn lower_call(&mut self, name: &str, args: &[Expr], line: usize) -> Result<TV> {
        // Builtins first.
        match name {
            "malloc" => {
                let a = self.one_arg(args, line)?;
                let n = self.convert(a, &CmType::Int, line)?;
                return Ok(TV {
                    v: self.b.malloc(n.v),
                    ty: CmType::ptr(CmType::Void),
                });
            }
            "free" => {
                let a = self.one_arg(args, line)?;
                if !a.ty.is_ptr() {
                    return err(line, "free() expects a pointer");
                }
                self.b.free(a.v);
                return Ok(self.void_value());
            }
            "rand" => {
                if !args.is_empty() {
                    return err(line, "rand() takes no arguments");
                }
                return Ok(TV {
                    v: self.b.intr(Intrinsic::Rand, vec![]),
                    ty: CmType::Int,
                });
            }
            "sqrt" | "exp" | "log" => {
                let a = self.one_arg(args, line)?;
                let x = self.convert(a, &CmType::Double, line)?;
                let intr = match name {
                    "sqrt" => Intrinsic::Sqrt,
                    "exp" => Intrinsic::Exp,
                    _ => Intrinsic::Log,
                };
                return Ok(TV {
                    v: self.b.intr(intr, vec![x.v]),
                    ty: CmType::Double,
                });
            }
            "print_i64" => {
                let a = self.one_arg(args, line)?;
                let x = self.convert(a, &CmType::Int, line)?;
                self.b.intr(Intrinsic::PrintI64, vec![x.v]);
                return Ok(self.void_value());
            }
            "print_f64" => {
                let a = self.one_arg(args, line)?;
                let x = self.convert(a, &CmType::Double, line)?;
                self.b.intr(Intrinsic::PrintF64, vec![x.v]);
                return Ok(self.void_value());
            }
            "memcpy" | "memset" => {
                if args.len() != 3 {
                    return err(line, format!("{name}() takes three arguments"));
                }
                let a0 = self.expr(&args[0])?;
                let a1 = self.expr(&args[1])?;
                let a2 = self.expr(&args[2])?;
                let n = self.convert(a2, &CmType::Int, line)?;
                if name == "memcpy" {
                    if !a0.ty.is_ptr() || !a1.ty.is_ptr() {
                        return err(line, "memcpy() expects pointers");
                    }
                    self.b.intr(Intrinsic::Memcpy, vec![a0.v, a1.v, n.v]);
                } else {
                    if !a0.ty.is_ptr() {
                        return err(line, "memset() expects a pointer");
                    }
                    let byte = self.convert(a1, &CmType::Int, line)?;
                    self.b.intr(Intrinsic::Memset, vec![a0.v, byte.v, n.v]);
                }
                return Ok(self.void_value());
            }
            "abort" => {
                self.b.intr(Intrinsic::Abort, vec![]);
                return Ok(self.void_value());
            }
            "spawn" => {
                // `spawn(worker, arg)` — worker must name an `int(int)`
                // function; the callee travels as a constant function
                // index (Cm has no function pointers, by the CARAT
                // restrictions).
                if args.len() != 2 {
                    return err(line, "spawn(worker, arg) takes two arguments");
                }
                let ExprKind::Var(fname) = &args[0].kind else {
                    return err(line, "spawn's first argument must name a function");
                };
                let (fid, params, ret) = self
                    .ctx
                    .funcs
                    .get(fname)
                    .ok_or_else(|| LowerError {
                        line,
                        message: format!("unknown function `{fname}`"),
                    })?
                    .clone();
                if params != vec![CmType::Int] || ret != CmType::Int {
                    return err(
                        line,
                        format!("`{fname}` must have signature int(int) to be spawned"),
                    );
                }
                let idx = self.b.const_i64(fid.index() as i64);
                let a1 = self.expr(&args[1])?;
                let arg = self.convert(a1, &CmType::Int, line)?;
                return Ok(TV {
                    v: self.b.intr(Intrinsic::Spawn, vec![idx, arg.v]),
                    ty: CmType::Int,
                });
            }
            "join" => {
                let a = self.one_arg(args, line)?;
                let tid = self.convert(a, &CmType::Int, line)?;
                return Ok(TV {
                    v: self.b.intr(Intrinsic::Join, vec![tid.v]),
                    ty: CmType::Int,
                });
            }
            _ => {}
        }
        let (fid, param_tys, ret_ty) = self
            .ctx
            .funcs
            .get(name)
            .ok_or_else(|| LowerError {
                line,
                message: format!("unknown function `{name}`"),
            })?
            .clone();
        if args.len() != param_tys.len() {
            return err(
                line,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    param_tys.len(),
                    args.len()
                ),
            );
        }
        let mut ir_args = Vec::with_capacity(args.len());
        for (a, pt) in args.iter().zip(&param_tys) {
            let tv = self.expr(a)?;
            let cv = self.convert(tv, pt, line)?;
            ir_args.push(cv.v);
        }
        let ret_ir = match &ret_ty {
            CmType::Void => None,
            t => Some(ir_type(t, &self.ctx.structs, line)?),
        };
        let v = self.b.call(fid, ir_args, ret_ir);
        Ok(TV { v, ty: ret_ty })
    }

    fn one_arg(&mut self, args: &[Expr], line: usize) -> Result<TV> {
        if args.len() != 1 {
            return err(line, "expected one argument");
        }
        self.expr(&args[0])
    }

    fn void_value(&mut self) -> TV {
        TV {
            v: self.b.const_i64(0),
            ty: CmType::Void,
        }
    }

    // ---- conversions ----------------------------------------------------

    /// Implicit conversion.
    fn convert(&mut self, tv: TV, to: &CmType, line: usize) -> Result<TV> {
        if &tv.ty == to {
            return Ok(tv);
        }
        match (&tv.ty, to) {
            // Integer width changes.
            (f, t) if f.is_intlike() && t.is_intlike() => {
                let (fk, tk) = (int_rank(f), int_rank(t));
                let v = if tk > fk {
                    self.b.cast(CastKind::Sext, tv.v, scalar_ir(t))
                } else if tk < fk {
                    self.b.cast(CastKind::Trunc, tv.v, scalar_ir(t))
                } else {
                    tv.v
                };
                Ok(TV { v, ty: to.clone() })
            }
            (f, CmType::Double) if f.is_intlike() => {
                let wide = if int_rank(f) < 3 {
                    self.b.cast(CastKind::Sext, tv.v, Type::I64)
                } else {
                    tv.v
                };
                Ok(TV {
                    v: self.b.cast(CastKind::SiToFp, wide, Type::F64),
                    ty: CmType::Double,
                })
            }
            // Pointer ↔ pointer: void* converts freely; identical pointees
            // already matched above.
            (CmType::Ptr(a), CmType::Ptr(b))
                if matches!(a.as_ref(), CmType::Void) || matches!(b.as_ref(), CmType::Void) =>
            {
                Ok(TV {
                    v: tv.v,
                    ty: to.clone(),
                })
            }
            _ => err(
                line,
                format!("cannot implicitly convert {:?} to {to:?}", tv.ty),
            ),
        }
    }

    /// Explicit `(type)` cast: everything `convert` allows, plus
    /// double→int, ptr↔ptr of any pointees, and int↔ptr.
    fn convert_explicit(&mut self, tv: TV, to: &CmType, line: usize) -> Result<TV> {
        if &tv.ty == to {
            return Ok(tv);
        }
        match (&tv.ty, to) {
            (CmType::Double, t) if t.is_intlike() => {
                let i = self.b.cast(CastKind::FpToSi, tv.v, Type::I64);
                let v = if int_rank(t) < 3 {
                    self.b.cast(CastKind::Trunc, i, scalar_ir(t))
                } else {
                    i
                };
                Ok(TV { v, ty: to.clone() })
            }
            (CmType::Ptr(_), CmType::Ptr(_)) => Ok(TV {
                v: tv.v,
                ty: to.clone(),
            }),
            (f, CmType::Ptr(_)) if f.is_intlike() => {
                let wide = self.convert(tv, &CmType::Int, line)?;
                Ok(TV {
                    v: self.b.cast(CastKind::IntToPtr, wide.v, Type::Ptr),
                    ty: to.clone(),
                })
            }
            (CmType::Ptr(_), t) if t.is_intlike() => {
                let i = self.b.cast(CastKind::PtrToInt, tv.v, Type::I64);
                let out = TV {
                    v: i,
                    ty: CmType::Int,
                };
                self.convert(out, to, line)
            }
            _ => self.convert(tv, to, line),
        }
    }
}

fn int_rank(t: &CmType) -> u8 {
    match t {
        CmType::Bool => 1,
        CmType::Char => 2,
        CmType::Int => 3,
        _ => 0,
    }
}

fn cmp_pred(op: BinOpKind) -> Pred {
    match op {
        BinOpKind::Eq => Pred::Eq,
        BinOpKind::Ne => Pred::Ne,
        BinOpKind::Lt => Pred::Slt,
        BinOpKind::Le => Pred::Sle,
        BinOpKind::Gt => Pred::Sgt,
        BinOpKind::Ge => Pred::Sge,
        _ => unreachable!("not a comparison"),
    }
}

/// IR type of a scalar Cm type (no struct lookups needed).
fn scalar_ir(t: &CmType) -> Type {
    match t {
        CmType::Int => Type::I64,
        CmType::Char => Type::I8,
        CmType::Bool => Type::I1,
        CmType::Double => Type::F64,
        _ => Type::Ptr,
    }
}

/// Names whose address is taken anywhere in the function body.
fn collect_addr_taken(body: &[Stmt]) -> HashSet<String> {
    fn walk_expr(e: &Expr, out: &mut HashSet<String>) {
        match &e.kind {
            ExprKind::AddrOf(inner) => {
                if let ExprKind::Var(name) = &inner.kind {
                    out.insert(name.clone());
                }
                walk_expr(inner, out);
            }
            ExprKind::Unary(_, a) | ExprKind::Deref(a) | ExprKind::Cast(_, a) => walk_expr(a, out),
            ExprKind::Binary(_, a, b)
            | ExprKind::LogicalAnd(a, b)
            | ExprKind::LogicalOr(a, b)
            | ExprKind::Index(a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            ExprKind::Assign { target, value, .. } => {
                walk_expr(target, out);
                walk_expr(value, out);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    walk_expr(a, out);
                }
            }
            ExprKind::Field { base, .. } => walk_expr(base, out),
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut HashSet<String>) {
        match s {
            Stmt::Decl { init: Some(e), .. } => walk_expr(e, out),
            Stmt::Expr(e) => walk_expr(e, out),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                walk_expr(cond, out);
                for s in then_body.iter().chain(else_body) {
                    walk_stmt(s, out);
                }
            }
            Stmt::While { cond, body } => {
                walk_expr(cond, out);
                for s in body {
                    walk_stmt(s, out);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    walk_stmt(i, out);
                }
                if let Some(c) = cond {
                    walk_expr(c, out);
                }
                if let Some(st) = step {
                    walk_expr(st, out);
                }
                for s in body {
                    walk_stmt(s, out);
                }
            }
            Stmt::Return(Some(e), _) => walk_expr(e, out),
            Stmt::Block(body) => {
                for s in body {
                    walk_stmt(s, out);
                }
            }
            _ => {}
        }
    }
    let mut out = HashSet::new();
    for s in body {
        walk_stmt(s, &mut out);
    }
    out
}

/// Remove trivial phis (all incomings equal, possibly including the phi
/// itself) left behind by SSA construction, to fixpoint.
fn cleanup_trivial_phis(f: &mut carat_ir::Function) {
    loop {
        let mut replaced: Option<(ValueId, ValueId)> = None;
        'search: for b in f.block_ids().collect::<Vec<_>>() {
            for &v in &f.block(b).insts {
                if let Some(Inst::Phi { incomings, .. }) = f.inst(v) {
                    let mut unique: Option<ValueId> = None;
                    let mut trivial = true;
                    for (_, iv) in incomings {
                        if *iv == v {
                            continue; // self-reference
                        }
                        match unique {
                            None => unique = Some(*iv),
                            Some(u) if u == *iv => {}
                            Some(_) => {
                                trivial = false;
                                break;
                            }
                        }
                    }
                    if trivial {
                        if let Some(u) = unique {
                            replaced = Some((v, u));
                            break 'search;
                        }
                    }
                }
            }
        }
        let Some((phi, val)) = replaced else { break };
        // Rewrite all uses, then drop the phi.
        let n = f.num_values();
        for i in 0..n {
            let vid = ValueId(i as u32);
            if vid == phi {
                continue;
            }
            if let Some(inst) = f.inst_mut(vid) {
                inst.map_operands(|op| if op == phi { val } else { op });
            }
        }
        f.remove_from_block(phi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile(src: &str) -> Module {
        let prog = parse_program(src).expect("parses");
        lower_program("test", &prog).expect("lowers")
    }

    #[test]
    fn lowers_minimal_main() {
        let m = compile("int main() { return 7; }");
        assert!(m.main().is_some());
    }

    #[test]
    fn loop_variables_become_phis_not_allocas() {
        let m = compile(
            "int main() { int s = 0; for (int i = 0; i < 10; i += 1) { s += i; } return s; }",
        );
        let f = m.func(m.main().unwrap());
        let allocas = f
            .insts_in_layout_order()
            .filter(|(_, _, i)| matches!(i, Inst::Alloca(_)))
            .count();
        assert_eq!(allocas, 0, "register promotion leaves no allocas");
        let phis = f
            .insts_in_layout_order()
            .filter(|(_, _, i)| matches!(i, Inst::Phi { .. }))
            .count();
        assert!(phis >= 2, "i and s become loop phis (got {phis})");
    }

    #[test]
    fn address_taken_variables_stay_in_memory() {
        let m = compile(
            r#"
            void bump(int* p) { *p = *p + 1; }
            int main() { int x = 1; bump(&x); return x; }
            "#,
        );
        let f = m.func(m.main().unwrap());
        let allocas = f
            .insts_in_layout_order()
            .filter(|(_, _, i)| matches!(i, Inst::Alloca(_)))
            .count();
        assert_eq!(allocas, 1, "&x forces a stack slot");
    }

    #[test]
    fn structs_lower_to_field_accesses() {
        let m = compile(
            r#"
            struct point { double x; double y; };
            double main() {
                struct point p;
                p.x = 1.5;
                p.y = 2.5;
                return p.x + p.y;
            }
            "#,
        );
        let f = m.func(m.main().unwrap());
        let fields = f
            .insts_in_layout_order()
            .filter(|(_, _, i)| matches!(i, Inst::FieldAddr { .. }))
            .count();
        assert!(fields >= 3);
    }

    #[test]
    fn globals_and_indexing() {
        let m = compile(
            r#"
            int table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
            int main() {
                int s = 0;
                for (int i = 0; i < 8; i += 1) { s += table[i]; }
                return s;
            }
            "#,
        );
        assert_eq!(m.num_globals(), 1);
        assert!(matches!(
            m.global(carat_ir::GlobalId(0)).init,
            GlobalInit::I64s(_)
        ));
    }

    #[test]
    fn pointer_arithmetic_and_malloc() {
        let m = compile(
            r#"
            int main() {
                int* a = (int*) malloc(10 * sizeof(int));
                *(a + 3) = 9;
                int v = a[3];
                free(a);
                return v;
            }
            "#,
        );
        carat_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn logical_ops_short_circuit_blocks() {
        let m = compile(
            "int main() { int a = 3; int b = 0; if (a > 0 && b > 0) { return 1; } return 0; }",
        );
        let f = m.func(m.main().unwrap());
        assert!(f.num_blocks() >= 5, "short-circuit creates extra blocks");
    }

    #[test]
    fn type_error_reports_line() {
        let prog = parse_program("int main() {\n  struct foo x;\n  return 0;\n}").unwrap();
        let e = lower_program("t", &prog).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("foo"));
    }

    #[test]
    fn break_and_continue() {
        let m = compile(
            r#"
            int main() {
                int s = 0;
                for (int i = 0; i < 100; i += 1) {
                    if (i == 10) { break; }
                    if (i % 2 == 0) { continue; }
                    s += i;
                }
                return s;
            }
            "#,
        );
        carat_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn while_with_pointer_chase() {
        let m = compile(
            r#"
            struct node { int val; struct node* next; };
            int sum(struct node* head) {
                int s = 0;
                while (head != null) {
                    s += head->val;
                    head = head->next;
                }
                return s;
            }
            int main() { return sum((struct node*) null); }
            "#,
        );
        carat_ir::verify_module(&m).unwrap();
    }
}
