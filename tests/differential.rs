//! Differential property tests: for randomized program parameters, the
//! baseline build, the fully instrumented build, and the instrumented
//! build under page-move injection must all compute the same result.

use carat_suite::core::{CaratCompiler, CompileOptions};
use carat_suite::frontend::compile_cm;
use carat_suite::vm::{MoveDriverConfig, Vm, VmConfig};
use proptest::prelude::*;

fn template(nodes: u64, passes: u64, stride: u64, bytes_per_node: u64) -> String {
    format!(
        r#"
        struct node {{ int vals[{vals}]; struct node* next; }};
        int main() {{
            struct node* head = (struct node*) null;
            for (int i = 0; i < {nodes}; i += 1) {{
                struct node* x = (struct node*) malloc(sizeof(struct node));
                x->vals[i % {vals}] = i * {stride};
                x->next = head;
                head = x;
            }}
            int acc = 0;
            for (int p = 0; p < {passes}; p += 1) {{
                struct node* c = head;
                while (c != null) {{
                    for (int k = 0; k < {vals}; k += 1) {{ acc += c->vals[k]; }}
                    c = c->next;
                }}
                acc = acc % 1000003;
            }}
            return acc;
        }}
        "#,
        vals = (bytes_per_node / 8).max(1),
    )
}

fn run_variant(src: &str, options: CompileOptions, cfg: VmConfig) -> i64 {
    let module = compile_cm("prop", src).expect("frontend");
    let compiled = CaratCompiler::new(options).compile(module).expect("carat");
    Vm::new(compiled.module, cfg)
        .expect("load")
        .run()
        .expect("run")
        .ret
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn baseline_carat_and_moves_agree(
        nodes in 1u64..120,
        passes in 1u64..6,
        stride in 1u64..50,
        bytes in 8u64..128,
        period in 5_000u64..80_000,
    ) {
        let src = template(nodes, passes, stride, bytes);
        let base = run_variant(&src, CompileOptions::baseline(), VmConfig::default());
        let carat = run_variant(&src, CompileOptions::default(), VmConfig::default());
        prop_assert_eq!(base, carat, "instrumentation changed semantics");
        let moved = run_variant(
            &src,
            CompileOptions::default(),
            VmConfig {
                move_driver: Some(MoveDriverConfig {
                    period_cycles: period,
                    max_moves: 25,
                }),
                ..VmConfig::default()
            },
        );
        prop_assert_eq!(base, moved, "page moves changed semantics");
    }
}
