//! # Simulated devices
//!
//! The device side of the reproduction: a CLINT-style timer that raises
//! interrupts on modeled-cycle deadlines (the preemption source for
//! timer-driven scheduling in `MultiVm`), and a block/NIC-style DMA
//! engine with request/response descriptor queues whose buffers must be
//! **pinned** before the device will touch them.
//!
//! Devices live in a [`DeviceBay`] hung off the kernel, so they travel
//! with the kernel when it is lent to a VM for a slice: the timer's
//! deadline is visible to the slice loop, and DMA service runs against
//! whichever process table is currently checked in.
//!
//! Everything here is deterministic in modeled cycles — no host time, no
//! host randomness — so runs replay bit-identically.

mod dma;
mod timer;

pub use dma::{DmaCompletion, DmaDevice, DmaDir, DmaError, DmaRequest, DmaStats};
pub use timer::{ClintTimer, TimerStats};

/// The kernel's device complement: one timer, one DMA engine.
///
/// Kept deliberately small — a slot per device class, not a bus model.
/// The bay is part of [`crate::SimKernel`], so per-slice device state
/// (an armed deadline, queued descriptors) survives kernel lending.
#[derive(Debug, Default)]
pub struct DeviceBay {
    /// The CLINT-style cycle-deadline timer.
    pub timer: ClintTimer,
    /// The descriptor-queue DMA engine.
    pub dma: DmaDevice,
}

impl DeviceBay {
    /// An empty bay: timer disarmed, DMA queues empty.
    pub fn new() -> DeviceBay {
        DeviceBay::default()
    }
}
