//! Value-range (interval) analysis for integer values.
//!
//! A conditionally-updated interval analysis in the spirit of Birch, van
//! Engelen & Gallivan (the paper's reference [16]); CARAT uses value ranges
//! of pointer definitions to merge guards of statically adjacent accesses.
//! Widening after a fixed number of iterations guarantees termination.

use carat_ir::{BinOp, CastKind, Const, Function, Inst, ValueId};
use std::collections::HashMap;

/// Inclusive interval over `i128` (wide enough that i64 arithmetic cannot
/// overflow the analysis domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound.
    pub lo: i128,
    /// Upper bound.
    pub hi: i128,
}

impl Interval {
    /// The full i64 range.
    pub const TOP: Interval = Interval {
        lo: i64::MIN as i128,
        hi: i64::MAX as i128,
    };

    /// A single point.
    pub fn point(v: i64) -> Interval {
        Interval {
            lo: v as i128,
            hi: v as i128,
        }
    }

    /// Whether the interval is a single known constant.
    pub fn as_const(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo as i64)
    }

    /// Smallest interval containing both.
    pub fn join(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    fn clamp(self) -> Interval {
        Interval {
            lo: self.lo.max(Interval::TOP.lo),
            hi: self.hi.min(Interval::TOP.hi),
        }
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
        .clamp()
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo - o.hi,
            hi: self.hi - o.lo,
        }
        .clamp()
    }

    fn mul(self, o: Interval) -> Interval {
        let cands = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval {
            lo: *cands.iter().min().unwrap(),
            hi: *cands.iter().max().unwrap(),
        }
        .clamp()
    }
}

/// Computed ranges for every integer value in one function.
#[derive(Debug, Clone)]
pub struct ValueRanges {
    ranges: HashMap<ValueId, Interval>,
}

/// Number of fixpoint rounds before widening phis to TOP.
const WIDEN_AFTER: usize = 8;

impl ValueRanges {
    /// Analyze `f`.
    pub fn compute(f: &Function) -> ValueRanges {
        let mut ranges: HashMap<ValueId, Interval> = HashMap::new();
        // Arguments: unknown.
        for i in 0..f.params.len() {
            ranges.insert(f.arg(i), Interval::TOP);
        }
        let mut round = 0;
        loop {
            let mut changed = false;
            for (_, v, inst) in f.insts_in_layout_order() {
                let next = Self::eval(f, &ranges, inst, round);
                if let Some(n) = next {
                    let prev = ranges.get(&v).copied();
                    if prev != Some(n) {
                        // Monotone: join with previous to stay increasing.
                        let merged = match prev {
                            Some(p) => p.join(n),
                            None => n,
                        };
                        if prev != Some(merged) {
                            ranges.insert(v, merged);
                            changed = true;
                        }
                    }
                }
            }
            round += 1;
            if !changed || round > WIDEN_AFTER + 4 {
                break;
            }
        }
        ValueRanges { ranges }
    }

    fn eval(
        _f: &Function,
        ranges: &HashMap<ValueId, Interval>,
        inst: &Inst,
        round: usize,
    ) -> Option<Interval> {
        let get = |v: ValueId| ranges.get(&v).copied();
        match inst {
            Inst::Const(Const::Int(x, _)) => Some(Interval::point(*x)),
            Inst::Bin { op, lhs, rhs } if !op.is_float() => {
                let (a, b) = (get(*lhs)?, get(*rhs)?);
                Some(match op {
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    _ => Interval::TOP,
                })
            }
            Inst::Phi { incomings, .. } => {
                if round >= WIDEN_AFTER {
                    return Some(Interval::TOP);
                }
                let mut acc: Option<Interval> = None;
                for (_, v) in incomings {
                    // Unknown incomings (not yet computed) are skipped this
                    // round; the fixpoint iteration will pick them up.
                    if let Some(i) = get(*v) {
                        acc = Some(match acc {
                            None => i,
                            Some(a) => a.join(i),
                        });
                    }
                }
                acc
            }
            Inst::Select {
                if_true, if_false, ..
            } => {
                let (a, b) = (get(*if_true)?, get(*if_false)?);
                Some(a.join(b))
            }
            Inst::Cast { kind, value, .. } => match kind {
                CastKind::Sext | CastKind::Zext | CastKind::Trunc => get(*value),
                _ => Some(Interval::TOP),
            },
            Inst::Load { ty, .. } if ty.is_int() => Some(Interval::TOP),
            Inst::Call {
                ret_ty: Some(t), ..
            } if t.is_int() => Some(Interval::TOP),
            Inst::CallIntrinsic { intr, .. } if intr.ret_ty().is_some_and(|t| t.is_int()) => {
                Some(Interval::TOP)
            }
            Inst::Icmp { .. } | Inst::Fcmp { .. } => Some(Interval { lo: 0, hi: 1 }),
            _ => None,
        }
    }

    /// The interval for `v`, if it is an integer value the analysis saw.
    pub fn range(&self, v: ValueId) -> Option<Interval> {
        self.ranges.get(&v).copied()
    }

    /// The constant value of `v`, if its interval is a point.
    pub fn as_const(&self, v: ValueId) -> Option<i64> {
        self.range(v)?.as_const()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{ModuleBuilder, Pred, Type};

    #[test]
    fn constants_and_arithmetic_fold() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![], Some(Type::I64));
        let (a, b, s, p);
        {
            let mut bld = mb.define(f);
            let e = bld.block("entry");
            bld.switch_to(e);
            a = bld.const_i64(10);
            b = bld.const_i64(32);
            s = bld.add(a, b);
            p = bld.mul(s, a);
            bld.ret(Some(p));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let vr = ValueRanges::compute(f);
        assert_eq!(vr.as_const(a), Some(10));
        assert_eq!(vr.as_const(s), Some(42));
        assert_eq!(vr.as_const(p), Some(420));
    }

    #[test]
    fn compare_results_are_boolean_range() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::I64], Some(Type::I1));
        let c;
        {
            let mut bld = mb.define(f);
            let e = bld.block("entry");
            bld.switch_to(e);
            let z = bld.const_i64(0);
            c = bld.icmp(Pred::Slt, bld.arg(0), z);
            bld.ret(Some(c));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let vr = ValueRanges::compute(f);
        assert_eq!(vr.range(c), Some(Interval { lo: 0, hi: 1 }));
    }

    #[test]
    fn loop_phi_widens_instead_of_diverging() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::I64], None);
        let iv;
        {
            let mut bld = mb.define(f);
            let e = bld.block("entry");
            let h = bld.block("h");
            let body = bld.block("body");
            let x = bld.block("x");
            bld.switch_to(e);
            let zero = bld.const_i64(0);
            let one = bld.const_i64(1);
            bld.jmp(h);
            bld.switch_to(h);
            iv = bld.phi(Type::I64, vec![(e, zero)]);
            let c = bld.icmp(Pred::Slt, iv, bld.arg(0));
            bld.br(c, body, x);
            bld.switch_to(body);
            let iv2 = bld.add(iv, one);
            bld.phi_add_incoming(iv, body, iv2);
            bld.jmp(h);
            bld.switch_to(x);
            bld.ret(None);
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let vr = ValueRanges::compute(f);
        let r = vr.range(iv).expect("analyzed");
        // Terminates and covers at least [0, WIDEN_AFTER].
        assert!(r.lo <= 0 && r.hi >= 1);
    }

    #[test]
    fn arithmetic_clamps_to_i64_domain() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![], Some(Type::I64));
        let p;
        {
            let mut bld = mb.define(f);
            let e = bld.block("entry");
            bld.switch_to(e);
            let big = bld.const_i64(i64::MAX);
            p = bld.mul(big, big);
            bld.ret(Some(p));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let vr = ValueRanges::compute(f);
        let r = vr.range(p).unwrap();
        assert!(r.hi <= Interval::TOP.hi);
    }
}
