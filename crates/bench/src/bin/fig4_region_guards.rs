//! Figure 4 — cost of multi-region software guards (host-measured
//! nanoseconds, since the guard data structures are real code) as a
//! function of region count: if-tree vs binary search, random and strided
//! access patterns. `cargo bench -p carat-bench --bench region_guards`
//! gives the Criterion version.

use carat_bench::print_table;
use carat_runtime::{Access, Perms, Region, RegionTable};
use std::hint::black_box;
use std::time::Instant;

fn table(n: u64) -> RegionTable {
    let mut t = RegionTable::new();
    t.set_regions(
        (0..n)
            .map(|i| Region {
                start: 0x100000 + i * 0x2000,
                len: 0x1000,
                perms: Perms::RW,
            })
            .collect(),
    );
    t
}

fn measure(t: &RegionTable, addrs: &[u64], iftree: bool) -> f64 {
    const REPS: usize = 200;
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..REPS {
        for &a in addrs {
            let c = if iftree {
                t.check_if_tree(a, 8, Access::Read)
            } else {
                t.check_binary_search(a, 8, Access::Read)
            };
            acc = acc.wrapping_add(c.probes + c.ok as u64);
        }
    }
    black_box(acc);
    start.elapsed().as_nanos() as f64 / (REPS * addrs.len()) as f64
}

fn main() {
    println!("Figure 4: multi-region software guard cost (host ns/check)\n");
    let sizes = [1u64, 4, 16, 64, 256, 1024, 4096, 16384];
    // (a) random accesses.
    let mut rows = Vec::new();
    for &n in &sizes {
        let t = table(n);
        let mut state = 0x12345678u64;
        let addrs: Vec<u64> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                0x100000 + (state >> 16) % (n * 0x2000)
            })
            .collect();
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", measure(&t, &addrs, true)),
            format!("{:.1}", measure(&t, &addrs, false)),
        ]);
    }
    println!("(a) random accesses");
    print_table(&["regions", "if-tree ns", "binary-search ns"], &rows);

    // (b) strided accesses over the covered span.
    println!("\n(b) strided accesses (if-tree)");
    let mut rows = Vec::new();
    for &n in &sizes {
        let t = table(n);
        let mut cells = vec![n.to_string()];
        for &stride in &[8u64, 64, 512, 4096, 16384] {
            let span = n * 0x2000;
            let addrs: Vec<u64> = (0..4096u64)
                .map(|i| 0x100000 + (i * stride) % span)
                .collect();
            cells.push(format!("{:.1}", measure(&t, &addrs, true)));
        }
        rows.push(cells);
    }
    print_table(
        &[
            "regions",
            "stride 8",
            "stride 64",
            "stride 512",
            "stride 4096",
            "stride 16384",
        ],
        &rows,
    );
}
