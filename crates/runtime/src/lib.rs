//! # carat-runtime — the CARAT runtime
//!
//! The run-time half of the CARAT co-design (paper §4.2): linked into every
//! CARAT process, it maintains the tracking state the kernel relies on to
//! move physical memory, evaluates guards against the kernel-supplied
//! region set, and executes mapping changes by patching every affected
//! pointer.
//!
//! * [`AllocationTable`] — allocations keyed in a from-scratch red/black
//!   tree ([`RbTree`]), each with its Allocation-to-Escape Map entry;
//! * [`RegionTable`] — kernel-supplied regions with binary-search,
//!   if-tree, and MPX-style guard evaluators;
//! * [`perform_move`] — the pointer-swizzling patch engine (Figure 8);
//! * [`WorldStop`] — the signal/barrier protocol state machine;
//! * [`CostModel`] — the shared simulated-machine cycle model.
//!
//! ## Example
//!
//! ```
//! use carat_runtime::{AllocationTable, AllocKind, Region, RegionTable, Perms, Access, GuardImpl};
//!
//! let mut table = AllocationTable::new();
//! table.track_alloc(0x1000, 256, AllocKind::Heap);
//! assert_eq!(table.find_containing(0x1080).map(|(s, _)| s), Some(0x1000));
//!
//! let mut regions = RegionTable::new();
//! regions.set_regions(vec![Region { start: 0x1000, len: 0x1000, perms: Perms::RW }]);
//! assert!(regions.check(GuardImpl::Mpx, 0x1080, 8, Access::Write).ok);
//! ```

#![warn(missing_docs)]

mod alloc_table;
mod cost;
mod fast_hash;
mod patch;
mod rbtree;
mod region;
mod world;

pub use alloc_table::{AllocInfo, AllocKind, AllocationTable, TrackStats};
pub use cost::CostModel;
pub use fast_hash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use patch::{
    check_unpinned, expand_to_allocations, parallel_min_cells, perform_move,
    perform_move_alloc_granular, perform_move_batch_journaled, perform_move_journaled,
    perform_move_workers, perform_shared_move_journaled, set_parallel_min_cells, ExpandVeto,
    MemAccess, MoveCostBreakdown, MoveError, MoveInterrupted, MoveOutcome, MovePhase, MoveRequest,
    PatchMem, PatchPlan, PinnedRange, PlannedPatch, PARALLEL_MIN_CELLS,
};
pub use rbtree::RbTree;
pub use region::{Access, GuardCheck, GuardImpl, Perms, Region, RegionTable};
pub use world::{ProtocolError, Step, WorldStop, WorldStopError};
