//! The CARAT IR type system.
//!
//! Mirrors the fragment of LLVM's type system that CARAT's transformations
//! care about: scalar integers, a double-precision float, an opaque pointer,
//! and the aggregate types (arrays, structs) needed to lay out globals and
//! stack allocations. Layout (size, alignment, field offsets) is defined
//! here because guards must know the byte extent of every access.

use std::fmt;

/// Width of an integer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IntTy {
    /// 1-bit boolean (stored as one byte).
    I1,
    /// 8-bit integer.
    I8,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
}

impl IntTy {
    /// Size of a value of this type in bytes, as stored in memory.
    pub fn size(self) -> u64 {
        match self {
            IntTy::I1 | IntTy::I8 => 1,
            IntTy::I32 => 4,
            IntTy::I64 => 8,
        }
    }

    /// Number of value bits (1, 8, 32 or 64).
    pub fn bits(self) -> u32 {
        match self {
            IntTy::I1 => 1,
            IntTy::I8 => 8,
            IntTy::I32 => 32,
            IntTy::I64 => 64,
        }
    }

    /// Wrap `v` to this width, sign-extending back to `i64`.
    ///
    /// This is the canonical in-register representation used by the
    /// interpreter: every integer is held as an `i64` whose value is the
    /// sign-extension of its low `bits()` bits.
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            IntTy::I1 => v & 1,
            IntTy::I8 => v as i8 as i64,
            IntTy::I32 => v as i32 as i64,
            IntTy::I64 => v,
        }
    }
}

impl fmt::Display for IntTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntTy::I1 => write!(f, "i1"),
            IntTy::I8 => write!(f, "i8"),
            IntTy::I32 => write!(f, "i32"),
            IntTy::I64 => write!(f, "i64"),
        }
    }
}

/// A first-class IR type.
///
/// Pointers are opaque (no pointee type), as in modern LLVM; memory
/// instructions carry the accessed type explicitly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Integer of the given width.
    Int(IntTy),
    /// IEEE-754 double.
    F64,
    /// Opaque pointer (8 bytes).
    Ptr,
    /// Fixed-length array.
    Array(Box<Type>, u64),
    /// Struct with the given field types, laid out with natural alignment.
    Struct(Vec<Type>),
}

impl Type {
    /// The 1-bit boolean type.
    pub const I1: Type = Type::Int(IntTy::I1);
    /// The 8-bit integer type.
    pub const I8: Type = Type::Int(IntTy::I8);
    /// The 32-bit integer type.
    pub const I32: Type = Type::Int(IntTy::I32);
    /// The 64-bit integer type.
    pub const I64: Type = Type::Int(IntTy::I64);

    /// Size in bytes a value of this type occupies in memory, including
    /// interior padding (for structs) but following C-like layout rules.
    pub fn size(&self) -> u64 {
        match self {
            Type::Int(w) => w.size(),
            Type::F64 | Type::Ptr => 8,
            Type::Array(elem, n) => elem.stride() * n,
            Type::Struct(fields) => {
                let mut off = 0u64;
                let mut align = 1u64;
                for f in fields {
                    let a = f.align();
                    align = align.max(a);
                    off = round_up(off, a) + f.size();
                }
                round_up(off, align)
            }
        }
    }

    /// Alignment in bytes.
    pub fn align(&self) -> u64 {
        match self {
            Type::Int(w) => w.size(),
            Type::F64 | Type::Ptr => 8,
            Type::Array(elem, _) => elem.align(),
            Type::Struct(fields) => fields.iter().map(Type::align).max().unwrap_or(1),
        }
    }

    /// Distance in bytes between consecutive array elements of this type.
    pub fn stride(&self) -> u64 {
        round_up(self.size(), self.align())
    }

    /// Byte offset of struct field `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a struct or `idx` is out of range.
    pub fn field_offset(&self, idx: usize) -> u64 {
        match self {
            Type::Struct(fields) => {
                assert!(idx < fields.len(), "field index {idx} out of range");
                let mut off = 0u64;
                for (i, f) in fields.iter().enumerate() {
                    off = round_up(off, f.align());
                    if i == idx {
                        return off;
                    }
                    off += f.size();
                }
                unreachable!()
            }
            other => panic!("field_offset on non-struct type {other}"),
        }
    }

    /// The type of struct field `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a struct or `idx` is out of range.
    pub fn field_type(&self, idx: usize) -> &Type {
        match self {
            Type::Struct(fields) => &fields[idx],
            other => panic!("field_type on non-struct type {other}"),
        }
    }

    /// Whether this is a scalar (non-aggregate) type: the only types a
    /// value (SSA register) may have.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int(_) | Type::F64 | Type::Ptr)
    }

    /// Whether this is an integer type.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// The integer width, if this is an integer type.
    pub fn int_width(&self) -> Option<IntTy> {
        match self {
            Type::Int(w) => Some(*w),
            _ => None,
        }
    }
}

/// Round `v` up to the next multiple of `align` (`align` must be a power of
/// two or at least nonzero; we only require nonzero).
pub fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int(w) => write!(f, "{w}"),
            Type::F64 => write!(f, "f64"),
            Type::Ptr => write!(f, "ptr"),
            Type::Array(elem, n) => write!(f, "[{n} x {elem}]"),
            Type::Struct(fields) => {
                write!(f, "{{")?;
                for (i, t) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Type::I1.size(), 1);
        assert_eq!(Type::I8.size(), 1);
        assert_eq!(Type::I32.size(), 4);
        assert_eq!(Type::I64.size(), 8);
        assert_eq!(Type::F64.size(), 8);
        assert_eq!(Type::Ptr.size(), 8);
    }

    #[test]
    fn array_layout() {
        let a = Type::Array(Box::new(Type::I32), 10);
        assert_eq!(a.size(), 40);
        assert_eq!(a.align(), 4);
        assert_eq!(a.stride(), 40);
    }

    #[test]
    fn struct_layout_with_padding() {
        // { i8, i64, i32 } -> i8 at 0, i64 at 8, i32 at 16, size 24
        let s = Type::Struct(vec![Type::I8, Type::I64, Type::I32]);
        assert_eq!(s.field_offset(0), 0);
        assert_eq!(s.field_offset(1), 8);
        assert_eq!(s.field_offset(2), 16);
        assert_eq!(s.size(), 24);
        assert_eq!(s.align(), 8);
    }

    #[test]
    fn nested_aggregate_layout() {
        let inner = Type::Struct(vec![Type::I8, Type::I32]); // size 8, align 4
        assert_eq!(inner.size(), 8);
        let outer = Type::Array(Box::new(inner), 3);
        assert_eq!(outer.size(), 24);
    }

    #[test]
    fn empty_struct() {
        let s = Type::Struct(vec![]);
        assert_eq!(s.size(), 0);
        assert_eq!(s.align(), 1);
    }

    #[test]
    fn int_wrap_sign_extends() {
        assert_eq!(IntTy::I8.wrap(0xff), -1);
        assert_eq!(IntTy::I8.wrap(0x7f), 127);
        assert_eq!(IntTy::I32.wrap(0xffff_ffff), -1);
        assert_eq!(IntTy::I1.wrap(3), 1);
        assert_eq!(IntTy::I64.wrap(-5), -5);
    }

    #[test]
    fn display_roundtrips_shapes() {
        let t = Type::Array(Box::new(Type::Struct(vec![Type::Ptr, Type::F64])), 4);
        assert_eq!(t.to_string(), "[4 x {ptr, f64}]");
    }
}
