//! Guard injection (paper §2.2, §4.1.1).
//!
//! Conceptually every load, store and call instruction gets a guard that
//! validates the prospective physical address range against the
//! kernel-supplied region set. Guards are [`Intrinsic::GuardLoad`],
//! [`Intrinsic::GuardStore`] and [`Intrinsic::GuardCall`] calls inserted
//! immediately before the instruction they protect; the optimization passes
//! in [`crate::opt`] then hoist, merge, or eliminate them.

use carat_ir::{FuncId, Function, Inst, Intrinsic, Module, Type, ValueId};

/// Fixed per-call stack overhead assumed by call guards, covering the
/// return address, saved registers, and compiler-generated spill slots.
pub const CALL_FRAME_OVERHEAD: u64 = 64;

/// Which instruction classes to guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Guard loads.
    pub loads: bool,
    /// Guard stores.
    pub stores: bool,
    /// Guard calls (stack-extent checks).
    pub calls: bool,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            loads: true,
            stores: true,
            calls: true,
        }
    }
}

/// Estimate the maximum stack footprint of `f`'s frame in bytes: all its
/// allocas (with alignment padding) plus [`CALL_FRAME_OVERHEAD`].
///
/// This is what a call guard must verify fits in a valid region below the
/// stack pointer ("the prologue and epilogue code the compiler produces for
/// the callee may also perform stack accesses").
pub fn frame_size(f: &Function) -> u64 {
    let mut total = CALL_FRAME_OVERHEAD;
    for (_, _, inst) in f.insts_in_layout_order() {
        if let Inst::Alloca(ty) = inst {
            total += ty.stride().max(8);
        }
    }
    total
}

/// Result of injecting guards into one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionCounts {
    /// Load guards inserted.
    pub loads: usize,
    /// Store guards inserted.
    pub stores: usize,
    /// Call guards inserted.
    pub calls: usize,
}

impl InjectionCounts {
    /// Total guards inserted.
    pub fn total(&self) -> usize {
        self.loads + self.stores + self.calls
    }
}

/// Inject guards into every function of `module`.
///
/// Returns per-function counts indexed by function id.
pub fn inject_guards(module: &mut Module, cfg: GuardConfig) -> Vec<InjectionCounts> {
    // Pre-compute callee frame sizes (call guards check the *callee*'s
    // maximum stack footprint).
    let frame_sizes: Vec<u64> = module
        .func_ids()
        .map(|fid| frame_size(module.func(fid)))
        .collect();
    let fids: Vec<FuncId> = module.func_ids().collect();
    let mut out = Vec::with_capacity(fids.len());
    for fid in fids {
        let f = module.func_mut(fid);
        out.push(inject_into_function(f, cfg, &frame_sizes));
    }
    out
}

fn inject_into_function(
    f: &mut Function,
    cfg: GuardConfig,
    frame_sizes: &[u64],
) -> InjectionCounts {
    let mut counts = InjectionCounts::default();
    // Snapshot targets first; insertion invalidates positions otherwise.
    struct Target {
        before: ValueId,
        guard: GuardKind,
    }
    enum GuardKind {
        Load { addr: ValueId, size: u64 },
        Store { addr: ValueId, size: u64 },
        Call { frame: u64 },
    }
    let mut targets = Vec::new();
    for b in f.block_ids().collect::<Vec<_>>() {
        for &v in &f.block(b).insts {
            match f.inst(v) {
                Some(Inst::Load { ty, addr }) if cfg.loads => targets.push(Target {
                    before: v,
                    guard: GuardKind::Load {
                        addr: *addr,
                        size: ty.size(),
                    },
                }),
                Some(Inst::Store { ty, addr, .. }) if cfg.stores => targets.push(Target {
                    before: v,
                    guard: GuardKind::Store {
                        addr: *addr,
                        size: ty.size(),
                    },
                }),
                Some(Inst::Call { callee, .. }) if cfg.calls => targets.push(Target {
                    before: v,
                    guard: GuardKind::Call {
                        frame: frame_sizes[callee.index()],
                    },
                }),
                _ => {}
            }
        }
    }
    for t in targets {
        match t.guard {
            GuardKind::Load { addr, size } => {
                let len = insert_const_before(f, t.before, size as i64);
                f.insert_before(
                    t.before,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::GuardLoad,
                        args: vec![addr, len],
                    },
                );
                counts.loads += 1;
            }
            GuardKind::Store { addr, size } => {
                let len = insert_const_before(f, t.before, size as i64);
                f.insert_before(
                    t.before,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::GuardStore,
                        args: vec![addr, len],
                    },
                );
                counts.stores += 1;
            }
            GuardKind::Call { frame } => {
                let len = insert_const_before(f, t.before, frame as i64);
                f.insert_before(
                    t.before,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::GuardCall,
                        args: vec![len],
                    },
                );
                counts.calls += 1;
            }
        }
    }
    counts
}

/// Insert an i64 constant immediately before `before` and return it.
fn insert_const_before(f: &mut Function, before: ValueId, v: i64) -> ValueId {
    f.insert_before(
        before,
        Inst::Const(carat_ir::Const::Int(v, carat_ir::IntTy::I64)),
    )
}

/// Count the guard intrinsics currently present in `module`.
pub fn count_guards(module: &Module) -> usize {
    module
        .func_ids()
        .map(|fid| count_guards_in(module.func(fid)))
        .sum()
}

/// Count the guard intrinsics currently present in `f`.
pub fn count_guards_in(f: &Function) -> usize {
    f.insts_in_layout_order()
        .filter(|(_, _, i)| matches!(i, Inst::CallIntrinsic { intr, .. } if intr.is_guard()))
        .count()
}

/// All guard instruction ids in `f`, in layout order.
pub fn guard_ids(f: &Function) -> Vec<ValueId> {
    f.insts_in_layout_order()
        .filter(|(_, _, i)| matches!(i, Inst::CallIntrinsic { intr, .. } if intr.is_guard()))
        .map(|(_, v, _)| v)
        .collect()
}

/// The byte extent a guard checks, when statically known (its second
/// argument for load/store guards).
pub fn guard_extent(f: &Function, guard: ValueId) -> Option<u64> {
    match f.inst(guard) {
        Some(Inst::CallIntrinsic {
            intr: Intrinsic::GuardLoad | Intrinsic::GuardStore,
            args,
        }) => match f.inst(*args.get(1)?) {
            Some(Inst::Const(carat_ir::Const::Int(n, _))) => Some(*n as u64),
            _ => None,
        },
        _ => None,
    }
}

/// Type alias re-export so callers do not need `carat_ir::Type` for the
/// common case of sizing accesses.
pub type AccessType = Type;

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{verify_module, ModuleBuilder, Type};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.declare("callee", vec![], None);
        let f = mb.declare("main", vec![Type::Ptr], Some(Type::I64));
        {
            let mut b = mb.define(callee);
            let e = b.block("entry");
            b.switch_to(e);
            let _slot = b.alloca(Type::Array(Box::new(Type::I64), 4));
            b.ret(None);
        }
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let p = b.arg(0);
            let x = b.load(Type::I64, p);
            b.store(Type::I64, p, x);
            b.call(callee, vec![], None);
            b.ret(Some(x));
        }
        mb.finish()
    }

    #[test]
    fn injects_one_guard_per_memory_and_call_inst() {
        let mut m = sample();
        let counts = inject_guards(&mut m, GuardConfig::default());
        let main_counts = counts[1];
        assert_eq!(main_counts.loads, 1);
        assert_eq!(main_counts.stores, 1);
        assert_eq!(main_counts.calls, 1);
        assert_eq!(count_guards(&m), 3);
        verify_module(&m).expect("instrumented module verifies");
    }

    #[test]
    fn guards_precede_their_instruction() {
        let mut m = sample();
        inject_guards(&mut m, GuardConfig::default());
        let f = m.func(m.func_by_name("main").unwrap());
        let insts: Vec<_> = f
            .block(f.entry())
            .insts
            .iter()
            .map(|&v| f.inst(v).unwrap().clone())
            .collect();
        // Find the load; the instruction before it must be a load guard.
        let load_pos = insts
            .iter()
            .position(|i| matches!(i, Inst::Load { .. }))
            .unwrap();
        assert!(matches!(
            &insts[load_pos - 1],
            Inst::CallIntrinsic {
                intr: Intrinsic::GuardLoad,
                ..
            }
        ));
    }

    #[test]
    fn call_guard_uses_callee_frame_size() {
        let mut m = sample();
        inject_guards(&mut m, GuardConfig::default());
        let f = m.func(m.func_by_name("main").unwrap());
        let guard = f
            .insts_in_layout_order()
            .find_map(|(_, _, i)| match i {
                Inst::CallIntrinsic {
                    intr: Intrinsic::GuardCall,
                    args,
                } => Some(args[0]),
                _ => None,
            })
            .expect("call guard present");
        let frame = match f.inst(guard) {
            Some(Inst::Const(carat_ir::Const::Int(n, _))) => *n as u64,
            other => panic!("unexpected frame operand {other:?}"),
        };
        // callee has a 32-byte alloca + overhead
        assert_eq!(frame, 32 + CALL_FRAME_OVERHEAD);
    }

    #[test]
    fn config_disables_classes() {
        let mut m = sample();
        inject_guards(
            &mut m,
            GuardConfig {
                loads: true,
                stores: false,
                calls: false,
            },
        );
        assert_eq!(count_guards(&m), 1);
    }

    #[test]
    fn guard_extent_reads_constant() {
        let mut m = sample();
        inject_guards(&mut m, GuardConfig::default());
        let f = m.func(m.func_by_name("main").unwrap());
        let gs = guard_ids(f);
        let extents: Vec<_> = gs.iter().filter_map(|&g| guard_extent(f, g)).collect();
        assert_eq!(extents, vec![8, 8]);
    }
}
