//! Quickstart: compile a Cm program with the CARAT compiler, load it into
//! the simulated kernel through the signed-binary trust chain, run it on
//! physical addresses, and look at what the instrumentation did.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use carat_core::{CaratCompiler, CompileOptions, SigningKey};
use carat_frontend::compile_cm;
use carat_vm::{Vm, VmConfig};

const PROGRAM: &str = r#"
// Sum the squares of 0..100 through a heap array.
int main() {
    int n = 100;
    int* squares = (int*) malloc(n * sizeof(int));
    for (int i = 0; i < n; i += 1) {
        squares[i] = i * i;
    }
    int sum = 0;
    for (int i = 0; i < n; i += 1) {
        sum += squares[i];
    }
    free(squares);
    print_i64(sum);
    return sum;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Front end: Cm -> IR.
    let module = compile_cm("quickstart", PROGRAM)?;
    println!(
        "compiled `quickstart`: {} function(s), {} global(s)",
        module.num_funcs(),
        module.num_globals()
    );

    // 2. CARAT middle end: guards + tracking + Opt 1/2/3 + signing.
    let key = SigningKey::from_passphrase("carat-cc", "quickstart-demo");
    let compiled = CaratCompiler::new(CompileOptions {
        signing: Some(key.clone()),
        ..CompileOptions::default()
    })
    .compile(module)?;
    let census = compiled.census;
    println!(
        "guards: {} injected — {} untouched, {} hoisted, {} merged, {} eliminated",
        census.total, census.untouched, census.hoisted, census.merged, census.eliminated
    );
    let signed = compiled.signed.expect("signing key was supplied");
    println!(
        "signed by `{}`: {}",
        signed.toolchain,
        signed.signature_hex()
    );

    // 3. Kernel load (signature validation) + run in a physical address
    //    space — no TLB, no page table.
    let vm = Vm::load_signed(&signed, vec![key], VmConfig::default())?;
    let result = vm.run()?;

    println!("program output: {:?}", result.output);
    println!(
        "result {} in {} instructions / {} cycles ({} guard checks, {} tracking events)",
        result.ret,
        result.counters.instructions,
        result.counters.cycles,
        result.counters.guards_executed,
        result.counters.track_events,
    );
    assert_eq!(result.ret, (0..100).map(|i| i * i).sum::<i64>());
    Ok(())
}
