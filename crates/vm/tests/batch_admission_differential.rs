//! Batch-admission differential suite: `MultiVm::spawn_batch` must be
//! observationally identical, per tenant, to the same number of
//! sequential [`MultiVm::spawn_shared`] calls — every [`PerfCounters`]
//! field (guard tallies included) and the tenant's capsule bytes —
//! across every engine and both worlds. The only permitted divergence
//! is the modeled admission toll: the batch pays one verify + quota
//! pass for the whole batch where the sequential path pays it per
//! tenant.
//!
//! Also the transactional half: a mid-batch quota refusal unwinds every
//! tenant already stamped, leaving the fleet exactly as before the
//! call.

use std::rc::Rc;

use carat_core::{CaratCompiler, CompileOptions};
use carat_ir::{GlobalInit, Module, ModuleBuilder, Pred, Type};
use carat_kernel::{AdmissionError, LoadConfig, Pid, TenantQuotas};
use carat_vm::{Engine, Mode, MultiVm, MultiVmConfig, ProcOutcome, VmConfig, VmError};
use proptest::prelude::*;

const ENGINES: [Engine; 4] = [
    Engine::Fused,
    Engine::Decoded,
    Engine::Reference,
    Engine::Threaded,
];

/// Heap block published into a global cell (one escape), then a loop
/// storing/loading `i` through the cell: memory traffic, guards, and an
/// escaped pointer — everything a capsule carries. Returns sum of i for
/// i in 0..n = n*(n-1)/2.
fn workload_module(n: i64) -> Module {
    let mut mb = ModuleBuilder::new("batch_workload");
    let cell = mb.global("cell", Type::Ptr, GlobalInit::Zero);
    let f = mb.declare("main", vec![], Some(Type::I64));
    {
        let mut b = mb.define(f);
        let e = b.block("entry");
        let h = b.block("loop.h");
        let l = b.block("loop.b");
        let x = b.block("exit");
        b.switch_to(e);
        let nn = b.const_i64(n);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let size = b.const_i64(256);
        let p = b.malloc(size);
        let ga = b.global_addr(cell);
        b.store(Type::Ptr, ga, p);
        b.jmp(h);
        b.switch_to(h);
        let i = b.phi(Type::I64, vec![(e, zero)]);
        let s = b.phi(Type::I64, vec![(e, zero)]);
        let c = b.icmp(Pred::Slt, i, nn);
        b.br(c, l, x);
        b.switch_to(l);
        let q = b.load(Type::Ptr, ga);
        b.store(Type::I64, q, i);
        let v = b.load(Type::I64, q);
        let s2 = b.add(s, v);
        let i2 = b.add(i, one);
        b.phi_add_incoming(i, l, i2);
        b.phi_add_incoming(s, l, s2);
        b.jmp(h);
        b.switch_to(x);
        b.ret(Some(s));
    }
    mb.finish()
}

fn template(mode: Mode) -> Rc<Module> {
    let m = workload_module(120);
    Rc::new(if mode == Mode::Carat {
        CaratCompiler::new(CompileOptions::default())
            .compile(m)
            .expect("instruments")
            .module
    } else {
        m
    })
}

fn vm_cfg(engine: Engine, mode: Mode) -> VmConfig {
    VmConfig {
        engine,
        mode,
        // Microservice-sized capsules (the fleet bench's sizing): the
        // workload touches a few hundred heap bytes, and small capsules
        // keep a ten-tenant fleet far from the kernel's frame limit.
        load: LoadConfig {
            stack_size: 8 * 1024,
            heap_size: 16 * 1024,
            page_size: 4096,
        },
        ..VmConfig::default()
    }
}

fn empty_fleet(quantum: u64) -> MultiVm {
    MultiVm::new(
        vec![],
        MultiVmConfig {
            quantum,
            ..MultiVmConfig::default()
        },
    )
    .expect("an empty fleet builds")
}

/// The two admission paths under test, over identical kernels: one
/// `spawn_batch` call vs `n` sequential spawns using the same
/// `{prefix}{i}` names the batch stamps.
fn spawn_both(engine: Engine, mode: Mode, quantum: u64, n: usize) -> (MultiVm, MultiVm, Vec<Pid>) {
    let module = template(mode);
    let cfg = vm_cfg(engine, mode);
    let mut batch = empty_fleet(quantum);
    let batch_pids = batch
        .spawn_batch("t", module.clone(), cfg.clone(), n)
        .expect("batch admits");
    let mut seq = empty_fleet(quantum);
    let seq_pids: Vec<Pid> = (0..n)
        .map(|i| {
            seq.spawn_shared(&format!("t{i}"), module.clone(), cfg.clone())
                .expect("sequential spawn admits")
        })
        .collect();
    assert_eq!(batch_pids, seq_pids, "same slab slots in the same order");
    (batch, seq, batch_pids)
}

#[test]
fn batch_equals_sequential_for_every_engine_and_mode() {
    for engine in ENGINES {
        for mode in [Mode::Carat, Mode::Traditional] {
            let n = 3;
            let (mut batch, mut seq, pids) = spawn_both(engine, mode, 97, n);

            // The modeled admission toll is the ONLY divergence: one
            // verify + quota pass vs one per tenant.
            assert_eq!(
                batch.admission_cycles(),
                batch.kernel.cost.admit_batch_cost(n as u64),
                "{engine:?}/{mode:?}: batch toll"
            );
            assert_eq!(
                seq.admission_cycles(),
                seq.kernel.cost.admit_sequential_cost(n as u64),
                "{engine:?}/{mode:?}: sequential toll"
            );

            // Mid-run at a prime quantum (slice boundaries land
            // mid-loop): counters and capsule bytes are bit-identical
            // per tenant.
            assert_eq!(batch.run_batch(5), seq.run_batch(5));
            for &pid in &pids {
                assert_eq!(
                    batch.counters(pid).expect("resident"),
                    seq.counters(pid).expect("resident"),
                    "{engine:?}/{mode:?} {pid}: mid-run counters"
                );
                assert_eq!(
                    batch.capsule_image(pid).expect("resident"),
                    seq.capsule_image(pid).expect("resident"),
                    "{engine:?}/{mode:?} {pid}: capsule bytes must be \
                     bit-identical across admission paths"
                );
            }

            // And to completion: every report matches field for field.
            let br = batch.run();
            let sr = seq.run();
            assert_eq!(br.len(), n);
            assert_eq!(sr.len(), n);
            for (b, s) in br.iter().zip(&sr) {
                assert_eq!(b.name, s.name);
                let (ProcOutcome::Finished(rb), ProcOutcome::Finished(rs)) =
                    (&b.outcome, &s.outcome)
                else {
                    panic!("{engine:?}/{mode:?} {}: both arms finish", b.name);
                };
                assert_eq!(rb.ret, 120 * 119 / 2, "{}: correct result", b.name);
                assert_eq!(rb.ret, rs.ret);
                assert_eq!(
                    rb.counters, rs.counters,
                    "{engine:?}/{mode:?} {}: final counters",
                    b.name
                );
            }
        }
    }
}

#[test]
fn batch_admission_amortizes_the_verify_pass() {
    let n = 10;
    let (batch, seq, _) = spawn_both(Engine::Fused, Mode::Carat, 4096, n);
    assert!(
        seq.admission_cycles() >= 5 * batch.admission_cycles(),
        "batch admission must be >=5x cheaper in modeled cycles \
         (sequential {} vs batch {})",
        seq.admission_cycles(),
        batch.admission_cycles()
    );
    // The acceptance bar at fleet scale, from the same cost model the
    // fleets charged.
    let cost = &batch.kernel.cost;
    assert!(cost.admit_sequential_cost(10_000) >= 5 * cost.admit_batch_cost(10_000));
}

#[test]
fn refused_batch_unwinds_completely() {
    let module = template(Mode::Carat);
    let cfg = vm_cfg(Engine::Fused, Mode::Carat);
    let mut mv = MultiVm::new(
        vec![],
        MultiVmConfig {
            quotas: TenantQuotas {
                max_tenants: 4,
                ..TenantQuotas::default()
            },
            ..MultiVmConfig::default()
        },
    )
    .expect("empty fleet builds");
    let err = mv
        .spawn_batch("t", module.clone(), cfg.clone(), 6)
        .expect_err("the 5th stamp exceeds the tenant quota");
    assert!(
        matches!(
            err,
            VmError::Admission(AdmissionError::TenantLimit { limit: 4 })
        ),
        "typed quota refusal, got {err:?}"
    );
    assert_eq!(mv.len(), 0, "partial stamps are unwound");

    // The unwind released every frame and pid: a full-quota batch then
    // admits and runs cleanly on the same kernel.
    let pids = mv
        .spawn_batch("t", module, cfg, 4)
        .expect("full-quota batch admits after the unwind");
    assert_eq!(pids.len(), 4);
    let reports = mv.run();
    assert_eq!(reports.len(), 4);
    for r in &reports {
        let ProcOutcome::Finished(rr) = &r.outcome else {
            panic!("{}: finishes after unwind", r.name);
        };
        assert_eq!(rr.ret, 120 * 119 / 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any fleet size, quantum, engine, and world: after any number of
    /// slices, every tenant admitted by the batch path is in a
    /// bit-identical execution state (counters + capsule bytes) to its
    /// sequentially admitted twin.
    #[test]
    fn batch_equals_sequential_any_slicing(
        n in 1usize..6,
        quantum in 150u64..4000,
        slices in 1u64..12,
        engine_idx in 0usize..4,
        traditional in proptest::bool::ANY,
    ) {
        let engine = ENGINES[engine_idx];
        let mode = if traditional { Mode::Traditional } else { Mode::Carat };
        let (mut batch, mut seq, pids) = spawn_both(engine, mode, quantum, n);
        prop_assert_eq!(batch.run_batch(slices), seq.run_batch(slices));
        for &pid in &pids {
            // Finished tenants keep their state in the slot until
            // teardown, so both lookups succeed mid-run or after.
            prop_assert_eq!(
                batch.counters(pid).expect("resident"),
                seq.counters(pid).expect("resident")
            );
            prop_assert_eq!(
                batch.capsule_image(pid).expect("resident"),
                seq.capsule_image(pid).expect("resident")
            );
        }
    }
}
