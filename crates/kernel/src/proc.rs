//! The process table: per-process kernel state for multi-tenant
//! operation.
//!
//! CARAT's isolation story (paper §4.3) is that the kernel-maintained
//! *region set* of a process — not a page table — decides what it may
//! touch: every guard the compiler injected checks against the regions of
//! the currently running process, so an address outside them is caught in
//! user mode and surfaced to the kernel as a [`ProtectionFault`]. The
//! process table holds, per process:
//!
//! * its [`Pid`] and lifecycle state ([`ProcState`]);
//! * the admitted [`ProcessImage`](crate::ProcessImage) (the signing
//!   record — what the trust chain accepted at load time);
//! * its guard-region map (installed into the live
//!   [`RegionTable`](carat_runtime::RegionTable) on context switch);
//! * its baseline [`PageTable`] (traditional mode only);
//! * its runtime [`AllocationTable`], parked here while the process is
//!   descheduled and checked out by the scheduler while it runs;
//! * scheduling/fault accounting ([`ProcAccounting`]).
//!
//! Shared memory ([`SharedRegion`]) is a page-aligned block mapped into
//! the region set of several owners; each owner tracks it in its own
//! allocation table, so a kernel move of the block patches every owner's
//! escapes (see `SimKernel::move_shared`).

use crate::loader::ProcessImage;
use crate::pagetable::PageTable;
use carat_runtime::{AllocationTable, Perms, Region};
use std::error::Error;
use std::fmt;

/// Process identifier (index into the process table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl Pid {
    /// The table index this pid names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a shared memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SharedId(pub u32);

impl fmt::Display for SharedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shm{}", self.0)
    }
}

/// A memory access outside the owning process's region set — the typed
/// isolation violation. Never a panic: the guard fails in user mode and
/// the kernel converts it into this record (and keeps scheduling every
/// other process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionFault {
    /// The offending process.
    pub pid: Pid,
    /// The address it tried to touch.
    pub addr: u64,
    /// Access width in bytes.
    pub len: u64,
    /// Whether the access was a write.
    pub write: bool,
}

impl fmt::Display for ProtectionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protection fault: {} {} of {} bytes at {:#x} outside its regions",
            self.pid,
            if self.write { "write" } else { "read" },
            self.len,
            self.addr
        )
    }
}

impl Error for ProtectionFault {}

/// Lifecycle state of a process table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Eligible for scheduling.
    Runnable,
    /// `main` returned with this value.
    Exited(i64),
    /// Killed by an isolation violation.
    Faulted(ProtectionFault),
}

/// Kernel-side accounting for one process. These are *kernel* charges —
/// context-switch and compaction work done on the process's behalf — and
/// deliberately never flow into the process's own
/// `PerfCounters`: a time-sliced run must retire exactly the cycles a
/// sequential run would, with the scheduling overhead reported separately
/// (this is what the differential tests pin down).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcAccounting {
    /// Times this process was switched in.
    pub ctx_switches: u64,
    /// Kernel cycles spent switching this process in.
    pub ctx_switch_cycles: u64,
    /// TLB flushes paid on its behalf (traditional mode only; CARAT
    /// switches never flush — there is no translation state).
    pub tlb_flushes: u64,
    /// Isolation violations this process caused.
    pub protection_faults: u64,
    /// Ranges paged out of this process under memory pressure.
    pub pressure_page_outs: u64,
    /// CARAT moves executed against this process by the compaction pass.
    pub pressure_moves: u64,
    /// Kernel cycles spent compacting/paging this process's memory.
    pub compaction_cycles: u64,
}

/// One process's kernel-side record.
#[derive(Debug)]
pub struct ProcEntry {
    /// Its identifier.
    pub pid: Pid,
    /// Human-readable name (workload name in the benches).
    pub name: String,
    /// Lifecycle state.
    pub state: ProcState,
    /// The admitted image — the record of what the trust chain accepted.
    /// The *live* image (globals patched by moves, stack rebased) travels
    /// with the VM; this copy is the admission-time snapshot.
    pub image: ProcessImage,
    /// Guard-region map while descheduled. Taken (left empty) while this
    /// process is current: the live copy is the kernel's master list.
    pub regions: Vec<Region>,
    /// Baseline page table while descheduled (traditional mode); swapped
    /// with the kernel's live one on context switch.
    pub pagetable: PageTable,
    /// The runtime allocation table, parked here while descheduled.
    /// `None` while the scheduler has it checked out into the running VM.
    pub table: Option<AllocationTable>,
    /// Scheduling/fault accounting.
    pub accounting: ProcAccounting,
}

/// A page-aligned block mapped into several processes' region sets.
#[derive(Debug, Clone)]
pub struct SharedRegion {
    /// Its identifier.
    pub id: SharedId,
    /// Current base address (updated when the kernel moves the block).
    pub base: u64,
    /// Length in bytes (page-aligned).
    pub len: u64,
    /// Processes that have it mapped.
    pub owners: Vec<Pid>,
}

/// The kernel's process table.
#[derive(Debug, Default)]
pub struct ProcTable {
    entries: Vec<ProcEntry>,
    current: Option<Pid>,
    shared: Vec<SharedRegion>,
    /// Cross-process shared-region moves executed.
    pub shared_moves: u64,
    /// Kernel cycles spent in shared-region moves (world stop + patch +
    /// copy across every owner).
    pub shared_move_cycles: u64,
}

impl ProcTable {
    /// An empty table.
    pub fn new() -> ProcTable {
        ProcTable::default()
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no process is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The currently installed process, if any.
    pub fn current(&self) -> Option<Pid> {
        self.current
    }

    pub(crate) fn set_current(&mut self, pid: Option<Pid>) {
        self.current = pid;
    }

    /// All entries, in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcEntry> {
        self.entries.iter()
    }

    /// The entry for `pid`.
    pub fn get(&self, pid: Pid) -> Option<&ProcEntry> {
        self.entries.get(pid.index())
    }

    /// Mutable entry for `pid`.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut ProcEntry> {
        self.entries.get_mut(pid.index())
    }

    pub(crate) fn entry_mut(&mut self, pid: Pid) -> &mut ProcEntry {
        &mut self.entries[pid.index()]
    }

    pub(crate) fn push(&mut self, entry: ProcEntry) -> Pid {
        let pid = entry.pid;
        debug_assert_eq!(pid.index(), self.entries.len());
        self.entries.push(entry);
        pid
    }

    /// Pid that will be assigned to the next registered process.
    pub fn next_pid(&self) -> Pid {
        Pid(self.entries.len() as u32)
    }

    /// Check the allocation table of `pid` out (scheduler: the process is
    /// about to run and the VM owns the table for the slice). Returns
    /// `None` if it is already checked out.
    pub fn checkout_table(&mut self, pid: Pid) -> Option<AllocationTable> {
        self.entries.get_mut(pid.index())?.table.take()
    }

    /// Check the allocation table of `pid` back in (the slice ended).
    pub fn checkin_table(&mut self, pid: Pid, table: AllocationTable) {
        self.entry_mut(pid).table = Some(table);
    }

    /// Round-robin scheduling pick: the first [`ProcState::Runnable`]
    /// entry strictly after `after` in pid order, wrapping around; `None`
    /// when nothing is runnable.
    pub fn next_runnable(&self, after: Option<Pid>) -> Option<Pid> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        let start = after.map(|p| p.index() + 1).unwrap_or(0);
        (0..n)
            .map(|off| (start + off) % n)
            .find(|&i| matches!(self.entries[i].state, ProcState::Runnable))
            .map(|i| self.entries[i].pid)
    }

    /// Record an isolation violation by `pid`: bumps its fault accounting,
    /// marks it [`ProcState::Faulted`], and returns the typed fault.
    pub fn record_protection_fault(
        &mut self,
        pid: Pid,
        addr: u64,
        len: u64,
        write: bool,
    ) -> ProtectionFault {
        let fault = ProtectionFault {
            pid,
            addr,
            len,
            write,
        };
        let e = self.entry_mut(pid);
        e.accounting.protection_faults += 1;
        e.state = ProcState::Faulted(fault);
        fault
    }

    /// All shared regions.
    pub fn shared_regions(&self) -> &[SharedRegion] {
        &self.shared
    }

    /// The shared region `id`.
    pub fn shared(&self, id: SharedId) -> Option<&SharedRegion> {
        self.shared.get(id.0 as usize)
    }

    pub(crate) fn shared_mut(&mut self, id: SharedId) -> &mut SharedRegion {
        &mut self.shared[id.0 as usize]
    }

    pub(crate) fn add_shared(&mut self, base: u64, len: u64) -> SharedId {
        let id = SharedId(self.shared.len() as u32);
        self.shared.push(SharedRegion {
            id,
            base,
            len,
            owners: Vec::new(),
        });
        id
    }

    /// Compaction victim pick under memory pressure: the runnable,
    /// checked-in process whose allocation table carries the most live
    /// escapes (the candidate whose move buys the most patch coverage —
    /// the same heuristic as the single-process worst-page driver).
    /// Deterministic: ties resolve to the highest pid.
    pub fn pick_compaction_victim(&self) -> Option<Pid> {
        self.entries
            .iter()
            .filter(|e| matches!(e.state, ProcState::Runnable))
            .filter_map(|e| e.table.as_ref().map(|t| (e.pid, t)))
            .max_by_key(|(_, t)| {
                t.snapshot()
                    .into_iter()
                    .filter(|&(start, _, _, _)| !crate::SimKernel::is_poison(start))
                    .map(|(_, _, escapes_live, _)| escapes_live)
                    .sum::<usize>()
            })
            .map(|(pid, _)| pid)
    }
}

/// Replace `[src, src+len)` in a region list with a same-length RW region
/// at `dst` (the region-map half of a move), keeping the list sorted.
pub(crate) fn retarget_region(regions: &mut Vec<Region>, src: u64, len: u64, dst: u64) {
    let (lo, hi) = (src, src + len);
    let mut next = Vec::with_capacity(regions.len() + 2);
    for r in regions.drain(..) {
        let (rs, re) = (r.start, r.end());
        if re <= lo || rs >= hi {
            next.push(r);
            continue;
        }
        if rs < lo {
            next.push(Region {
                start: rs,
                len: lo - rs,
                perms: r.perms,
            });
        }
        if re > hi {
            next.push(Region {
                start: hi,
                len: re - hi,
                perms: r.perms,
            });
        }
    }
    next.push(Region {
        start: dst,
        len,
        perms: Perms::RW,
    });
    next.sort_by_key(|r| r.start);
    *regions = next;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_and_shared_display() {
        assert_eq!(Pid(3).to_string(), "pid3");
        assert_eq!(SharedId(1).to_string(), "shm1");
    }

    #[test]
    fn protection_fault_display_names_everything() {
        let f = ProtectionFault {
            pid: Pid(2),
            addr: 0x8000,
            len: 8,
            write: true,
        };
        let s = f.to_string();
        assert!(s.contains("pid2") && s.contains("write") && s.contains("0x8000"));
    }

    #[test]
    fn retarget_splits_and_relocates() {
        let mut regions = vec![Region {
            start: 0x1000,
            len: 0x3000,
            perms: Perms::RW,
        }];
        retarget_region(&mut regions, 0x2000, 0x1000, 0x9000);
        let starts: Vec<u64> = regions.iter().map(|r| r.start).collect();
        assert_eq!(starts, vec![0x1000, 0x3000, 0x9000]);
        assert_eq!(regions[0].len, 0x1000);
        assert_eq!(regions[2].len, 0x1000);
    }

    #[test]
    fn round_robin_skips_dead_processes() {
        let mut t = ProcTable::new();
        for i in 0..3u32 {
            let pid = Pid(i);
            t.push(ProcEntry {
                pid,
                name: format!("p{i}"),
                state: ProcState::Runnable,
                image: crate::loader::ProcessImage::empty_for_tests(),
                regions: Vec::new(),
                pagetable: PageTable::new(),
                table: Some(AllocationTable::new()),
                accounting: ProcAccounting::default(),
            });
        }
        assert_eq!(t.next_runnable(None), Some(Pid(0)));
        assert_eq!(t.next_runnable(Some(Pid(0))), Some(Pid(1)));
        assert_eq!(t.next_runnable(Some(Pid(2))), Some(Pid(0)), "wraps");
        t.entry_mut(Pid(1)).state = ProcState::Exited(0);
        assert_eq!(t.next_runnable(Some(Pid(0))), Some(Pid(2)), "skips dead");
        t.entry_mut(Pid(0)).state = ProcState::Exited(0);
        t.entry_mut(Pid(2)).state = ProcState::Exited(0);
        assert_eq!(t.next_runnable(None), None);
    }

    #[test]
    fn fault_recording_kills_the_process() {
        let mut t = ProcTable::new();
        t.push(ProcEntry {
            pid: Pid(0),
            name: "victim".into(),
            state: ProcState::Runnable,
            image: crate::loader::ProcessImage::empty_for_tests(),
            regions: Vec::new(),
            pagetable: PageTable::new(),
            table: Some(AllocationTable::new()),
            accounting: ProcAccounting::default(),
        });
        let f = t.record_protection_fault(Pid(0), 0x10, 8, false);
        assert_eq!(f.pid, Pid(0));
        assert_eq!(t.get(Pid(0)).unwrap().accounting.protection_faults, 1);
        assert!(matches!(
            t.get(Pid(0)).unwrap().state,
            ProcState::Faulted(_)
        ));
        assert_eq!(t.next_runnable(None), None);
    }
}
