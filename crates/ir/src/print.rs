//! Textual serialization of modules — the reproduction's "bitcode".
//!
//! The format is line-oriented and round-trips exactly through
//! [`crate::parse::parse_module`]. Code signing operates on these bytes.

use crate::func::{Function, ValueDef};
use crate::inst::{BlockId, Const, FuncId, Inst, ValueId};
use crate::module::{GlobalInit, Module};
use std::fmt::Write as _;

/// Serialize a module to its textual form.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", m.name);
    out.push('\n');
    for gid in m.global_ids() {
        let g = m.global(gid);
        let init = match &g.init {
            GlobalInit::Zero => "zero".to_string(),
            GlobalInit::Bytes(bs) => {
                let mut s = String::from("bytes [");
                for (i, b) in bs.iter().enumerate() {
                    if i > 0 {
                        s.push(' ');
                    }
                    let _ = write!(s, "{b:02x}");
                }
                s.push(']');
                s
            }
            GlobalInit::I64s(ws) => {
                let mut s = String::from("i64s [");
                for (i, w) in ws.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{w}");
                }
                s.push(']');
                s
            }
            GlobalInit::F64s(ws) => {
                let mut s = String::from("f64s [");
                for (i, w) in ws.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "0x{:016x}", w.to_bits());
                }
                s.push(']');
                s
            }
        };
        let _ = writeln!(out, "global @{} : {} = {}", g.name, g.ty, init);
    }
    if m.num_globals() > 0 {
        out.push('\n');
    }
    for fid in m.func_ids() {
        print_func(&mut out, m, m.func(fid));
        out.push('\n');
    }
    out
}

fn print_func(out: &mut String, m: &Module, f: &Function) {
    let _ = write!(out, "func @{}(", f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{p}");
    }
    out.push(')');
    if let Some(r) = &f.ret {
        let _ = write!(out, " -> {r}");
    }
    out.push_str(" {\n");
    for b in f.block_ids() {
        let _ = writeln!(out, "{} {}:", b, f.block(b).name);
        for &v in &f.block(b).insts {
            out.push_str("  ");
            print_inst(out, m, f, v);
            out.push('\n');
        }
    }
    out.push_str("}\n");
}

fn print_inst(out: &mut String, m: &Module, f: &Function, v: ValueId) {
    let inst = match f.def(v) {
        ValueDef::Inst { inst, .. } => inst,
        ValueDef::Arg { .. } => unreachable!("args are not printed as instructions"),
    };
    // producer prefix
    if produces_value(f, v, inst) {
        let _ = write!(out, "{v} = ");
    }
    match inst {
        Inst::Const(c) => match c {
            Const::Int(x, w) => {
                let _ = write!(out, "const {w} {x}");
            }
            Const::F64(x) => {
                let _ = write!(out, "const f64 0x{:016x}", x.to_bits());
            }
            Const::Null => {
                let _ = write!(out, "const null");
            }
            Const::GlobalAddr(g) => {
                let _ = write!(out, "const global @{}", m.global(*g).name);
            }
        },
        Inst::Alloca(ty) => {
            let _ = write!(out, "alloca {ty}");
        }
        Inst::Load { ty, addr } => {
            let _ = write!(out, "load {ty}, {addr}");
        }
        Inst::Store { ty, addr, value } => {
            let _ = write!(out, "store {ty} {value}, {addr}");
        }
        Inst::PtrAdd { base, index, elem } => {
            let _ = write!(out, "ptradd {base}, {index}, {elem}");
        }
        Inst::FieldAddr {
            base,
            struct_ty,
            field,
        } => {
            let _ = write!(out, "fieldaddr {base}, {struct_ty}, {field}");
        }
        Inst::Bin { op, lhs, rhs } => {
            let _ = write!(out, "{} {lhs}, {rhs}", op.mnemonic());
        }
        Inst::Icmp { pred, lhs, rhs } => {
            let _ = write!(out, "icmp {} {lhs}, {rhs}", pred.mnemonic());
        }
        Inst::Fcmp { pred, lhs, rhs } => {
            let _ = write!(out, "fcmp {} {lhs}, {rhs}", pred.mnemonic());
        }
        Inst::Cast { kind, value, to } => {
            let _ = write!(out, "{} {value} to {to}", kind.mnemonic());
        }
        Inst::Select {
            cond,
            if_true,
            if_false,
        } => {
            let _ = write!(out, "select {cond}, {if_true}, {if_false}");
        }
        Inst::Phi { ty, incomings } => {
            let _ = write!(out, "phi {ty}");
            for (i, (b, val)) in incomings.iter().enumerate() {
                let sep = if i == 0 { ' ' } else { ',' };
                if i > 0 {
                    let _ = write!(out, "{sep} [{b}, {val}]");
                } else {
                    let _ = write!(out, " [{b}, {val}]");
                }
            }
        }
        Inst::Call {
            callee,
            args,
            ret_ty,
        } => {
            let _ = write!(out, "call @{}(", callee_name(m, *callee));
            write_args(out, args);
            out.push(')');
            if let Some(t) = ret_ty {
                let _ = write!(out, " : {t}");
            }
        }
        Inst::CallIntrinsic { intr, args } => {
            let _ = write!(out, "intr {}(", intr.name());
            write_args(out, args);
            out.push(')');
        }
        Inst::Jmp { target } => {
            let _ = write!(out, "jmp {target}");
        }
        Inst::Br {
            cond,
            if_true,
            if_false,
        } => {
            let _ = write!(out, "br {cond}, {if_true}, {if_false}");
        }
        Inst::Ret { value } => match value {
            Some(v) => {
                let _ = write!(out, "ret {v}");
            }
            None => {
                let _ = write!(out, "ret");
            }
        },
        Inst::Unreachable => {
            let _ = write!(out, "unreachable");
        }
    }
}

fn write_args(out: &mut String, args: &[ValueId]) {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{a}");
    }
}

fn callee_name(m: &Module, f: FuncId) -> &str {
    &m.func(f).name
}

fn produces_value(_f: &Function, _v: ValueId, inst: &Inst) -> bool {
    match inst {
        // Integer binops and selects have operand-dependent types but always
        // produce a value.
        Inst::Bin { .. } | Inst::Select { .. } => true,
        Inst::Call { ret_ty, .. } => ret_ty.is_some(),
        other => other.result_ty().is_some(),
    }
}

/// Convenience alias used by downstream crates: serialized module bytes.
pub fn module_bytes(m: &Module) -> Vec<u8> {
    print_module(m).into_bytes()
}

// Re-exported display for blocks used in the printing above comes from inst.rs.

#[allow(dead_code)]
fn _assert_display(b: BlockId) -> String {
    format!("{b}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{Intrinsic, Pred};
    use crate::types::Type;

    #[test]
    fn prints_simple_function() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare("double_it", vec![Type::I64], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let a = b.arg(0);
            let s = b.add(a, a);
            b.ret(Some(s));
        }
        let txt = print_module(&mb.finish());
        assert!(txt.contains("func @double_it(i64) -> i64 {"));
        assert!(txt.contains("%1 = add %0, %0"));
        assert!(txt.contains("ret %1"));
    }

    #[test]
    fn prints_guards_and_phis() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare("g", vec![Type::Ptr], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let l = b.block("loop");
            b.switch_to(e);
            let len = b.const_i64(8);
            b.intr(Intrinsic::GuardLoad, vec![b.arg(0), len]);
            b.jmp(l);
            b.switch_to(l);
            let p = b.phi(Type::Ptr, vec![(e, b.arg(0)), (l, b.arg(0))]);
            let c = b.icmp(Pred::Eq, p, p);
            b.br(c, l, l);
        }
        let txt = print_module(&mb.finish());
        assert!(txt.contains("intr carat.guard.load(%0, %1)"));
        assert!(txt.contains("phi ptr [bb0, %0], [bb1, %0]"));
    }

    #[test]
    fn f64_constants_print_as_bits() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare("c", vec![], Some(Type::F64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let c = b.const_f64(1.0);
            b.ret(Some(c));
        }
        let txt = print_module(&mb.finish());
        assert!(txt.contains("const f64 0x3ff0000000000000"), "{txt}");
    }
}
