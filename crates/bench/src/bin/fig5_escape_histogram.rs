//! Figure 5 — histogram of (lifetime) escapes per allocation across the
//! suite, split at 50 escapes as in the paper.

use carat_bench::{print_table, run_simple, scale_from_args, selected_workloads, Variant};
use std::collections::BTreeMap;

fn main() {
    let scale = scale_from_args();
    println!("Figure 5: escapes per allocation ({scale:?} scale)\n");
    let mut small: BTreeMap<u64, u64> = BTreeMap::new();
    let mut big: BTreeMap<u64, u64> = BTreeMap::new();
    let mut per_wl = Vec::new();
    let mut total_allocs = 0u64;
    let mut le10 = 0u64;
    for w in selected_workloads() {
        let r = run_simple(&w, scale, Variant::Tracking);
        let mut wl_allocs = 0u64;
        let mut wl_max = 0u64;
        for (&escapes, &count) in r
            .track_stats
            .escape_histogram
            .iter()
            .collect::<BTreeMap<_, _>>()
        {
            wl_allocs += count;
            wl_max = wl_max.max(escapes);
            total_allocs += count;
            if escapes <= 10 {
                le10 += count;
            }
            if escapes <= 50 {
                *small.entry(escapes).or_insert(0) += count;
            } else {
                *big.entry(escapes).or_insert(0) += count;
            }
        }
        per_wl.push(vec![
            w.name.to_string(),
            wl_allocs.to_string(),
            wl_max.to_string(),
        ]);
    }
    print_table(&["benchmark", "allocations", "max escapes"], &per_wl);

    println!("\n(a) allocations with <= 50 escapes");
    let rows: Vec<Vec<String>> = small
        .iter()
        .map(|(e, c)| vec![e.to_string(), c.to_string()])
        .collect();
    print_table(&["escapes", "allocations"], &rows);

    println!("\n(b) allocations with > 50 escapes (outliers)");
    if big.is_empty() {
        println!("(none)");
    } else {
        let rows: Vec<Vec<String>> = big
            .iter()
            .map(|(e, c)| vec![e.to_string(), c.to_string()])
            .collect();
        print_table(&["escapes", "allocations"], &rows);
    }
    println!(
        "\n{:.1}% of all {} allocations have <= 10 escapes (paper: ~90%)",
        le10 as f64 * 100.0 / total_allocs.max(1) as f64,
        total_allocs
    );
}
