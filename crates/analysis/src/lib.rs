//! # carat-analysis — program analyses for the CARAT compiler
//!
//! Implements the analysis stack that CARAT's guard optimizations rely on
//! (paper §4.1.1):
//!
//! * [`Cfg`], [`DomTree`], [`LoopForest`] — control-flow structure;
//! * [`ChainedAlias`] — several alias analyses combined best-of-N, the
//!   reproduction of the prototype's 15-analysis LLVM alias chain;
//! * [`LoopInvariance`] — alias-enhanced loop-invariant detection (Opt 1);
//! * [`canonical_loop_info`] / [`ptr_evolution`] — scalar evolution for
//!   counted loops (Opt 2);
//! * [`ValueRanges`] — conditional value-range analysis;
//! * [`Availability`] — the AC/DC available-pointer-defs dataflow (Opt 3);
//! * [`prove_function`] — whole-trip guard proofs consumed by the threaded
//!   engine tier to elide and hoist guards at decode time.
//!
//! ## Example
//!
//! ```
//! use carat_ir::{ModuleBuilder, Type};
//! use carat_analysis::{Cfg, DomTree, LoopForest};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let f = mb.declare("main", vec![], None);
//! {
//!     let mut b = mb.define(f);
//!     let e = b.block("entry");
//!     b.switch_to(e);
//!     b.ret(None);
//! }
//! let m = mb.finish();
//! let func = m.func(m.main().unwrap());
//! let cfg = Cfg::compute(func);
//! let dom = DomTree::compute(func, &cfg);
//! let loops = LoopForest::compute(func, &cfg, &dom);
//! assert!(loops.loops.is_empty());
//! ```

#![warn(missing_docs)]

mod alias;
mod avail;
mod bitset;
mod cfg;
mod dom;
mod invariance;
mod loops;
mod proofs;
mod range;
mod scev;
mod steensgaard;

pub use alias::{
    trace_base, AliasAnalysis, AliasResult, BaseObject, BaseObjectAlias, ChainedAlias, MemLoc,
    OffsetAlias, TypeBasedAlias,
};
pub use avail::Availability;
pub use bitset::BitSet;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use invariance::LoopInvariance;
pub use loops::{ensure_preheader, Loop, LoopForest};
pub use proofs::{
    prove_function, prove_function_in, FunctionProofs, GuardProof, LoopPlan, ProofKind,
};
pub use range::{Interval, ValueRanges};
pub use scev::{
    affine_index, canonical_loop_info, ptr_evolution, AffineIndex, LoopTripInfo, PtrEvolution,
};
pub use steensgaard::Steensgaard;
