//! Pre-decoded execution programs: each loaded [`Module`] is compiled
//! once into flat per-function arrays of [`DecodedInst`] — a `Copy`-able
//! instruction with operand register slots, immediate constants, resolved
//! alloca offsets, precomputed per-edge phi copy lists, and direct
//! intrinsic dispatch. The interpreter's hot loop then executes over
//! `(func, block, idx)` cursors into this stream with zero per-step
//! cloning and no hash lookups.
//!
//! Decoding is an engine-side cache, not a semantic transformation: a
//! decoded program must produce the same observable behavior — return
//! value, output, and every [`PerfCounters`](crate::PerfCounters) field —
//! as the reference interpreter walking the IR arena directly. The
//! differential harness in `tests/decoded_differential.rs` enforces this
//! across the full workload suite.

use carat_core::guards::frame_size;
use carat_ir::{BinOp, BlockId, CastKind, Const, Inst, IntTy, Intrinsic, Module, Opcode, Pred};

/// Register slot sentinel for "no value" (absent return value/operand).
pub const NO_REG: u32 = u32::MAX;

/// The scalar class of a memory access, with its size pre-resolved.
#[derive(Debug, Clone, Copy)]
pub enum ScalarClass {
    /// 8-byte float.
    F64,
    /// 8-byte pointer.
    Ptr,
    /// Integer of the given width.
    Int(IntTy),
}

impl ScalarClass {
    /// Access size in bytes.
    #[inline]
    pub fn size(self) -> u64 {
        match self {
            ScalarClass::F64 | ScalarClass::Ptr => 8,
            ScalarClass::Int(w) => w.size(),
        }
    }
}

/// A `(start, len)` window into a [`DecodedFunc`]'s operand pool.
#[derive(Debug, Clone, Copy)]
pub struct OperandRange {
    /// First index in [`DecodedFunc::operands`].
    pub start: u32,
    /// Number of operands.
    pub len: u32,
}

/// One fully resolved instruction. Everything static — immediates, frame
/// offsets, operand register slots, access sizes, result widths — is
/// folded in at decode time; only dynamic state (register values, memory)
/// remains for the interpreter.
#[derive(Debug, Clone, Copy)]
pub enum DecodedInst {
    /// Integer constant, already width-wrapped.
    ConstI {
        /// Destination register.
        dst: u32,
        /// Wrapped value.
        val: i64,
    },
    /// Float constant.
    ConstF {
        /// Destination register.
        dst: u32,
        /// Value.
        val: f64,
    },
    /// The null pointer.
    ConstNull {
        /// Destination register.
        dst: u32,
    },
    /// Address of a global. The *index* is kept (not the address): globals
    /// relocate when their range moves or swaps, so the current address is
    /// read from the image at execution time.
    ConstGlobal {
        /// Destination register.
        dst: u32,
        /// Global index.
        global: u32,
    },
    /// Stack slot address: `sp_base + off`, with `off` resolved at decode
    /// time (this kills the per-function offset `HashMap`).
    Alloca {
        /// Destination register.
        dst: u32,
        /// Byte offset within the frame.
        off: u64,
    },
    /// Scalar load.
    Load {
        /// Destination register.
        dst: u32,
        /// Address register.
        addr: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// Scalar store.
    Store {
        /// Address register.
        addr: u32,
        /// Value register.
        value: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// `base + index * stride` with the element stride pre-resolved.
    PtrAdd {
        /// Destination register.
        dst: u32,
        /// Base pointer register.
        base: u32,
        /// Index register.
        index: u32,
        /// Element stride in bytes.
        stride: u64,
    },
    /// `base + off` with the field offset pre-resolved.
    FieldAddr {
        /// Destination register.
        dst: u32,
        /// Base pointer register.
        base: u32,
        /// Field byte offset.
        off: u64,
    },
    /// Two-operand arithmetic with the result width pre-resolved from the
    /// left operand's type.
    Bin {
        /// Destination register.
        dst: u32,
        /// Operation.
        op: BinOp,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
        /// Integer result width (unused by float ops).
        width: IntTy,
    },
    /// Integer/pointer comparison.
    Icmp {
        /// Destination register.
        dst: u32,
        /// Predicate.
        pred: Pred,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
    },
    /// Float comparison.
    Fcmp {
        /// Destination register.
        dst: u32,
        /// Predicate.
        pred: Pred,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
    },
    /// Scalar conversion with the integer target width pre-resolved.
    Cast {
        /// Destination register.
        dst: u32,
        /// Conversion kind.
        kind: CastKind,
        /// Source register.
        src: u32,
        /// Target integer width (sext/zext/trunc only).
        width: IntTy,
    },
    /// `cond ? if_true : if_false`.
    Select {
        /// Destination register.
        dst: u32,
        /// Condition register.
        cond: u32,
        /// Register taken when true.
        if_true: u32,
        /// Register taken when false.
        if_false: u32,
    },
    /// Execute the whole phi batch at this block's head: one copy list per
    /// predecessor edge, applied in parallel. Counts as one instruction,
    /// exactly like the reference interpreter's en-bloc phi evaluation.
    PhiBatch,
    /// Direct call to a user function.
    Call {
        /// Register receiving the return value (also the call's id).
        dst: u32,
        /// Callee function index.
        callee: u32,
        /// Argument registers.
        args: OperandRange,
    },
    /// Direct-dispatch intrinsic call.
    Intrinsic {
        /// Register receiving the result (if the intrinsic returns one).
        dst: u32,
        /// The intrinsic.
        intr: Intrinsic,
        /// Argument registers.
        args: OperandRange,
    },
    /// Unconditional branch.
    Jmp {
        /// Target block index.
        target: u32,
    },
    /// Conditional branch.
    Br {
        /// Condition register.
        cond: u32,
        /// Block index when true.
        if_true: u32,
        /// Block index when false.
        if_false: u32,
    },
    /// Return ([`NO_REG`] = void).
    Ret {
        /// Returned register or [`NO_REG`].
        value: u32,
    },
    /// Trap if executed.
    Unreachable,
    /// A load/store of an aggregate type: traps when executed (matching
    /// the reference interpreter, which rejects it at execution time, not
    /// load time).
    TrapAggregate {
        /// Whether the faulting access was a store.
        store: bool,
    },

    // --- superinstructions (fused streams only) ---
    //
    // Each fused variant packs two adjacent instructions into one dispatch.
    // The fused stream keeps the *original* instruction in the second
    // (tail) slot, so execution can resume unfused at an exact component
    // boundary when the engine bails out mid-pair (scheduler rotation,
    // due move/swap driver, step limit). Fused execution is accounting-
    // transparent: each component charges exactly the cycles, counters,
    // and opcode-mix entries its unfused form would.
    /// `PtrAdd` immediately consumed by a `Load` of its result.
    FusedPtrAddLoad {
        /// The pointer destination register (still written — the value may
        /// have other uses, and world-stop register patching must see it).
        pdst: u32,
        /// Base pointer register.
        base: u32,
        /// Index register.
        index: u32,
        /// Element stride in bytes (fusion requires it fits u32).
        stride: u32,
        /// Load destination register.
        dst: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// `PtrAdd` immediately consumed by a `Store` through its result.
    FusedPtrAddStore {
        /// The pointer destination register.
        pdst: u32,
        /// Base pointer register.
        base: u32,
        /// Index register.
        index: u32,
        /// Element stride in bytes.
        stride: u32,
        /// Value register.
        value: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// `FieldAddr` immediately consumed by a `Load` of its result.
    FusedFieldLoad {
        /// The pointer destination register.
        pdst: u32,
        /// Base pointer register.
        base: u32,
        /// Field byte offset (fusion requires it fits u32).
        off: u32,
        /// Load destination register.
        dst: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// `FieldAddr` immediately consumed by a `Store` through its result.
    FusedFieldStore {
        /// The pointer destination register.
        pdst: u32,
        /// Base pointer register.
        base: u32,
        /// Field byte offset.
        off: u32,
        /// Value register.
        value: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// A `guard_load` intrinsic folded into the `Load` it protects: one
    /// dispatch performs check + access.
    FusedGuardLoad {
        /// Guarded-address register (the guard intrinsic's first arg).
        gaddr: u32,
        /// Guarded-length register (the guard intrinsic's second arg).
        glen: u32,
        /// Load destination register.
        dst: u32,
        /// Load address register (re-read after the guard: servicing a
        /// poison fault patches registers).
        addr: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// A `guard_store` intrinsic folded into the `Store` it protects.
    FusedGuardStore {
        /// Guarded-address register.
        gaddr: u32,
        /// Guarded-length register.
        glen: u32,
        /// Store address register.
        addr: u32,
        /// Value register.
        value: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// `Icmp` feeding the `Br` that consumes it (the compare result is
    /// still written: phis and later uses read it).
    FusedIcmpBr {
        /// Compare destination register.
        cdst: u32,
        /// Predicate.
        pred: Pred,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
        /// Block index when true.
        if_true: u32,
        /// Block index when false.
        if_false: u32,
    },
    /// An integer `Const` feeding an operand of the next `Bin`.
    FusedConstBin {
        /// Constant destination register.
        cdst: u32,
        /// The constant (fusion requires it fits i32).
        imm: i32,
        /// Bin destination register.
        dst: u32,
        /// Operation.
        op: BinOp,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
        /// Integer result width.
        width: IntTy,
    },
    /// `Bin` + `Bin`: two adjacent ALU ops in one dispatch (no dataflow
    /// requirement — adjacency alone is enough, since the first result is
    /// written before the second op reads its operands). Register slots
    /// are narrowed to `u16` to stay inside the 24-byte slot budget;
    /// fusion is skipped for functions with more than 65 535 values.
    FusedBinBin {
        /// First op's destination register.
        dst1: u16,
        /// First op's left operand register.
        lhs1: u16,
        /// First op's right operand register.
        rhs1: u16,
        /// Second op's destination register.
        dst2: u16,
        /// Second op's left operand register.
        lhs2: u16,
        /// Second op's right operand register.
        rhs2: u16,
        /// First operation.
        op1: BinOp,
        /// Second operation.
        op2: BinOp,
        /// First op's integer result width.
        w1: IntTy,
        /// Second op's integer result width.
        w2: IntTy,
    },
    /// `Bin` + `Jmp`: loop-latch arithmetic folded into its back edge.
    FusedBinJmp {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
        /// Jump target block index.
        target: u32,
        /// Operation.
        op: BinOp,
        /// Integer result width.
        width: IntTy,
    },
    /// `Fcmp` feeding the `Br` that consumes it (float mirror of
    /// [`FusedIcmpBr`](DecodedInst::FusedIcmpBr)).
    FusedFcmpBr {
        /// Compare destination register.
        cdst: u32,
        /// Predicate.
        pred: Pred,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
        /// Block index when true.
        if_true: u32,
        /// Block index when false.
        if_false: u32,
    },
    /// A float `Const` feeding an operand of the next `Bin` (register
    /// slots narrowed to `u16` so the `f64` immediate fits the slot).
    FusedConstFBin {
        /// The constant.
        val: f64,
        /// Constant destination register.
        cdst: u16,
        /// Bin destination register.
        dst: u16,
        /// Left operand register.
        lhs: u16,
        /// Right operand register.
        rhs: u16,
        /// Operation.
        op: BinOp,
        /// Integer result width (unused by float ops, kept for exact
        /// replication of the unfused `Bin`).
        width: IntTy,
    },
    /// Two adjacent integer `Const`s (both must fit `i32`) — argument
    /// set-up runs and constant-heavy preambles.
    FusedConstConst {
        /// First destination register.
        dst1: u32,
        /// First constant.
        v1: i32,
        /// Second destination register.
        dst2: u32,
        /// Second constant.
        v2: i32,
    },
    /// `PtrAdd` followed by an integer `Const` (adjacency only — the
    /// usual shape is an address computation next to the constant its
    /// consumer also needs).
    FusedPtrAddConst {
        /// Pointer destination register.
        pdst: u16,
        /// Base pointer register.
        base: u16,
        /// Index register.
        index: u16,
        /// Constant destination register.
        cdst: u16,
        /// Element stride in bytes (fusion requires it fits u32).
        stride: u32,
        /// The constant (fusion requires it fits i32).
        imm: i32,
    },
    /// `Cast` + `Bin`: a width change or int/float conversion feeding
    /// straight into arithmetic (adjacency only, like `FusedBinBin`).
    FusedCastBin {
        /// Cast destination register.
        cdst: u16,
        /// Cast source register.
        src: u16,
        /// Bin destination register.
        dst: u16,
        /// Left operand register.
        lhs: u16,
        /// Right operand register.
        rhs: u16,
        /// Cast kind.
        kind: CastKind,
        /// Cast integer result width.
        cw: IntTy,
        /// Operation.
        op: BinOp,
        /// Bin integer result width.
        bw: IntTy,
    },

    // --- threaded-tier ops (threaded streams only) ---
    //
    // These appear only in `DecodedBlock::threaded_code`, built by the
    // threaded engine's decode-time transform. They are never produced by
    // plain decoding or fusion, so the reference/decoded/fused engines
    // never see them.
    /// Superblock seam: replaces the unconditional branch between two
    /// chained blocks. Accounts exactly like the `Jmp` it replaced but
    /// advances the cursor *into the next member's segment of the same
    /// concatenated stream* instead of re-pinning code — the whole point
    /// of chaining.
    Seam {
        /// Block index the cursor logically enters (the chain member whose
        /// segment starts at the next slot).
        to: u32,
    },
    /// A guard statically proven redundant by an identical-or-wider guard
    /// earlier in its block. Executes nothing — it only counts one elided
    /// guard so `guards_executed + guards_elided` stays reconcilable with
    /// the fused baseline.
    ElidedGuard,
    /// A widened whole-trip range guard at a loop preheader, standing in
    /// for every per-iteration guard the transform elided from the loop
    /// body. Carries an index into [`DecodedFunc::hoists`].
    HoistedGuard {
        /// Index into [`DecodedFunc::hoists`].
        meta: u32,
    },
    /// A surviving `GuardLoad`/`GuardStore` intrinsic strength-reduced to
    /// a fast-tier range probe: same region-table check, same accounting,
    /// but without leaving the fast dispatch loop for the intrinsic
    /// machinery. On a check miss it falls back to the slow tier, which
    /// re-runs the full guard path (page-in retry, fault reporting).
    GuardFast {
        /// Register holding the guarded address.
        gaddr: u32,
        /// Register holding the access length in bytes, or [`NO_REG`]
        /// when the length is the `imm` immediate (a single-use literal
        /// whose const slot was dropped from the threaded stream).
        glen: u32,
        /// Immediate access length (valid when `glen` is [`NO_REG`]).
        imm: u32,
        /// Whether the guarded access is a write.
        write: bool,
    },
}

impl DecodedInst {
    /// The [`Opcode`] this decoded instruction accounts as — identical to
    /// the classification of the IR instruction it was decoded from.
    #[inline]
    pub fn opcode(self) -> Opcode {
        match self {
            DecodedInst::ConstI { .. }
            | DecodedInst::ConstF { .. }
            | DecodedInst::ConstNull { .. }
            | DecodedInst::ConstGlobal { .. } => Opcode::Const,
            DecodedInst::Alloca { .. } => Opcode::Alloca,
            DecodedInst::Load { .. } => Opcode::Load,
            DecodedInst::Store { .. } => Opcode::Store,
            DecodedInst::PtrAdd { .. } => Opcode::PtrAdd,
            DecodedInst::FieldAddr { .. } => Opcode::FieldAddr,
            DecodedInst::Bin { .. } => Opcode::Bin,
            DecodedInst::Icmp { .. } => Opcode::Icmp,
            DecodedInst::Fcmp { .. } => Opcode::Fcmp,
            DecodedInst::Cast { .. } => Opcode::Cast,
            DecodedInst::Select { .. } => Opcode::Select,
            DecodedInst::PhiBatch => Opcode::Phi,
            DecodedInst::Call { .. } => Opcode::Call,
            DecodedInst::Intrinsic { .. } => Opcode::CallIntrinsic,
            DecodedInst::Jmp { .. } => Opcode::Jmp,
            DecodedInst::Br { .. } => Opcode::Br,
            DecodedInst::Ret { .. } => Opcode::Ret,
            DecodedInst::Unreachable => Opcode::Unreachable,
            DecodedInst::TrapAggregate { store } => {
                if store {
                    Opcode::Store
                } else {
                    Opcode::Load
                }
            }
            // Fused variants account their first component here; the
            // executing arm accounts the tail component itself.
            DecodedInst::FusedPtrAddLoad { .. } | DecodedInst::FusedPtrAddStore { .. } => {
                Opcode::PtrAdd
            }
            DecodedInst::FusedFieldLoad { .. } | DecodedInst::FusedFieldStore { .. } => {
                Opcode::FieldAddr
            }
            DecodedInst::FusedGuardLoad { .. } | DecodedInst::FusedGuardStore { .. } => {
                Opcode::CallIntrinsic
            }
            DecodedInst::FusedIcmpBr { .. } => Opcode::Icmp,
            DecodedInst::FusedFcmpBr { .. } => Opcode::Fcmp,
            DecodedInst::FusedConstBin { .. }
            | DecodedInst::FusedConstFBin { .. }
            | DecodedInst::FusedConstConst { .. } => Opcode::Const,
            DecodedInst::FusedBinBin { .. } | DecodedInst::FusedBinJmp { .. } => Opcode::Bin,
            DecodedInst::FusedPtrAddConst { .. } => Opcode::PtrAdd,
            DecodedInst::FusedCastBin { .. } => Opcode::Cast,
            // A seam retires the Jmp it replaced; the guard markers retire
            // nothing (their arms account explicitly), but `opcode` must
            // stay total, and the guards they stand in for were intrinsics.
            DecodedInst::Seam { .. } => Opcode::Jmp,
            DecodedInst::ElidedGuard
            | DecodedInst::HoistedGuard { .. }
            | DecodedInst::GuardFast { .. } => Opcode::CallIntrinsic,
        }
    }

    /// The number of IR instructions this slot retires when executed to
    /// completion (2 for fused superinstructions, 1 otherwise).
    #[inline]
    pub fn components(self) -> u64 {
        match self.fused_kind() {
            Some(_) => 2,
            None => 1,
        }
    }

    /// Which fusion pattern this is, if any.
    #[inline]
    pub fn fused_kind(self) -> Option<FusedKind> {
        match self {
            DecodedInst::FusedPtrAddLoad { .. } => Some(FusedKind::PtrAddLoad),
            DecodedInst::FusedPtrAddStore { .. } => Some(FusedKind::PtrAddStore),
            DecodedInst::FusedFieldLoad { .. } => Some(FusedKind::FieldLoad),
            DecodedInst::FusedFieldStore { .. } => Some(FusedKind::FieldStore),
            DecodedInst::FusedGuardLoad { .. } => Some(FusedKind::GuardLoad),
            DecodedInst::FusedGuardStore { .. } => Some(FusedKind::GuardStore),
            DecodedInst::FusedIcmpBr { .. } => Some(FusedKind::IcmpBr),
            DecodedInst::FusedConstBin { .. } => Some(FusedKind::ConstBin),
            DecodedInst::FusedBinBin { .. } => Some(FusedKind::BinBin),
            DecodedInst::FusedBinJmp { .. } => Some(FusedKind::BinJmp),
            DecodedInst::FusedFcmpBr { .. } => Some(FusedKind::FcmpBr),
            DecodedInst::FusedConstFBin { .. } => Some(FusedKind::ConstFBin),
            DecodedInst::FusedConstConst { .. } => Some(FusedKind::ConstConst),
            DecodedInst::FusedPtrAddConst { .. } => Some(FusedKind::PtrAddConst),
            DecodedInst::FusedCastBin { .. } => Some(FusedKind::CastBin),
            _ => None,
        }
    }
}

/// The fusion patterns the peephole pass recognizes, chosen from the
/// dominant adjacent pairs in the workload suite's dynamic `OpcodeMix`
/// (address computation feeding its memory access, compare feeding its
/// branch, constant feeding an ALU op, and guard intrinsics folded into
/// the access they protect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FusedKind {
    /// `PtrAdd` + `Load`.
    PtrAddLoad,
    /// `PtrAdd` + `Store`.
    PtrAddStore,
    /// `FieldAddr` + `Load`.
    FieldLoad,
    /// `FieldAddr` + `Store`.
    FieldStore,
    /// `guard_load` + `Load`.
    GuardLoad,
    /// `guard_store` + `Store`.
    GuardStore,
    /// `Icmp` + `Br`.
    IcmpBr,
    /// `Const` + `Bin`.
    ConstBin,
    /// `Bin` + `Bin`.
    BinBin,
    /// `Bin` + `Jmp`.
    BinJmp,
    /// `Fcmp` + `Br`.
    FcmpBr,
    /// Float `Const` + `Bin`.
    ConstFBin,
    /// `Const` + `Const`.
    ConstConst,
    /// `PtrAdd` + `Const`.
    PtrAddConst,
    /// `Cast` + `Bin`.
    CastBin,
}

/// Number of [`FusedKind`] variants (array-indexed stats).
pub const FUSED_KINDS: usize = 15;

impl FusedKind {
    /// All kinds, in index order.
    pub const ALL: [FusedKind; FUSED_KINDS] = [
        FusedKind::PtrAddLoad,
        FusedKind::PtrAddStore,
        FusedKind::FieldLoad,
        FusedKind::FieldStore,
        FusedKind::GuardLoad,
        FusedKind::GuardStore,
        FusedKind::IcmpBr,
        FusedKind::ConstBin,
        FusedKind::BinBin,
        FusedKind::BinJmp,
        FusedKind::FcmpBr,
        FusedKind::ConstFBin,
        FusedKind::ConstConst,
        FusedKind::PtrAddConst,
        FusedKind::CastBin,
    ];

    /// Human-readable pair name.
    pub fn name(self) -> &'static str {
        match self {
            FusedKind::PtrAddLoad => "ptradd+load",
            FusedKind::PtrAddStore => "ptradd+store",
            FusedKind::FieldLoad => "fieldaddr+load",
            FusedKind::FieldStore => "fieldaddr+store",
            FusedKind::GuardLoad => "guard+load",
            FusedKind::GuardStore => "guard+store",
            FusedKind::IcmpBr => "icmp+br",
            FusedKind::ConstBin => "const+bin",
            FusedKind::BinBin => "bin+bin",
            FusedKind::BinJmp => "bin+jmp",
            FusedKind::FcmpBr => "fcmp+br",
            FusedKind::ConstFBin => "constf+bin",
            FusedKind::ConstConst => "const+const",
            FusedKind::PtrAddConst => "ptradd+const",
            FusedKind::CastBin => "cast+bin",
        }
    }
}

/// Dynamic fusion statistics for one run — host-side observability only,
/// deliberately kept *outside* [`PerfCounters`](crate::PerfCounters):
/// simulated counters must stay byte-identical across engines, and only
/// the fused engine executes superinstructions.
#[derive(Debug, Clone, Default)]
pub struct FusionStats {
    /// Fused pairs executed to completion (both components in one
    /// dispatch), by kind. A pair interrupted by a mid-pair bail-out
    /// (scheduler rotation, due driver, step limit) is not counted: its
    /// tail component retired through its unfused slot.
    pub executed: [u64; FUSED_KINDS],
}

impl FusionStats {
    /// Total fused pairs executed.
    pub fn fused_pairs(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// Dynamic instructions retired inside fused dispatches (2 per pair).
    pub fn fused_instructions(&self) -> u64 {
        2 * self.fused_pairs()
    }

    /// Kinds with nonzero counts, most-executed first.
    pub fn sorted(&self) -> Vec<(FusedKind, u64)> {
        let mut v: Vec<(FusedKind, u64)> = FusedKind::ALL
            .iter()
            .map(|&k| (k, self.executed[k as usize]))
            .filter(|&(_, n)| n > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.name().cmp(b.0.name())));
        v
    }
}

/// Static fusion census for a decoded program: how many fusion sites the
/// peephole pass created, by kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct FusionSummary {
    /// Fusion sites in the fused streams, by kind.
    pub sites: [u64; FUSED_KINDS],
}

impl FusionSummary {
    /// Total fusion sites.
    pub fn total(&self) -> u64 {
        self.sites.iter().sum()
    }
}

/// Configuration for the threaded tier's decode-time transform — the
/// ablation axes of the guard-optimization table (none / elide /
/// elide+hoist). Superblock chaining and fusion are always on for the
/// threaded engine; these toggles control only the proof-driven parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadedOpts {
    /// Drop guards proven redundant (whole-trip loop proofs, block-local
    /// duplicates) and dead constants, and dedup exact-duplicate tracking
    /// calls.
    pub elide: bool,
    /// Execute one widened range check per elided loop guard at the
    /// preheader. With `elide` on and `hoist` off, elided guards are
    /// dropped without replacement (the ablation's "elide" row — it shows
    /// what the hoisted check costs).
    pub hoist: bool,
}

impl Default for ThreadedOpts {
    fn default() -> ThreadedOpts {
        ThreadedOpts {
            elide: true,
            hoist: true,
        }
    }
}

/// Side-table entry for one [`DecodedInst::HoistedGuard`]: everything the
/// runtime needs to reconstruct the full address span the elided loop
/// guard would have checked across the trip. All register fields are
/// defined outside the loop (the proof guarantees it), so they are
/// readable at the preheader.
#[derive(Debug, Clone, Copy)]
pub struct HoistedGuardMeta {
    /// Base pointer register (`Affine`), or the invariant address itself.
    pub base: u32,
    /// Register holding the induction variable's initial value.
    pub init: u32,
    /// Register holding the loop bound (positive term when peeled).
    pub bound: u32,
    /// Register of the peeled bound's negative term, or [`NO_REG`]. The
    /// effective bound is `bound − bound2 + bound_const`.
    pub bound2: u32,
    /// Constant summand of a peeled bound expression.
    pub bound_const: i64,
    /// Register of the loop-invariant index summand, or [`NO_REG`].
    pub inv: u32,
    /// Induction-variable coefficient in the index (0 = invariant addr).
    pub coeff: i64,
    /// Constant index summand.
    pub offset: i64,
    /// Element stride scaling the index (0 = invariant addr).
    pub elem: u64,
    /// Constant byte offset added after scaling (peeled `FieldAddr`s).
    pub byte_off: u64,
    /// Access length in bytes.
    pub len: u64,
    /// Positive induction step.
    pub step: i64,
    /// `true` for `iv <= bound`, `false` for `iv < bound`.
    pub inclusive: bool,
    /// Whether the elided guard checked write access.
    pub write: bool,
    /// Whether to execute the widened range check (hoisting enabled).
    /// When false the slot only accounts the trip's elided guards.
    pub check: bool,
}

/// Per-loop transform decisions, kept for `compile_inspect` and the
/// ablation table: what was proven, what was rejected and why.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Function name.
    pub func: String,
    /// Loop header block index.
    pub header: u32,
    /// One line per proven guard: proof kind and symbolic span.
    pub decisions: Vec<String>,
    /// One line per rejected guard: value and reason.
    pub rejected: Vec<String>,
}

/// Static census of the threaded transform across a program.
#[derive(Debug, Clone, Default)]
pub struct ThreadedReport {
    /// Loop guards removed under a whole-trip proof.
    pub elided_sites: u64,
    /// Block-local duplicate guards replaced by markers.
    pub dup_guard_sites: u64,
    /// Exact-duplicate tracking calls dropped.
    pub track_dedup_sites: u64,
    /// Widened preheader checks inserted (0 when `hoist` is off).
    pub hoisted_sites: u64,
    /// Surviving guard intrinsics strength-reduced to fast-tier probes.
    pub fast_guard_sites: u64,
    /// Constants dropped because their last use was an elided guard, or
    /// was embedded as a fast-guard length immediate.
    pub dead_consts: u64,
    /// Multi-block superblocks formed by chaining.
    pub chains: u64,
    /// Member blocks absorbed into a chain (beyond the head).
    pub chained_blocks: u64,
    /// Per-loop decisions for inspection.
    pub loops: Vec<LoopReport>,
    /// Loops the prover skipped structurally: "func bbN: reason".
    pub skipped_loops: Vec<String>,
}

impl ThreadedReport {
    /// Total guard slots removed or markered by proofs.
    pub fn total_elided_sites(&self) -> u64 {
        self.elided_sites + self.dup_guard_sites
    }
}

/// The copy list for entering a phi-headed block from one predecessor.
#[derive(Debug, Clone, Copy)]
pub struct PhiEdge {
    /// The predecessor block this edge handles.
    pub pred: BlockId,
    /// First index in [`DecodedFunc::phi_copies`].
    pub start: u32,
    /// Number of `(dst, src)` copies (one per phi).
    pub len: u32,
}

/// One decoded basic block: the leading phis collapse into a single
/// [`DecodedInst::PhiBatch`] slot, the rest map one-to-one.
#[derive(Debug, Clone, Default)]
pub struct DecodedBlock {
    /// The instruction stream. Shared (`Rc`) so the VM can pin the
    /// current block's code in the active frame and fetch with a single
    /// index, instead of re-walking `funcs[f].blocks[b].code` every step.
    pub code: std::rc::Rc<[DecodedInst]>,
    /// The superinstruction view of `code`, pinned instead of `code` by
    /// the fused engine. Same length: a fused pair's head slot holds the
    /// superinstruction and its tail slot keeps the original unfused
    /// instruction, so any cursor into `code` is also a valid cursor here
    /// (and vice versa) — mid-pair bail-outs and blocking intrinsics
    /// resume at exact component boundaries.
    pub fused_code: std::rc::Rc<[DecodedInst]>,
    /// The threaded-tier view, pinned by the threaded engine (empty
    /// unless the program was decoded with [`ThreadedOpts`]). Unlike
    /// `fused_code` this is *not* slot-parallel with `code`: guard slots
    /// may be elided, hoisted checks inserted, and chained blocks share
    /// one concatenated stream (every member of a superblock chain holds
    /// the same `Rc`, with its segment at the offset the preceding
    /// [`DecodedInst::Seam`]s imply). Cursors into a threaded stream are
    /// only meaningful against the threaded stream itself.
    pub threaded_code: std::rc::Rc<[DecodedInst]>,
    /// Per-predecessor phi copy lists (empty when the block has no phis).
    /// An entry exists only for predecessors every phi covers; entering
    /// from any other block traps, as in the reference interpreter.
    pub phi_edges: Vec<PhiEdge>,
}

/// One decoded function.
#[derive(Debug, Clone)]
pub struct DecodedFunc {
    /// Stack frame size in bytes (allocas + spill margin).
    pub frame_size: u64,
    /// Register file size (args + instruction results).
    pub num_values: usize,
    /// Decoded blocks, indexed by [`BlockId`].
    pub blocks: Vec<DecodedBlock>,
    /// Argument-register pool for calls and intrinsics.
    pub operands: Vec<u32>,
    /// `(dst, src)` register pairs for phi edges.
    pub phi_copies: Vec<(u32, u32)>,
    /// Dense alloca frame offsets by value index ([`u64::MAX`] = not an
    /// alloca). The decoded stream carries offsets inline; this table
    /// serves the reference engine, replacing its per-function `HashMap`.
    pub alloca_offsets: Vec<u64>,
    /// Side table for [`DecodedInst::HoistedGuard`] slots (threaded tier
    /// only; empty otherwise).
    pub hoists: Vec<HoistedGuardMeta>,
}

impl DecodedFunc {
    /// The frame offset of alloca `value_index`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a placed alloca.
    #[inline]
    pub fn alloca_offset(&self, value_index: usize) -> u64 {
        let off = self.alloca_offsets[value_index];
        assert_ne!(off, u64::MAX, "value is not an alloca");
        off
    }
}

/// A module compiled to its flat executable form.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// Decoded functions, indexed by [`FuncId`](carat_ir::FuncId).
    pub funcs: Vec<DecodedFunc>,
    /// Static census of the fusion sites created across all functions.
    /// For a threaded decode this is the census over the *threaded*
    /// streams (elision re-exposes fusion opportunities the guard slots
    /// were blocking).
    pub fusion: FusionSummary,
    /// Census of the threaded transform, when the program was decoded
    /// with [`ThreadedOpts`].
    pub threaded: Option<ThreadedReport>,
}

impl DecodedProgram {
    /// Decode every function of `module`. Pure and infallible: malformed
    /// constructs (aggregate accesses, incomplete phi webs) decode to
    /// trapping forms so behavior stays identical to the reference
    /// interpreter, which also rejects them only upon execution.
    pub fn decode(module: &Module) -> DecodedProgram {
        DecodedProgram::decode_with(module, None)
    }

    /// Decode every function, and when `threaded` is given also build the
    /// threaded-tier streams: proof-driven guard elision and hoisting,
    /// superblock chaining, then one fusion pass over the chained code.
    /// The plain and fused streams are unaffected — the same decoded
    /// program can back any engine.
    pub fn decode_with(module: &Module, threaded: Option<ThreadedOpts>) -> DecodedProgram {
        let mut fusion = FusionSummary::default();
        let mut funcs: Vec<DecodedFunc> = module
            .func_ids()
            .map(|fid| decode_func(module.func(fid), &mut fusion))
            .collect();
        let threaded = threaded.map(|opts| {
            let mut report = ThreadedReport::default();
            let mut tfusion = FusionSummary::default();
            for (df, fid) in funcs.iter_mut().zip(module.func_ids()) {
                thread_func(
                    module,
                    module.func(fid),
                    df,
                    opts,
                    &mut tfusion,
                    &mut report,
                );
            }
            fusion = tfusion;
            report
        });
        DecodedProgram {
            funcs,
            fusion,
            threaded,
        }
    }
}

fn decode_func(f: &carat_ir::Function, fusion: &mut FusionSummary) -> DecodedFunc {
    // Alloca offsets: identical layout walk to the seed interpreter's
    // FuncMeta construction (alignment-rounded, 8-byte minimum stride).
    let mut alloca_offsets = vec![u64::MAX; f.num_values()];
    let mut off = 0u64;
    for (_, v, inst) in f.insts_in_layout_order() {
        if let Inst::Alloca(ty) = inst {
            let align = ty.align().max(1);
            off = off.div_ceil(align) * align;
            alloca_offsets[v.index()] = off;
            off += ty.stride().max(8);
        }
    }

    let mut operands: Vec<u32> = Vec::new();
    let mut phi_copies: Vec<(u32, u32)> = Vec::new();
    let mut blocks: Vec<DecodedBlock> = Vec::with_capacity(f.num_blocks());

    for b in f.block_ids() {
        let insts = &f.block(b).insts;
        let mut code: Vec<DecodedInst> = Vec::with_capacity(insts.len());
        let mut phi_edges: Vec<PhiEdge> = Vec::new();

        // Leading phis collapse into one PhiBatch with per-edge copy lists.
        let phis: Vec<(u32, &[(BlockId, carat_ir::ValueId)])> = insts
            .iter()
            .map_while(|&v| {
                f.inst(v)
                    .and_then(Inst::phi_incomings)
                    .map(|inc| (v.0, inc))
            })
            .collect();
        if !phis.is_empty() {
            code.push(DecodedInst::PhiBatch);
            let mut preds: Vec<BlockId> = Vec::new();
            for (_, inc) in &phis {
                for (p, _) in inc.iter() {
                    if !preds.contains(p) {
                        preds.push(*p);
                    }
                }
            }
            for pred in preds {
                // Only complete edges are materialized; a phi missing this
                // predecessor makes entry from it trap at runtime.
                let Some(copies) = phis
                    .iter()
                    .map(|&(dst, inc)| {
                        inc.iter()
                            .find(|(p, _)| *p == pred)
                            .map(|&(_, src)| (dst, src.0))
                    })
                    .collect::<Option<Vec<(u32, u32)>>>()
                else {
                    continue;
                };
                let start = phi_copies.len() as u32;
                let len = copies.len() as u32;
                phi_copies.extend(copies);
                phi_edges.push(PhiEdge { pred, start, len });
            }
        }

        for &v in &insts[phis.len()..] {
            let Some(inst) = f.inst(v) else { continue };
            code.push(decode_inst(f, v.0, inst, &alloca_offsets, &mut operands));
        }
        let fused = fuse_block(&code, &operands, fusion);
        blocks.push(DecodedBlock {
            code: code.into(),
            fused_code: fused.into(),
            threaded_code: Vec::new().into(),
            phi_edges,
        });
    }

    DecodedFunc {
        frame_size: frame_size(f),
        num_values: f.num_values(),
        blocks,
        operands,
        phi_copies,
        alloca_offsets,
        hoists: Vec::new(),
    }
}

fn decode_inst(
    f: &carat_ir::Function,
    dst: u32,
    inst: &Inst,
    alloca_offsets: &[u64],
    operands: &mut Vec<u32>,
) -> DecodedInst {
    let mut pool = |args: &[carat_ir::ValueId]| {
        let start = operands.len() as u32;
        operands.extend(args.iter().map(|a| a.0));
        OperandRange {
            start,
            len: args.len() as u32,
        }
    };
    match inst {
        Inst::Const(c) => match c {
            Const::Int(x, w) => DecodedInst::ConstI {
                dst,
                val: w.wrap(*x),
            },
            Const::F64(x) => DecodedInst::ConstF { dst, val: *x },
            Const::Null => DecodedInst::ConstNull { dst },
            Const::GlobalAddr(g) => DecodedInst::ConstGlobal { dst, global: g.0 },
        },
        Inst::Alloca(_) => DecodedInst::Alloca {
            dst,
            off: alloca_offsets[dst as usize],
        },
        Inst::Load { ty, addr } => match scalar_class(ty) {
            Some(cls) => DecodedInst::Load {
                dst,
                addr: addr.0,
                cls,
            },
            None => DecodedInst::TrapAggregate { store: false },
        },
        Inst::Store { ty, addr, value } => match scalar_class(ty) {
            Some(cls) => DecodedInst::Store {
                addr: addr.0,
                value: value.0,
                cls,
            },
            None => DecodedInst::TrapAggregate { store: true },
        },
        Inst::PtrAdd { base, index, elem } => DecodedInst::PtrAdd {
            dst,
            base: base.0,
            index: index.0,
            stride: elem.stride(),
        },
        Inst::FieldAddr {
            base,
            struct_ty,
            field,
        } => DecodedInst::FieldAddr {
            dst,
            base: base.0,
            off: struct_ty.field_offset(*field as usize),
        },
        Inst::Bin { op, lhs, rhs } => DecodedInst::Bin {
            dst,
            op: *op,
            lhs: lhs.0,
            rhs: rhs.0,
            // Same resolution as the reference interpreter: the result
            // width follows the left operand's type.
            width: f
                .value_type(*lhs)
                .and_then(|t| t.int_width())
                .unwrap_or(IntTy::I64),
        },
        Inst::Icmp { pred, lhs, rhs } => DecodedInst::Icmp {
            dst,
            pred: *pred,
            lhs: lhs.0,
            rhs: rhs.0,
        },
        Inst::Fcmp { pred, lhs, rhs } => DecodedInst::Fcmp {
            dst,
            pred: *pred,
            lhs: lhs.0,
            rhs: rhs.0,
        },
        Inst::Cast { kind, value, to } => DecodedInst::Cast {
            dst,
            kind: *kind,
            src: value.0,
            width: to.int_width().unwrap_or(IntTy::I64),
        },
        Inst::Select {
            cond,
            if_true,
            if_false,
        } => DecodedInst::Select {
            dst,
            cond: cond.0,
            if_true: if_true.0,
            if_false: if_false.0,
        },
        // A phi past the leading run never executes in verified IR; decode
        // it as a batch head so the malformed case still traps or resolves
        // through the block's edge table rather than crashing the decoder.
        Inst::Phi { .. } => DecodedInst::PhiBatch,
        Inst::Call { callee, args, .. } => DecodedInst::Call {
            dst,
            callee: callee.0,
            args: pool(args),
        },
        Inst::CallIntrinsic { intr, args } => DecodedInst::Intrinsic {
            dst,
            intr: *intr,
            args: pool(args),
        },
        Inst::Jmp { target } => DecodedInst::Jmp { target: target.0 },
        Inst::Br {
            cond,
            if_true,
            if_false,
        } => DecodedInst::Br {
            cond: cond.0,
            if_true: if_true.0,
            if_false: if_false.0,
        },
        Inst::Ret { value } => DecodedInst::Ret {
            value: value.map(|v| v.0).unwrap_or(NO_REG),
        },
        Inst::Unreachable => DecodedInst::Unreachable,
    }
}

/// Per-slot action of the threaded transform.
const KEEP: u8 = 0;
const DROP: u8 = 1;
const MARK: u8 = 2;

/// Build the threaded-tier streams for one function: consume the guard
/// proofs to drop/mark slots and insert hoisted checks, chain
/// single-entry straight-line successors into superblocks, then fuse
/// once over each concatenated stream.
fn thread_func(
    module: &Module,
    f: &carat_ir::Function,
    df: &mut DecodedFunc,
    opts: ThreadedOpts,
    fusion: &mut FusionSummary,
    report: &mut ThreadedReport,
) {
    let nblocks = df.blocks.len();
    let mut actions: Vec<Vec<u8>> = df.blocks.iter().map(|b| vec![KEEP; b.code.len()]).collect();
    let mut inserts: Vec<Vec<DecodedInst>> = vec![Vec::new(); nblocks];

    // Map each non-phi instruction to its decoded slot: the leading phi
    // run collapses into one PhiBatch, so the i-th non-phi instruction
    // sits at slot `(has_phis as usize) + i`.
    let mut slot_of: Vec<Option<(usize, usize)>> = vec![None; f.num_values()];
    for b in f.block_ids() {
        let insts = &f.block(b).insts;
        let nphis = insts
            .iter()
            .take_while(|&&v| matches!(f.inst(v), Some(Inst::Phi { .. })))
            .count();
        let lead = usize::from(nphis > 0);
        for (i, &v) in insts.iter().enumerate().skip(nphis) {
            slot_of[v.index()] = Some((b.index(), lead + (i - nphis)));
        }
    }

    if opts.elide {
        let proofs = carat_analysis::prove_function_in(f, Some(module));
        for (header, reason) in &proofs.skipped_loops {
            report
                .skipped_loops
                .push(format!("{} bb{}: {}", f.name, header.index(), reason));
        }
        for plan in &proofs.loops {
            let mut lrep = LoopReport {
                func: f.name.clone(),
                header: plan.header.index() as u32,
                decisions: Vec::new(),
                rejected: Vec::new(),
            };
            for g in &plan.guards {
                let Some((gb, gs)) = slot_of[g.guard.index()] else {
                    continue;
                };
                actions[gb][gs] = DROP;
                let meta = df.hoists.len() as u32;
                df.hoists.push(HoistedGuardMeta {
                    base: g.base.0,
                    init: plan.init.0,
                    bound: plan.bound.0,
                    bound2: plan.bound_minus.map(|v| v.0).unwrap_or(NO_REG),
                    bound_const: plan.bound_const,
                    inv: g.inv.map(|v| v.0).unwrap_or(NO_REG),
                    coeff: g.coeff,
                    offset: g.offset,
                    elem: g.elem,
                    byte_off: g.byte_off,
                    len: g.len,
                    step: plan.step,
                    inclusive: plan.inclusive,
                    write: g.write,
                    check: opts.hoist,
                });
                inserts[plan.preheader.index()].push(DecodedInst::HoistedGuard { meta });
                report.elided_sites += 1;
                if opts.hoist {
                    report.hoisted_sites += 1;
                }
                let access = if g.write { "store" } else { "load" };
                let fate = if opts.hoist {
                    format!("widened check at bb{}", plan.preheader.index())
                } else {
                    "no hoisted check (ablation)".to_string()
                };
                lrep.decisions.push(match g.kind {
                    carat_analysis::ProofKind::Affine => format!(
                        "v{}: {access} guard elided for whole trip \
                         (affine: base=v{} elem={} coeff={} offset={} len={}); {fate}",
                        g.guard.index(),
                        g.base.index(),
                        g.elem,
                        g.coeff,
                        g.offset,
                        g.len,
                    ),
                    carat_analysis::ProofKind::Invariant => format!(
                        "v{}: {access} guard elided for whole trip \
                         (invariant addr v{}, len={}); {fate}",
                        g.guard.index(),
                        g.base.index(),
                        g.len,
                    ),
                });
            }
            for (v, reason) in &plan.rejected {
                lrep.rejected.push(format!("v{}: {}", v.index(), reason));
            }
            report.loops.push(lrep);
        }
        for v in &proofs.dup_guards {
            if let Some((b, s)) = slot_of[v.index()] {
                actions[b][s] = MARK;
                report.dup_guard_sites += 1;
            }
        }
        for v in &proofs.dup_tracks {
            if let Some((b, s)) = slot_of[v.index()] {
                actions[b][s] = DROP;
                report.track_dedup_sites += 1;
            }
        }

        // Constants whose last use was a removed slot are dead in the
        // threaded stream — but never drop a register a hoisted check
        // reads at runtime.
        let mut pinned = vec![false; f.num_values()];
        for m in &df.hoists {
            for r in [m.base, m.init, m.bound, m.bound2, m.inv] {
                if r != NO_REG {
                    if let Some(p) = pinned.get_mut(r as usize) {
                        *p = true;
                    }
                }
            }
        }
        let mut uses = vec![0u32; f.num_values()];
        for (_, _, inst) in f.insts_in_layout_order() {
            for o in inst.operands() {
                uses[o.index()] += 1;
            }
        }
        let orig_uses = uses.clone();
        for (_, v, inst) in f.insts_in_layout_order() {
            let Some((bi, s)) = slot_of[v.index()] else {
                continue;
            };
            if actions[bi][s] != KEEP {
                for o in inst.operands() {
                    uses[o.index()] -= 1;
                }
            }
        }
        for (_, v, inst) in f.insts_in_layout_order() {
            if !matches!(inst, Inst::Const(_)) {
                continue;
            }
            let Some((bi, s)) = slot_of[v.index()] else {
                continue;
            };
            if actions[bi][s] == KEEP
                && uses[v.index()] == 0
                && orig_uses[v.index()] > 0
                && !pinned[v.index()]
            {
                actions[bi][s] = DROP;
                report.dead_consts += 1;
            }
        }
    }

    // Surviving guards whose length is a single-use literal constant get
    // the length embedded as an immediate and the const's slot dropped:
    // the fused baseline still executes (and counts) the const, but the
    // threaded stream has no other consumer for it.
    let mut guard_imm: std::collections::HashMap<(usize, usize), u32> =
        std::collections::HashMap::new();
    {
        let mut uses = vec![0u32; f.num_values()];
        for (_, _, inst) in f.insts_in_layout_order() {
            for o in inst.operands() {
                uses[o.index()] += 1;
            }
        }
        for (_, v, inst) in f.insts_in_layout_order() {
            let Inst::CallIntrinsic {
                intr: Intrinsic::GuardLoad | Intrinsic::GuardStore,
                args,
            } = inst
            else {
                continue;
            };
            let [_, len_arg] = args.as_slice() else {
                continue;
            };
            let Some((gb, gs)) = slot_of[v.index()] else {
                continue;
            };
            if actions[gb][gs] != KEEP || uses[len_arg.index()] != 1 {
                continue;
            }
            let Some(Inst::Const(Const::Int(n, _))) = f.inst(*len_arg) else {
                continue;
            };
            let Ok(imm) = u32::try_from(*n) else { continue };
            if imm == 0 {
                continue;
            }
            let Some((cb, cs)) = slot_of[len_arg.index()] else {
                continue;
            };
            if actions[cb][cs] != KEEP {
                continue;
            }
            actions[cb][cs] = DROP;
            guard_imm.insert((gb, gs), imm);
            report.dead_consts += 1;
        }
    }

    // Apply the actions per block; hoisted checks go right before the
    // preheader's terminator (the last slot, never dropped or marked).
    // Surviving guard intrinsics are strength-reduced to fast-tier range
    // probes here — before fusion, so `FusedGuardLoad`/`FusedGuardStore`
    // never form in a threaded stream and the probe stays inside the
    // fast dispatch loop instead of breaking out to the intrinsic
    // machinery.
    let mut transformed: Vec<Vec<DecodedInst>> = Vec::with_capacity(nblocks);
    for (bi, blk) in df.blocks.iter().enumerate() {
        let mut code: Vec<DecodedInst> = Vec::with_capacity(blk.code.len() + inserts[bi].len());
        for (s, &inst) in blk.code.iter().enumerate() {
            if s + 1 == blk.code.len() {
                code.extend(inserts[bi].iter().copied());
            }
            match actions[bi][s] {
                DROP => {}
                MARK => code.push(DecodedInst::ElidedGuard),
                _ => match inst {
                    DecodedInst::Intrinsic { intr, args, .. }
                        if matches!(intr, Intrinsic::GuardLoad | Intrinsic::GuardStore)
                            && args.len == 2 =>
                    {
                        let (glen, imm) = match guard_imm.get(&(bi, s)) {
                            Some(&n) => (NO_REG, n),
                            None => (df.operands[args.start as usize + 1], 0),
                        };
                        code.push(DecodedInst::GuardFast {
                            gaddr: df.operands[args.start as usize],
                            glen,
                            imm,
                            write: intr == Intrinsic::GuardStore,
                        });
                        report.fast_guard_sites += 1;
                    }
                    _ => code.push(inst),
                },
            }
        }
        if blk.code.is_empty() {
            code.extend(inserts[bi].iter().copied());
        }
        transformed.push(code);
    }

    // Superblock chaining: follow unconditional jumps into blocks with a
    // single predecessor and no phis (never the entry block, never a
    // self-loop). In-degree and out-degree are both at most one, so the
    // `next` edges form vertex-disjoint paths; each path becomes one
    // concatenated stream with a Seam replacing every interior
    // terminator, shared by all members so absolute cursors stay valid
    // wherever a frame suspends.
    let preds = f.predecessors();
    let mut next: Vec<Option<usize>> = vec![None; nblocks];
    for b in 0..nblocks {
        let Some(&DecodedInst::Jmp { target }) = transformed[b].last() else {
            continue;
        };
        let t = target as usize;
        if t == 0 || t == b || t >= nblocks || transformed[t].is_empty() {
            continue;
        }
        if preds[t].len() != 1 || preds[t][0].index() != b {
            continue;
        }
        if matches!(transformed[t].first(), Some(DecodedInst::PhiBatch)) {
            continue;
        }
        next[b] = Some(t);
    }
    let mut is_target = vec![false; nblocks];
    for &t in next.iter().flatten() {
        is_target[t] = true;
    }
    let mut streams: Vec<Option<std::rc::Rc<[DecodedInst]>>> = vec![None; nblocks];
    for (head, &targeted) in is_target.iter().enumerate() {
        if targeted {
            continue;
        }
        let mut chain = vec![head];
        let mut cur = head;
        while let Some(t) = next[cur] {
            chain.push(t);
            cur = t;
        }
        let mut code: Vec<DecodedInst> = Vec::new();
        for (k, &b) in chain.iter().enumerate() {
            if k + 1 < chain.len() {
                let seg = &transformed[b];
                code.extend_from_slice(&seg[..seg.len() - 1]);
                code.push(DecodedInst::Seam {
                    to: chain[k + 1] as u32,
                });
            } else {
                code.extend_from_slice(&transformed[b]);
            }
        }
        let rc: std::rc::Rc<[DecodedInst]> = fuse_block(&code, &df.operands, fusion).into();
        if chain.len() > 1 {
            report.chains += 1;
            report.chained_blocks += (chain.len() - 1) as u64;
        }
        for &b in &chain {
            streams[b] = Some(rc.clone());
        }
    }
    for (b, stream) in streams.into_iter().enumerate() {
        // Blocks on a pure `next` cycle have no head; they are
        // unreachable (a cycle of single-predecessor blocks cannot be
        // entered), but still get a well-formed single-block stream.
        df.blocks[b].threaded_code = match stream {
            Some(s) => s,
            None => fuse_block(&transformed[b], &df.operands, fusion).into(),
        };
    }
}

/// Peephole superinstruction fusion over one block's decoded stream.
///
/// The output has the *same length* as the input: a recognized pair's
/// head slot is replaced by the fused variant while the tail slot keeps
/// the original instruction. Execution that lands on a tail slot (branch
/// to the block re-enters at 0, but a mid-pair bail-out or a re-executed
/// blocking instruction resumes at the component boundary) simply runs
/// the unfused form — same semantics, same accounting.
///
/// Pairs never overlap: after fusing at `i` the scan resumes at `i + 2`,
/// so a tail slot is never also a fused head.
fn fuse_block(
    code: &[DecodedInst],
    operands: &[u32],
    fusion: &mut FusionSummary,
) -> Vec<DecodedInst> {
    let mut out = code.to_vec();
    let mut i = 0;
    while i + 1 < out.len() {
        match try_fuse(out[i], out[i + 1], operands) {
            Some((fused, kind)) => {
                out[i] = fused;
                fusion.sites[kind as usize] += 1;
                i += 2;
            }
            None => i += 1,
        }
    }
    out
}

/// Recognize one fusable adjacent pair. Immediates that must shrink to
/// fit the 24-byte instruction (strides, field offsets, constants) gate
/// fusion instead of truncating.
fn try_fuse(a: DecodedInst, b: DecodedInst, operands: &[u32]) -> Option<(DecodedInst, FusedKind)> {
    const U32_MAX: u64 = u32::MAX as u64;
    match (a, b) {
        (
            DecodedInst::PtrAdd {
                dst: pdst,
                base,
                index,
                stride,
            },
            DecodedInst::Load { dst, addr, cls },
        ) if addr == pdst && stride <= U32_MAX => Some((
            DecodedInst::FusedPtrAddLoad {
                pdst,
                base,
                index,
                stride: stride as u32,
                dst,
                cls,
            },
            FusedKind::PtrAddLoad,
        )),
        (
            DecodedInst::PtrAdd {
                dst: pdst,
                base,
                index,
                stride,
            },
            DecodedInst::Store { addr, value, cls },
        ) if addr == pdst && stride <= U32_MAX => Some((
            DecodedInst::FusedPtrAddStore {
                pdst,
                base,
                index,
                stride: stride as u32,
                value,
                cls,
            },
            FusedKind::PtrAddStore,
        )),
        (
            DecodedInst::FieldAddr {
                dst: pdst,
                base,
                off,
            },
            DecodedInst::Load { dst, addr, cls },
        ) if addr == pdst && off <= U32_MAX => Some((
            DecodedInst::FusedFieldLoad {
                pdst,
                base,
                off: off as u32,
                dst,
                cls,
            },
            FusedKind::FieldLoad,
        )),
        (
            DecodedInst::FieldAddr {
                dst: pdst,
                base,
                off,
            },
            DecodedInst::Store { addr, value, cls },
        ) if addr == pdst && off <= U32_MAX => Some((
            DecodedInst::FusedFieldStore {
                pdst,
                base,
                off: off as u32,
                value,
                cls,
            },
            FusedKind::FieldStore,
        )),
        (
            DecodedInst::Intrinsic {
                intr: Intrinsic::GuardLoad,
                args,
                ..
            },
            DecodedInst::Load { dst, addr, cls },
        ) if args.len == 2 => Some((
            DecodedInst::FusedGuardLoad {
                gaddr: operands[args.start as usize],
                glen: operands[args.start as usize + 1],
                dst,
                addr,
                cls,
            },
            FusedKind::GuardLoad,
        )),
        (
            DecodedInst::Intrinsic {
                intr: Intrinsic::GuardStore,
                args,
                ..
            },
            DecodedInst::Store { addr, value, cls },
        ) if args.len == 2 => Some((
            DecodedInst::FusedGuardStore {
                gaddr: operands[args.start as usize],
                glen: operands[args.start as usize + 1],
                addr,
                value,
                cls,
            },
            FusedKind::GuardStore,
        )),
        (
            DecodedInst::Icmp {
                dst: cdst,
                pred,
                lhs,
                rhs,
            },
            DecodedInst::Br {
                cond,
                if_true,
                if_false,
            },
        ) if cond == cdst => Some((
            DecodedInst::FusedIcmpBr {
                cdst,
                pred,
                lhs,
                rhs,
                if_true,
                if_false,
            },
            FusedKind::IcmpBr,
        )),
        (
            DecodedInst::Fcmp {
                dst: cdst,
                pred,
                lhs,
                rhs,
            },
            DecodedInst::Br {
                cond,
                if_true,
                if_false,
            },
        ) if cond == cdst => Some((
            DecodedInst::FusedFcmpBr {
                cdst,
                pred,
                lhs,
                rhs,
                if_true,
                if_false,
            },
            FusedKind::FcmpBr,
        )),
        (
            DecodedInst::ConstI { dst: cdst, val },
            DecodedInst::Bin {
                dst,
                op,
                lhs,
                rhs,
                width,
            },
        ) if (lhs == cdst || rhs == cdst) && i32::try_from(val).is_ok() => Some((
            DecodedInst::FusedConstBin {
                cdst,
                imm: val as i32,
                dst,
                op,
                lhs,
                rhs,
                width,
            },
            FusedKind::ConstBin,
        )),
        (
            DecodedInst::ConstF { dst: cdst, val },
            DecodedInst::Bin {
                dst,
                op,
                lhs,
                rhs,
                width,
            },
        ) if (lhs == cdst || rhs == cdst)
            && [cdst, dst, lhs, rhs].iter().all(|&r| r <= u16::MAX as u32) =>
        {
            Some((
                DecodedInst::FusedConstFBin {
                    val,
                    cdst: cdst as u16,
                    dst: dst as u16,
                    lhs: lhs as u16,
                    rhs: rhs as u16,
                    op,
                    width,
                },
                FusedKind::ConstFBin,
            ))
        }
        (
            DecodedInst::ConstI { dst: dst1, val: v1 },
            DecodedInst::ConstI { dst: dst2, val: v2 },
        ) if i32::try_from(v1).is_ok() && i32::try_from(v2).is_ok() => Some((
            DecodedInst::FusedConstConst {
                dst1,
                v1: v1 as i32,
                dst2,
                v2: v2 as i32,
            },
            FusedKind::ConstConst,
        )),
        (
            DecodedInst::PtrAdd {
                dst: pdst,
                base,
                index,
                stride,
            },
            DecodedInst::ConstI { dst: cdst, val },
        ) if stride <= U32_MAX
            && i32::try_from(val).is_ok()
            && [pdst, base, index, cdst]
                .iter()
                .all(|&r| r <= u16::MAX as u32) =>
        {
            Some((
                DecodedInst::FusedPtrAddConst {
                    pdst: pdst as u16,
                    base: base as u16,
                    index: index as u16,
                    cdst: cdst as u16,
                    stride: stride as u32,
                    imm: val as i32,
                },
                FusedKind::PtrAddConst,
            ))
        }
        (
            DecodedInst::Cast {
                dst: cdst,
                kind,
                src,
                width: cw,
            },
            DecodedInst::Bin {
                dst,
                op,
                lhs,
                rhs,
                width: bw,
            },
        ) if [cdst, src, dst, lhs, rhs]
            .iter()
            .all(|&r| r <= u16::MAX as u32) =>
        {
            Some((
                DecodedInst::FusedCastBin {
                    cdst: cdst as u16,
                    src: src as u16,
                    dst: dst as u16,
                    lhs: lhs as u16,
                    rhs: rhs as u16,
                    kind,
                    cw,
                    op,
                    bw,
                },
                FusedKind::CastBin,
            ))
        }
        (
            DecodedInst::Bin {
                dst: dst1,
                op: op1,
                lhs: lhs1,
                rhs: rhs1,
                width: w1,
            },
            DecodedInst::Bin {
                dst: dst2,
                op: op2,
                lhs: lhs2,
                rhs: rhs2,
                width: w2,
            },
        ) if [dst1, lhs1, rhs1, dst2, lhs2, rhs2]
            .iter()
            .all(|&r| r <= u16::MAX as u32) =>
        {
            Some((
                DecodedInst::FusedBinBin {
                    dst1: dst1 as u16,
                    lhs1: lhs1 as u16,
                    rhs1: rhs1 as u16,
                    dst2: dst2 as u16,
                    lhs2: lhs2 as u16,
                    rhs2: rhs2 as u16,
                    op1,
                    op2,
                    w1,
                    w2,
                },
                FusedKind::BinBin,
            ))
        }
        (
            DecodedInst::Bin {
                dst,
                op,
                lhs,
                rhs,
                width,
            },
            DecodedInst::Jmp { target },
        ) => Some((
            DecodedInst::FusedBinJmp {
                dst,
                lhs,
                rhs,
                target,
                op,
                width,
            },
            FusedKind::BinJmp,
        )),
        _ => None,
    }
}

fn scalar_class(ty: &carat_ir::Type) -> Option<ScalarClass> {
    match ty {
        carat_ir::Type::F64 => Some(ScalarClass::F64),
        carat_ir::Type::Ptr => Some(ScalarClass::Ptr),
        carat_ir::Type::Int(w) => Some(ScalarClass::Int(*w)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{ModuleBuilder, Type};

    #[test]
    fn decodes_constants_and_allocas() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            let slot = b.alloca(Type::I64);
            let x = b.const_i64(7);
            b.store(Type::I64, slot, x);
            let y = b.load(Type::I64, slot);
            b.ret(Some(y));
        }
        let m = mb.finish();
        let prog = DecodedProgram::decode(&m);
        let f = &prog.funcs[0];
        assert_eq!(f.blocks.len(), 1);
        let code = &f.blocks[0].code;
        assert!(matches!(code[0], DecodedInst::Alloca { off: 0, .. }));
        assert!(matches!(code[1], DecodedInst::ConstI { val: 7, .. }));
        assert!(matches!(code[2], DecodedInst::Store { .. }));
        assert!(matches!(code[3], DecodedInst::Load { .. }));
        assert!(matches!(code[4], DecodedInst::Ret { .. }));
        assert_eq!(f.alloca_offset(code_dst(code[0]) as usize), 0);
    }

    #[test]
    fn phi_blocks_collapse_to_batches() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let h = b.block("head");
            let x = b.block("exit");
            b.switch_to(e);
            let z = b.const_i64(0);
            let n = b.const_i64(3);
            let one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, z)]);
            let c = b.icmp(carat_ir::Pred::Slt, i, n);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, h, i2);
            b.br(c, h, x);
            b.switch_to(x);
            b.ret(Some(i));
        }
        let m = mb.finish();
        let prog = DecodedProgram::decode(&m);
        let head = &prog.funcs[0].blocks[1];
        assert!(matches!(head.code[0], DecodedInst::PhiBatch));
        assert_eq!(head.phi_edges.len(), 2, "one edge per predecessor");
        for e in &head.phi_edges {
            assert_eq!(e.len, 1, "one copy per phi");
        }
    }

    fn code_dst(i: DecodedInst) -> u32 {
        match i {
            DecodedInst::Alloca { dst, .. } => dst,
            _ => panic!("expected alloca"),
        }
    }

    #[test]
    fn decoded_inst_stays_hot_loop_sized() {
        // The whole fused-variant design is gated on not growing the
        // dispatch stream: immediates that would not fit (strides, field
        // offsets, constants) block fusion instead of growing the enum.
        assert!(
            std::mem::size_of::<DecodedInst>() <= 24,
            "DecodedInst grew past 24 bytes: {}",
            std::mem::size_of::<DecodedInst>()
        );
    }

    #[test]
    fn fusion_same_length_with_original_tails() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let x = b.block("exit");
            b.switch_to(e);
            let slot = b.alloca(Type::I64);
            let zero = b.const_i64(0);
            let p = b.ptr_add(slot, zero, Type::I64);
            b.store(Type::I64, p, zero);
            let p2 = b.ptr_add(slot, zero, Type::I64);
            let v = b.load(Type::I64, p2);
            let one = b.const_i64(1);
            let v2 = b.add(v, one);
            let c = b.icmp(carat_ir::Pred::Slt, v2, one);
            b.br(c, e, x);
            b.switch_to(x);
            b.ret(Some(v2));
        }
        let m = mb.finish();
        let prog = DecodedProgram::decode(&m);
        let blk = &prog.funcs[0].blocks[0];
        assert_eq!(
            blk.code.len(),
            blk.fused_code.len(),
            "streams stay parallel"
        );
        // Heads fused, tails untouched.
        assert!(matches!(
            blk.fused_code[2],
            DecodedInst::FusedPtrAddStore { .. }
        ));
        assert!(matches!(blk.fused_code[3], DecodedInst::Store { .. }));
        assert!(matches!(
            blk.fused_code[4],
            DecodedInst::FusedPtrAddLoad { .. }
        ));
        assert!(matches!(blk.fused_code[5], DecodedInst::Load { .. }));
        assert!(matches!(
            blk.fused_code[6],
            DecodedInst::FusedConstBin { .. }
        ));
        assert!(matches!(blk.fused_code[7], DecodedInst::Bin { .. }));
        assert!(matches!(blk.fused_code[8], DecodedInst::FusedIcmpBr { .. }));
        assert!(matches!(blk.fused_code[9], DecodedInst::Br { .. }));
        // Every unfused slot is bit-identical to the plain stream.
        for (i, inst) in blk.fused_code.iter().enumerate() {
            if inst.fused_kind().is_none() {
                assert_eq!(
                    std::mem::discriminant(inst),
                    std::mem::discriminant(&blk.code[i]),
                    "slot {i} must match the unfused stream"
                );
            }
        }
        assert_eq!(prog.fusion.total(), 4);
        assert_eq!(prog.fusion.sites[FusedKind::PtrAddStore as usize], 1);
        assert_eq!(prog.fusion.sites[FusedKind::IcmpBr as usize], 1);
    }

    /// entry -> header{phi,icmp,br} -> body{guard, load, add} -> exit,
    /// guarding `a[i]` with constant length 8.
    fn guarded_loop_module() -> carat_ir::Module {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("main", vec![Type::Ptr, Type::I64], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let h = b.block("header");
            let body = b.block("body");
            let x = b.block("exit");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            let eight = b.const_i64(8);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(carat_ir::Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let ai = b.ptr_add(b.arg(0), i, Type::I64);
            b.intr(Intrinsic::GuardLoad, vec![ai, eight]);
            let _ = b.load(Type::I64, ai);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(Some(i));
        }
        mb.finish()
    }

    #[test]
    fn threaded_elides_loop_guard_and_hoists() {
        let m = guarded_loop_module();
        let prog = DecodedProgram::decode_with(&m, Some(ThreadedOpts::default()));
        let report = prog.threaded.as_ref().unwrap();
        assert_eq!(report.elided_sites, 1);
        assert_eq!(report.hoisted_sites, 1);
        let f = &prog.funcs[0];
        // The guard slot is gone from the body's threaded stream…
        let body = &f.blocks[2].threaded_code;
        assert!(
            body.iter().all(|i| !matches!(
                i,
                DecodedInst::Intrinsic {
                    intr: Intrinsic::GuardLoad,
                    ..
                } | DecodedInst::FusedGuardLoad { .. }
            )),
            "loop guard must be elided from the threaded stream"
        );
        // …which re-exposes the address/access fusion the guard blocked.
        assert!(body
            .iter()
            .any(|i| matches!(i, DecodedInst::FusedPtrAddLoad { .. })));
        // The widened check sits in the preheader (entry), with the
        // proof's parameters in the side table.
        let entry = &f.blocks[0].threaded_code;
        let meta = entry
            .iter()
            .find_map(|i| match i {
                DecodedInst::HoistedGuard { meta } => Some(*meta),
                _ => None,
            })
            .expect("hoisted check in preheader");
        let h = f.hoists[meta as usize];
        assert_eq!(h.elem, 8);
        assert_eq!(h.coeff, 1);
        assert_eq!(h.len, 8);
        assert_eq!(h.step, 1);
        assert!(!h.inclusive && !h.write && h.check);
        // The plain and fused streams are untouched.
        assert!(f.blocks[2]
            .code
            .iter()
            .any(|i| matches!(i, DecodedInst::Intrinsic { .. })));
    }

    #[test]
    fn threaded_ablation_axes() {
        let m = guarded_loop_module();
        let none = DecodedProgram::decode_with(
            &m,
            Some(ThreadedOpts {
                elide: false,
                hoist: false,
            }),
        );
        let r = none.threaded.as_ref().unwrap();
        assert_eq!((r.elided_sites, r.hoisted_sites), (0, 0));
        assert!(none.funcs[0].hoists.is_empty());

        let elide_only = DecodedProgram::decode_with(
            &m,
            Some(ThreadedOpts {
                elide: true,
                hoist: false,
            }),
        );
        let r = elide_only.threaded.as_ref().unwrap();
        assert_eq!((r.elided_sites, r.hoisted_sites), (1, 0));
        // The accounting slot is still present — it just skips the check.
        assert!(!elide_only.funcs[0].hoists[0].check);
    }

    #[test]
    fn threaded_chains_straightline_blocks() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let m1 = b.block("mid1");
            let m2 = b.block("mid2");
            b.switch_to(e);
            let x = b.const_i64(1);
            b.jmp(m1);
            b.switch_to(m1);
            let y = b.const_i64(2);
            b.jmp(m2);
            b.switch_to(m2);
            let z = b.add(x, y);
            b.ret(Some(z));
        }
        let m = mb.finish();
        let prog = DecodedProgram::decode_with(&m, Some(ThreadedOpts::default()));
        let report = prog.threaded.as_ref().unwrap();
        assert_eq!(report.chains, 1);
        assert_eq!(report.chained_blocks, 2);
        let f = &prog.funcs[0];
        // All three blocks share one concatenated stream…
        assert!(std::rc::Rc::ptr_eq(
            &f.blocks[0].threaded_code,
            &f.blocks[1].threaded_code
        ));
        assert!(std::rc::Rc::ptr_eq(
            &f.blocks[0].threaded_code,
            &f.blocks[2].threaded_code
        ));
        // …with seams where the interior jumps were.
        let seams: Vec<u32> = f.blocks[0]
            .threaded_code
            .iter()
            .filter_map(|i| match i {
                DecodedInst::Seam { to } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(seams, vec![1, 2]);
        assert!(matches!(
            f.blocks[0].threaded_code.last(),
            Some(DecodedInst::Ret { .. })
        ));
    }

    #[test]
    fn threaded_marks_block_local_duplicate_guard() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("main", vec![Type::Ptr], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            let eight = b.const_i64(8);
            b.intr(Intrinsic::GuardLoad, vec![b.arg(0), eight]);
            let v1 = b.load(Type::I64, b.arg(0));
            b.intr(Intrinsic::GuardLoad, vec![b.arg(0), eight]);
            let v2 = b.load(Type::I64, b.arg(0));
            let s = b.add(v1, v2);
            b.ret(Some(s));
        }
        let m = mb.finish();
        let prog = DecodedProgram::decode_with(&m, Some(ThreadedOpts::default()));
        let report = prog.threaded.as_ref().unwrap();
        assert_eq!(report.dup_guard_sites, 1);
        let stream = &prog.funcs[0].blocks[0].threaded_code;
        assert_eq!(
            stream
                .iter()
                .filter(|i| matches!(i, DecodedInst::ElidedGuard))
                .count(),
            1
        );
    }

    #[test]
    fn fusion_requires_dataflow_adjacency() {
        // A Br consuming an older compare (not the adjacent one) must not
        // fuse, and neither must a Load from a different pointer.
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let x = b.block("exit");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            let c_old = b.icmp(carat_ir::Pred::Slt, zero, one);
            let _c_new = b.icmp(carat_ir::Pred::Sgt, zero, one);
            b.br(c_old, x, x);
            b.switch_to(x);
            b.ret(Some(zero));
        }
        let m = mb.finish();
        let prog = DecodedProgram::decode(&m);
        let blk = &prog.funcs[0].blocks[0];
        assert!(
            blk.fused_code
                .iter()
                .all(|i| !matches!(i, DecodedInst::FusedIcmpBr { .. })),
            "stale compare must not fuse into the branch"
        );
    }
}
