//! A tiny, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so this local crate
//! stands in for the real `criterion`. It implements the surface this
//! workspace's benches use — `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! / `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately small sample count so
//! benches double as smoke tests. Timings are printed as mean
//! nanoseconds per iteration; no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::Instant;

/// Iterations measured per benchmark. Small on purpose: the stub exists
/// so benches compile and run everywhere, not for statistical rigor.
const WARMUP_ITERS: u64 = 2;
const SAMPLE_ITERS: u64 = 10;

/// Entry point, matching `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), &mut f);
        self
    }
}

/// A named group of benchmarks, matching `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Finish the group (a no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; ignored by the stub.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, keeping its output alive until after the clock stops.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.total_nanos = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut warmup = Bencher {
        total_nanos: 0,
        iters: WARMUP_ITERS,
    };
    f(&mut warmup);
    let mut b = Bencher {
        total_nanos: 0,
        iters: SAMPLE_ITERS,
    };
    f(&mut b);
    let per_iter = b.total_nanos / u128::from(b.iters.max(1));
    println!("{name:<60} {per_iter:>12} ns/iter");
}

/// Bundle benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_batched_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("toplevel", |b| b.iter(|| 2 * 2));
    }
}
