//! Ablation: the from-scratch red/black tree backing the Allocation Table
//! vs `std::collections::BTreeMap`, on the operations the runtime performs
//! (insert, containing-allocation lookup, remove).

use carat_runtime::{AllocKind, AllocationTable, RbTree};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

const N: u64 = 4096;

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_table_insert");
    g.bench_function("rbtree", |b| {
        b.iter(|| {
            let mut t: RbTree<u64, u64> = RbTree::new();
            for i in 0..N {
                t.insert(black_box(i * 64), 64);
            }
            t.len()
        })
    });
    g.bench_function("btreemap", |b| {
        b.iter(|| {
            let mut t: BTreeMap<u64, u64> = BTreeMap::new();
            for i in 0..N {
                t.insert(black_box(i * 64), 64);
            }
            t.len()
        })
    });
    g.finish();
}

fn bench_floor(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_table_floor");
    let mut rb: RbTree<u64, u64> = RbTree::new();
    let mut bt: BTreeMap<u64, u64> = BTreeMap::new();
    for i in 0..N {
        rb.insert(i * 64, 64);
        bt.insert(i * 64, 64);
    }
    g.bench_function("rbtree", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in (0..N * 64).step_by(97) {
                if let Some((&k, _)) = rb.floor(&black_box(q)) {
                    acc ^= k;
                }
            }
            acc
        })
    });
    g.bench_function("btreemap", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in (0..N * 64).step_by(97) {
                if let Some((&k, _)) = bt.range(..=black_box(q)).next_back() {
                    acc ^= k;
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_full_lifecycle(c: &mut Criterion) {
    c.bench_function("allocation_table_lifecycle", |b| {
        b.iter(|| {
            let mut t = AllocationTable::new();
            for i in 0..1024u64 {
                t.track_alloc(0x10000 + i * 128, 96, AllocKind::Heap);
            }
            let mut found = 0;
            for i in 0..1024u64 {
                if t.find_containing(0x10000 + i * 128 + 40).is_some() {
                    found += 1;
                }
            }
            for i in 0..1024u64 {
                t.track_free(0x10000 + i * 128);
            }
            found
        })
    });
}

criterion_group!(benches, bench_insert, bench_floor, bench_full_lifecycle);
criterion_main!(benches);
