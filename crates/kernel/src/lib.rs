//! # carat-kernel — the simulated kernel
//!
//! The kernel half of the CARAT co-design, simulated: physical memory, a
//! buddy page-frame allocator, the CARAT program loader (signature
//! validation → layout → initial patch), region management, the
//! world-stop page-move orchestration, and — for the *traditional*
//! baseline — a 4-level radix page table plus an MMU-notifier-style
//! paging trace reproducing the paper's Table 2 methodology.
//!
//! ## Example
//!
//! ```
//! use carat_kernel::{SimKernel, LoadConfig};
//! use carat_runtime::AllocationTable;
//! use carat_ir::{ModuleBuilder, Type};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new("hello");
//! let f = mb.declare("main", vec![], Some(Type::I64));
//! {
//!     let mut b = mb.define(f);
//!     let e = b.block("entry");
//!     b.switch_to(e);
//!     let c = b.const_i64(0);
//!     b.ret(Some(c));
//! }
//! let mut kernel = SimKernel::new(256 * 1024 * 1024);
//! let mut table = AllocationTable::new();
//! let image = kernel.load_unsigned(mb.finish(), &mut table, LoadConfig::default())?;
//! assert!(image.initial_pages > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod arena;
mod buddy;
pub mod dev;
mod faults;
mod kernel;
mod loader;
mod pagetable;
mod phys;
mod proc;
mod trace;

pub use arena::ArenaStats;
pub use buddy::{BuddyAllocator, BuddyError};
pub use dev::{
    ClintTimer, DeviceBay, DmaCompletion, DmaDevice, DmaDir, DmaError, DmaRequest, DmaStats,
    TimerStats,
};
pub use faults::{FaultPlan, FaultPoint, KernelError};
pub use kernel::{fnv1a, PinError, PinStats, SimKernel, POISON_BASE, POISON_SLOT_SPAN};
pub use loader::{
    load_shared, load_shared_preverified, load_signed, load_unsigned, LoadConfig, LoadError,
    ProcessImage,
};
pub use pagetable::{PageTable, Pte, Walk};
pub use phys::PhysicalMemory;
pub use proc::{
    AdmissionError, Pid, ProcAccounting, ProcEntry, ProcState, ProcTable, ProtectionFault,
    SharedId, SharedRegion, TenantQuotas,
};
pub use trace::{PagingEvent, PagingTrace};
