//! Compile-time cost of the CARAT pipeline (the paper reports the
//! CARAT-specific optimizations add ~22% compilation time): frontend-only
//! vs guard injection vs full Opt 1/2/3.

use carat_core::{CaratCompiler, CompileOptions, OptPreset};
use carat_workloads::{by_name, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_time");
    for name in ["hpccg", "mcf", "x264"] {
        let w = by_name(name).expect("workload");
        let module = w.module(Scale::Test).expect("compiles");
        for (label, preset) in [
            ("inject_only", OptPreset::None),
            ("general", OptPreset::General),
            ("carat_opts", OptPreset::CaratSpecific),
        ] {
            let m = module.clone();
            g.bench_with_input(BenchmarkId::new(label, name), &preset, move |b, &preset| {
                b.iter_batched(
                    || m.clone(),
                    |m| {
                        CaratCompiler::new(CompileOptions::guards_only(preset))
                            .compile(m)
                            .expect("compiles")
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
